#include "sync/interest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mvc::sync {

InterestGrid::InterestGrid(double cell_size) : cell_size_(cell_size) {
    if (cell_size <= 0.0) throw std::invalid_argument("InterestGrid: cell size > 0");
}

InterestGrid::Cell InterestGrid::cell_for(const math::Vec3& p) const {
    return {static_cast<std::int32_t>(std::floor(p.x / cell_size_)),
            static_cast<std::int32_t>(std::floor(p.y / cell_size_)),
            static_cast<std::int32_t>(std::floor(p.z / cell_size_))};
}

void InterestGrid::update(EntityId entity, const math::Vec3& position) {
    const Cell cell = cell_for(position);
    const auto it = index_.find(entity);
    if (it != index_.end()) {
        const std::uint32_t d = it->second;
        positions_[d] = position;
        if (cells_[d] != cell) {
            cells_[d] = cell;
            if (!structural_ && !moved_[d]) {
                moved_[d] = 1;
                pending_.push_back(d);
            }
        }
        return;
    }
    const auto d = static_cast<std::uint32_t>(ids_.size());
    ids_.push_back(entity);
    positions_.push_back(position);
    cells_.push_back(cell);
    moved_.push_back(0);
    index_.emplace(entity, d);
    if (!structural_) {
        moved_[d] = 1;
        pending_.push_back(d);
    }
}

void InterestGrid::remove(EntityId entity) {
    const auto it = index_.find(entity);
    if (it == index_.end()) return;
    const std::uint32_t d = it->second;
    const auto last = static_cast<std::uint32_t>(ids_.size() - 1);
    if (d != last) {
        ids_[d] = ids_[last];
        positions_[d] = positions_[last];
        cells_[d] = cells_[last];
        index_[ids_[d]] = d;
    }
    ids_.pop_back();
    positions_.pop_back();
    cells_.pop_back();
    moved_.pop_back();
    index_.erase(it);
    // The swap re-homed `last` under index `d`, invalidating `order_`.
    structural_ = true;
}

const math::Vec3* InterestGrid::position_of(EntityId entity) const {
    const auto it = index_.find(entity);
    return it == index_.end() ? nullptr : &positions_[it->second];
}

void InterestGrid::ensure_built() const {
    const std::size_t n = ids_.size();
    const bool dirty = structural_ || !pending_.empty() || order_.size() != n;
    if (!dirty) return;
    // Incremental pays m log m + n; past ~25% movers the full n log n sort
    // wins (and a remove invalidates the survivor order outright).
    if (structural_ || order_.size() != n || pending_.size() * 4 > n) {
        order_.resize(n);
        std::iota(order_.begin(), order_.end(), 0u);
        std::sort(order_.begin(), order_.end(),
                  [this](std::uint32_t a, std::uint32_t b) { return order_before(a, b); });
        std::fill(moved_.begin(), moved_.end(), 0);
        pending_.clear();
        structural_ = false;
        ++full_rebuilds_;
    } else {
        survivors_.clear();
        for (const std::uint32_t d : order_)
            if (!moved_[d]) survivors_.push_back(d);
        std::sort(pending_.begin(), pending_.end(),
                  [this](std::uint32_t a, std::uint32_t b) { return order_before(a, b); });
        order_.resize(n);
        std::merge(survivors_.begin(), survivors_.end(), pending_.begin(), pending_.end(),
                   order_.begin(),
                   [this](std::uint32_t a, std::uint32_t b) { return order_before(a, b); });
        for (const std::uint32_t d : pending_) moved_[d] = 0;
        pending_.clear();
        ++incremental_rebuilds_;
    }
    buckets_.clear();
    for (std::uint32_t i = 0; i < n;) {
        const Cell cell = cells_[order_[i]];
        std::uint32_t j = i + 1;
        while (j < n && cells_[order_[j]] == cell) ++j;
        buckets_.push_back(Bucket{cell, i, j});
        i = j;
    }
}

void InterestGrid::query_radius_into(const math::Vec3& center, double radius,
                                     std::vector<EntityId>& out) const {
    ensure_built();
    out.clear();
    const double r2 = radius * radius;
    const Cell lo = cell_for(center - math::Vec3{radius, radius, radius});
    const Cell hi = cell_for(center + math::Vec3{radius, radius, radius});
    // Candidate cells are visited in ascending (x,y,z) order — the same
    // order buckets_ is sorted in — so one monotone cursor serves every
    // lower_bound instead of restarting the binary search from scratch.
    auto cursor = buckets_.begin();
    for (std::int32_t x = lo.x; x <= hi.x; ++x) {
        for (std::int32_t y = lo.y; y <= hi.y; ++y) {
            cursor = std::lower_bound(
                cursor, buckets_.end(), Cell{x, y, lo.z},
                [](const Bucket& b, const Cell& c) { return b.cell < c; });
            for (; cursor != buckets_.end() && cursor->cell.x == x &&
                   cursor->cell.y == y && cursor->cell.z <= hi.z;
                 ++cursor) {
                for (std::uint32_t i = cursor->begin; i < cursor->end; ++i) {
                    const std::uint32_t d = order_[i];
                    if ((positions_[d] - center).norm_sq() <= r2) out.push_back(ids_[d]);
                }
            }
        }
    }
    std::sort(out.begin(), out.end());
}

void InterestGrid::query_nearest_into(const math::Vec3& center, double radius,
                                      std::size_t max_results,
                                      std::vector<EntityId>& out) const {
    ensure_built();
    out.clear();
    nearest_scratch_.clear();
    const double r2 = radius * radius;
    const Cell lo = cell_for(center - math::Vec3{radius, radius, radius});
    const Cell hi = cell_for(center + math::Vec3{radius, radius, radius});
    auto cursor = buckets_.begin();
    for (std::int32_t x = lo.x; x <= hi.x; ++x) {
        for (std::int32_t y = lo.y; y <= hi.y; ++y) {
            cursor = std::lower_bound(
                cursor, buckets_.end(), Cell{x, y, lo.z},
                [](const Bucket& b, const Cell& c) { return b.cell < c; });
            for (; cursor != buckets_.end() && cursor->cell.x == x &&
                   cursor->cell.y == y && cursor->cell.z <= hi.z;
                 ++cursor) {
                for (std::uint32_t i = cursor->begin; i < cursor->end; ++i) {
                    const std::uint32_t d = order_[i];
                    const double d2 = (positions_[d] - center).norm_sq();
                    if (d2 <= r2) nearest_scratch_.emplace_back(d2, ids_[d]);
                }
            }
        }
    }
    std::sort(nearest_scratch_.begin(), nearest_scratch_.end());
    if (nearest_scratch_.size() > max_results) nearest_scratch_.resize(max_results);
    for (const auto& [d2, id] : nearest_scratch_) out.push_back(id);
}

std::vector<EntityId> InterestGrid::query_radius(const math::Vec3& center,
                                                 double radius) const {
    std::vector<EntityId> out;
    query_radius_into(center, radius, out);
    return out;
}

std::vector<EntityId> InterestGrid::query_nearest(const math::Vec3& center, double radius,
                                                  std::size_t max_results) const {
    std::vector<EntityId> out;
    query_nearest_into(center, radius, max_results, out);
    return out;
}

InterestPolicy::InterestPolicy() {
    tiers_ = {
        {5.0, 60.0, avatar::LodLevel::High},
        {12.0, 30.0, avatar::LodLevel::Medium},
        {30.0, 15.0, avatar::LodLevel::Low},
        {80.0, 5.0, avatar::LodLevel::Billboard},
    };
}

InterestPolicy::InterestPolicy(std::vector<InterestTier> tiers) : tiers_(std::move(tiers)) {
    if (tiers_.empty()) throw std::invalid_argument("InterestPolicy: need at least one tier");
    for (std::size_t i = 1; i < tiers_.size(); ++i) {
        if (tiers_[i].max_distance_m <= tiers_[i - 1].max_distance_m)
            throw std::invalid_argument("InterestPolicy: tiers must be distance-ascending");
    }
}

const InterestTier* InterestPolicy::tier_for(double distance_m) const {
    for (const auto& t : tiers_) {
        if (distance_m <= t.max_distance_m) return &t;
    }
    return nullptr;
}

int InterestPolicy::tier_index_for(double distance_m) const {
    for (std::size_t i = 0; i < tiers_.size(); ++i) {
        if (distance_m <= tiers_[i].max_distance_m) return static_cast<int>(i);
    }
    return -1;
}

}  // namespace mvc::sync
