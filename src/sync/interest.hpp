#pragma once
// Interest management (area-of-interest filtering). With thousands of
// entities in one digital space, broadcasting everything to everyone is
// quadratic; a uniform spatial grid answers "which entities matter to this
// viewer" queries, and the tiered policy maps distance to update rate and
// LOD so far-away avatars cost almost nothing.
//
// Storage is a dense structure-of-arrays: ids, positions and cell coords
// live in parallel vectors, and cell membership is a single flat array of
// dense indices sorted by (cell, id) with a bucket directory of contiguous
// runs on top. Moves between cells are queued and folded in lazily — an
// O(m log m) sort of the movers merged against the still-sorted survivors —
// so a tick that moves a few percent of entities never pays a full
// re-sort. Queries binary-search the bucket directory and write into
// caller-provided buffers: zero allocations in steady state (E17 budget).

#include <compare>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "avatar/lod.hpp"
#include "common/ids.hpp"
#include "math/vec3.hpp"

namespace mvc::sync {

class InterestGrid {
public:
    explicit InterestGrid(double cell_size = 4.0);

    void update(EntityId entity, const math::Vec3& position);
    void remove(EntityId entity);
    [[nodiscard]] std::size_t size() const { return ids_.size(); }
    [[nodiscard]] bool contains(EntityId entity) const { return index_.contains(entity); }

    /// All entities within `radius` of `center` (exact distance check after
    /// the grid pre-filter), sorted by id for determinism, written into
    /// `out` (cleared first). Allocation-free once `out` has capacity.
    void query_radius_into(const math::Vec3& center, double radius,
                           std::vector<EntityId>& out) const;

    /// Entities within radius, nearest first (id tiebreak), capped at
    /// `max_results`, written into `out` (cleared first).
    void query_nearest_into(const math::Vec3& center, double radius,
                            std::size_t max_results,
                            std::vector<EntityId>& out) const;

    [[nodiscard]] std::vector<EntityId> query_radius(const math::Vec3& center,
                                                     double radius) const;
    [[nodiscard]] std::vector<EntityId> query_nearest(const math::Vec3& center,
                                                      double radius,
                                                      std::size_t max_results) const;

    /// Pointer into the dense position array; invalidated by update/remove.
    [[nodiscard]] const math::Vec3* position_of(EntityId entity) const;

    /// Fold queued cell moves into the sorted order now (queries do this
    /// lazily; per-tick callers commit once after their update sweep).
    void rebuild() { ensure_built(); }
    [[nodiscard]] std::uint64_t full_rebuilds() const { return full_rebuilds_; }
    [[nodiscard]] std::uint64_t incremental_rebuilds() const { return incremental_rebuilds_; }

    /// Cell-coordinate hash, exposed for the distribution regression test.
    /// Coordinates are reinterpreted as uint32 before the prime multiplies:
    /// casting int32 -> size_t directly sign-extends negative coordinates to
    /// 0xFFFFFFFFxxxxxxxx, and after the multiply every negative-coordinate
    /// cell shares nearly identical high bits, clustering whole quadrants of
    /// the room into a handful of buckets. A 64-bit avalanche finalizer
    /// (splitmix64 tail) then spreads the combined value across all bits,
    /// since unordered_map bucket selection uses the low bits. The flat grid
    /// orders cells instead of hashing them, but spatially keyed hash tables
    /// elsewhere (and the regression test) still rely on this spread.
    [[nodiscard]] static std::size_t cell_hash(std::int32_t x, std::int32_t y,
                                               std::int32_t z) {
        std::uint64_t h = static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) *
                              0x9E3779B185EBCA87ull ^
                          static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) *
                              0xC2B2AE3D27D4EB4Full ^
                          static_cast<std::uint64_t>(static_cast<std::uint32_t>(z)) *
                              0x165667B19E3779F9ull;
        h ^= h >> 30;
        h *= 0xBF58476D1CE4E5B9ull;
        h ^= h >> 27;
        h *= 0x94D049BB133111EBull;
        h ^= h >> 31;
        return static_cast<std::size_t>(h);
    }

    struct Cell {
        std::int32_t x, y, z;
        friend auto operator<=>(const Cell&, const Cell&) = default;
    };

    [[nodiscard]] Cell cell_for(const math::Vec3& p) const;
    [[nodiscard]] double cell_size() const { return cell_size_; }

private:
    /// Contiguous run of `order_` holding one cell's entities (id-sorted).
    struct Bucket {
        Cell cell;
        std::uint32_t begin, end;
    };

    double cell_size_;
    // Dense SoA storage; `index_` maps an entity id to its dense slot.
    std::vector<EntityId> ids_;
    std::vector<math::Vec3> positions_;
    std::vector<Cell> cells_;
    std::unordered_map<EntityId, std::uint32_t> index_;

    // Sorted view, rebuilt lazily. `order_` holds dense indices sorted by
    // (cell, id); `buckets_` is the per-cell directory over it. `pending_`
    // lists indices whose cell changed since the last build (`moved_` flags
    // dedupe it); a remove swaps dense slots, so it forces a full re-sort.
    mutable std::vector<std::uint32_t> order_;
    mutable std::vector<Bucket> buckets_;
    mutable std::vector<std::uint32_t> pending_;
    mutable std::vector<std::uint8_t> moved_;
    mutable std::vector<std::uint32_t> survivors_;  // merge scratch
    mutable std::vector<std::pair<double, EntityId>> nearest_scratch_;
    mutable bool structural_{false};
    mutable std::uint64_t full_rebuilds_{0};
    mutable std::uint64_t incremental_rebuilds_{0};

    void ensure_built() const;
    [[nodiscard]] bool order_before(std::uint32_t a, std::uint32_t b) const {
        if (cells_[a] != cells_[b]) return cells_[a] < cells_[b];
        return ids_[a] < ids_[b];
    }
};

/// Distance-tiered replication policy: how often and at which LOD a viewer
/// should receive a given entity.
struct InterestTier {
    double max_distance_m;
    double update_rate_hz;
    avatar::LodLevel lod;
};

class InterestPolicy {
public:
    /// Default tiers follow the LOD ladder's distance bands.
    InterestPolicy();
    explicit InterestPolicy(std::vector<InterestTier> tiers);

    /// Tier for a viewer-to-entity distance; entities beyond the last tier's
    /// range are not replicated at all (nullptr).
    [[nodiscard]] const InterestTier* tier_for(double distance_m) const;
    /// Index of the tier for a distance, or -1 beyond the last tier.
    [[nodiscard]] int tier_index_for(double distance_m) const;
    [[nodiscard]] const std::vector<InterestTier>& tiers() const { return tiers_; }
    /// Replication horizon: the last tier's max distance.
    [[nodiscard]] double max_range() const { return tiers_.back().max_distance_m; }

private:
    std::vector<InterestTier> tiers_;
};

}  // namespace mvc::sync
