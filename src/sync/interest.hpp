#pragma once
// Interest management (area-of-interest filtering). With thousands of
// entities in one digital space, broadcasting everything to everyone is
// quadratic; a uniform spatial hash grid answers "which entities matter to
// this viewer" queries, and the tiered policy maps distance to update rate
// and LOD so far-away avatars cost almost nothing.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "avatar/lod.hpp"
#include "common/ids.hpp"
#include "math/vec3.hpp"

namespace mvc::sync {

class InterestGrid {
public:
    explicit InterestGrid(double cell_size = 4.0);

    void update(EntityId entity, const math::Vec3& position);
    void remove(EntityId entity);
    [[nodiscard]] std::size_t size() const { return positions_.size(); }
    [[nodiscard]] bool contains(EntityId entity) const { return positions_.contains(entity); }

    /// All entities within `radius` of `center` (exact distance check after
    /// the grid pre-filter). Sorted by id for determinism.
    [[nodiscard]] std::vector<EntityId> query_radius(const math::Vec3& center,
                                                     double radius) const;

    /// Entities within radius, nearest first, capped at `max_results`.
    [[nodiscard]] std::vector<EntityId> query_nearest(const math::Vec3& center,
                                                      double radius,
                                                      std::size_t max_results) const;

    [[nodiscard]] const math::Vec3* position_of(EntityId entity) const;

    /// Cell-coordinate hash, exposed for the distribution regression test.
    /// Coordinates are reinterpreted as uint32 before the prime multiplies:
    /// casting int32 -> size_t directly sign-extends negative coordinates to
    /// 0xFFFFFFFFxxxxxxxx, and after the multiply every negative-coordinate
    /// cell shares nearly identical high bits, clustering whole quadrants of
    /// the room into a handful of buckets. A 64-bit avalanche finalizer
    /// (splitmix64 tail) then spreads the combined value across all bits,
    /// since unordered_map bucket selection uses the low bits.
    [[nodiscard]] static std::size_t cell_hash(std::int32_t x, std::int32_t y,
                                               std::int32_t z) {
        std::uint64_t h = static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) *
                              0x9E3779B185EBCA87ull ^
                          static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) *
                              0xC2B2AE3D27D4EB4Full ^
                          static_cast<std::uint64_t>(static_cast<std::uint32_t>(z)) *
                              0x165667B19E3779F9ull;
        h ^= h >> 30;
        h *= 0xBF58476D1CE4E5B9ull;
        h ^= h >> 27;
        h *= 0x94D049BB133111EBull;
        h ^= h >> 31;
        return static_cast<std::size_t>(h);
    }

private:
    struct CellKey {
        std::int32_t x, y, z;
        friend bool operator==(const CellKey&, const CellKey&) = default;
    };
    struct CellHash {
        std::size_t operator()(const CellKey& k) const {
            return cell_hash(k.x, k.y, k.z);
        }
    };

    double cell_size_;
    std::unordered_map<EntityId, math::Vec3> positions_;
    std::unordered_map<CellKey, std::vector<EntityId>, CellHash> cells_;

    [[nodiscard]] CellKey key_for(const math::Vec3& p) const;
    void detach(EntityId entity, const math::Vec3& old_pos);
};

/// Distance-tiered replication policy: how often and at which LOD a viewer
/// should receive a given entity.
struct InterestTier {
    double max_distance_m;
    double update_rate_hz;
    avatar::LodLevel lod;
};

class InterestPolicy {
public:
    /// Default tiers follow the LOD ladder's distance bands.
    InterestPolicy();
    explicit InterestPolicy(std::vector<InterestTier> tiers);

    /// Tier for a viewer-to-entity distance; entities beyond the last tier's
    /// range are not replicated at all (nullptr).
    [[nodiscard]] const InterestTier* tier_for(double distance_m) const;
    [[nodiscard]] const std::vector<InterestTier>& tiers() const { return tiers_; }

private:
    std::vector<InterestTier> tiers_;
};

}  // namespace mvc::sync
