#include "sync/clock.hpp"

#include <algorithm>
#include <utility>

#include "net/wire_format.hpp"

namespace mvc::sync {

ClockSyncSession::ClockSyncSession(net::Backend& net, net::PacketDemux& client_demux,
                                   net::PacketDemux& server_demux, std::string flow,
                                   const DriftingClock& client_clock,
                                   const DriftingClock& server_clock,
                                   ClockSyncParams params)
    : net_(net),
      client_(client_demux.node()),
      server_(server_demux.node()),
      flow_(std::move(flow)),
      probe_tx_(net.open_channel({.src = client_,
                                  .dst = server_,
                                  .flow = flow_,
                                  .options = {.priority = net::Priority::Control}})),
      reply_tx_(net.open_channel({.src = server_,
                                  .dst = client_,
                                  .flow = flow_ + ".reply",
                                  .options = {.priority = net::Priority::Control}})),
      client_clock_(client_clock),
      server_clock_(server_clock),
      params_(params) {
    server_demux.on_flow(flow_, [this](net::Packet&& p) { handle_request(std::move(p)); });
    client_demux.on_flow(flow_ + ".reply",
                         [this](net::Packet&& p) { handle_reply(std::move(p)); });
}

void ClockSyncSession::register_wire_codecs(net::WireCodecs& codecs,
                                            std::uint16_t request_tag,
                                            std::uint16_t reply_tag) {
    codecs.register_codec<Request>(
        request_tag,
        [](const net::Payload& p, std::vector<std::byte>& out) {
            net::wiredata::put<std::int64_t>(out, p.get<Request>().t0_client.nanos());
        },
        [](std::span<const std::byte> body) -> std::optional<net::Payload> {
            net::wiredata::Reader r{body};
            const Request req{sim::Time::ns(r.get<std::int64_t>())};
            if (!r.ok || r.pos != body.size()) return std::nullopt;
            return net::Payload{req};
        });
    codecs.register_codec<Reply>(
        reply_tag,
        [](const net::Payload& p, std::vector<std::byte>& out) {
            const Reply& reply = p.get<Reply>();
            net::wiredata::put<std::int64_t>(out, reply.t0_client.nanos());
            net::wiredata::put<std::int64_t>(out, reply.t_server.nanos());
        },
        [](std::span<const std::byte> body) -> std::optional<net::Payload> {
            net::wiredata::Reader r{body};
            Reply reply;
            reply.t0_client = sim::Time::ns(r.get<std::int64_t>());
            reply.t_server = sim::Time::ns(r.get<std::int64_t>());
            if (!r.ok || r.pos != body.size()) return std::nullopt;
            return net::Payload{reply};
        });
}

void ClockSyncSession::start() {
    if (running_) return;
    running_ = true;
    task_ = net_.clock().schedule_every(params_.probe_interval,
                                            sim::Time::zero() + sim::Time::us(100),
                                            [this] { send_probe(); });
}

void ClockSyncSession::stop() {
    if (!running_) return;
    running_ = false;
    net_.clock().cancel(task_);
}

void ClockSyncSession::send_probe() {
    const Request req{client_clock_.local_time(net_.clock().now())};
    probe_tx_.send(48, req);
}

void ClockSyncSession::handle_request(net::Packet&& p) {
    const auto req = p.payload.get<Request>();
    const Reply reply{req.t0_client, server_clock_.local_time(net_.clock().now())};
    reply_tx_.send(48, reply);
}

void ClockSyncSession::handle_reply(net::Packet&& p) {
    const auto reply = p.payload.get<Reply>();
    const sim::Time t3 = client_clock_.local_time(net_.clock().now());
    // Symmetric-delay assumption: offset = ((t1-t0) + (t2-t3))/2 with
    // t1 == t2 == the single server timestamp.
    const sim::Time offset =
        ((reply.t_server - reply.t0_client) + (reply.t_server - t3)) / 2;
    // offset here is server-minus-client; store client-minus-server.
    const sim::Time rtt = t3 - reply.t0_client;
    window_.push_back(Probe{sim::Time::zero() - offset, rtt});
    if (window_.size() > params_.window) window_.pop_front();
    ++probes_completed_;
}

sim::Time ClockSyncSession::estimated_offset() const {
    // Minimum-RTT probe gives the least queueing-skewed offset sample.
    sim::Time best_offset = sim::Time::zero();
    sim::Time best_rtt = sim::Time::max();
    for (const Probe& pr : window_) {
        if (pr.rtt < best_rtt) {
            best_rtt = pr.rtt;
            best_offset = pr.offset;
        }
    }
    return best_offset;
}

sim::Time ClockSyncSession::estimation_error() const {
    const sim::Time now = net_.clock().now();
    const sim::Time truth =
        client_clock_.true_offset(now) - server_clock_.true_offset(now);
    const sim::Time est = estimated_offset();
    return est > truth ? est - truth : truth - est;
}

sim::Time ClockSyncSession::to_server_time(sim::Time client_local) const {
    return client_local - estimated_offset();
}

}  // namespace mvc::sync
