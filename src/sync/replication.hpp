#pragma once
// Avatar state replication with dead-reckoning send gating.
//
// Sender (AvatarPublisher): ticks at the replication rate; at each tick it
// compares the receiver's *predicted* view (constant-velocity extrapolation
// of the last transmitted state) against the authoritative state and only
// transmits when the perceptual error exceeds a threshold — plus periodic
// keyframes so late joiners and loss-desynced receivers resync. Updates go
// out as quantized deltas, keyframes as full snapshots.
//
// Receiver (AvatarReplica): decodes against its reference state, feeds a
// jitter buffer, and reports divergence-from-truth for the experiments.

#include <functional>
#include <vector>

#include "avatar/codec.hpp"
#include "sim/clock.hpp"
#include "sync/jitter.hpp"

namespace mvc::sync {

struct ReplicationParams {
    double tick_rate_hz{30.0};
    /// Send when predicted-vs-actual avatar_error exceeds this (metres +
    /// weighted radians). 0 disables gating (send every tick).
    double error_threshold{0.02};
    sim::Time keyframe_interval{sim::Time::seconds(1.0)};
};

/// Sender half for one participant's avatar stream.
class AvatarPublisher {
public:
    /// Sink receives encoded bytes, whether they are a keyframe, and the
    /// capture timestamp of the encoded state.
    using SinkFn = std::function<void(std::vector<std::uint8_t> bytes, bool keyframe,
                                      sim::Time captured_at)>;

    /// Pull-mode state source, sampled at each tick; returning nullopt skips
    /// the tick (e.g. tracking lost).
    using ProviderFn = std::function<std::optional<avatar::AvatarState>()>;

    AvatarPublisher(sim::Clock& clock, const avatar::AvatarCodec& codec,
                    ReplicationParams params, SinkFn sink);

    /// Update the authoritative state (push mode, from sensor fusion).
    void set_state(const avatar::AvatarState& state);
    /// Install a pull-mode provider; takes precedence over set_state and
    /// keeps capture timestamps aligned with send times (low jitter on the
    /// receiver's playout estimator).
    void set_provider(ProviderFn provider) { provider_ = std::move(provider); }
    void start();
    void stop();

    /// Force a keyframe at the next tick (e.g. a receiver joined).
    void request_keyframe() { keyframe_due_ = true; }

    /// Graceful degradation: scale the tick rate (1.0 = configured rate).
    /// Takes effect immediately — the periodic task is rescheduled.
    void set_rate_scale(double scale);
    /// Graceful degradation: scale the dead-reckoning error threshold
    /// (coarser gating under loss sends fewer, more significant updates).
    void set_threshold_scale(double scale);
    [[nodiscard]] double rate_scale() const { return rate_scale_; }
    [[nodiscard]] double threshold_scale() const { return threshold_scale_; }
    /// Effective tick rate after degradation scaling.
    [[nodiscard]] double effective_rate_hz() const {
        return params_.tick_rate_hz * rate_scale_;
    }

    [[nodiscard]] std::uint64_t sent_updates() const { return sent_updates_; }
    [[nodiscard]] std::uint64_t sent_keyframes() const { return sent_keyframes_; }
    [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }
    [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

private:
    sim::Clock& sim_;
    const avatar::AvatarCodec& codec_;
    ReplicationParams params_;
    SinkFn sink_;
    ProviderFn provider_;
    sim::EventHandle task_;
    bool running_{false};
    double rate_scale_{1.0};
    double threshold_scale_{1.0};

    avatar::AvatarState current_;
    bool have_state_{false};
    avatar::AvatarState last_sent_;
    sim::Time last_sent_at_{};
    sim::Time last_keyframe_at_{};
    bool sent_anything_{false};
    bool keyframe_due_{true};

    std::uint64_t sent_updates_{0};
    std::uint64_t sent_keyframes_{0};
    std::uint64_t suppressed_{0};
    std::uint64_t bytes_sent_{0};

    void tick();
};

/// Receiver half: reconstructs the remote avatar and serves display states.
class AvatarReplica {
public:
    AvatarReplica(const avatar::AvatarCodec& codec, JitterBufferParams jitter = {});

    /// Ingest an encoded update that arrived at local time `arrival`.
    /// Deltas that arrive before any keyframe are dropped (resync pending).
    void ingest(std::span<const std::uint8_t> bytes, bool keyframe, sim::Time arrival);

    /// Display state at local time `now` (jitter-buffered, interpolated).
    [[nodiscard]] std::optional<avatar::AvatarState> display(sim::Time now) const;
    /// Freshest decoded state, bypassing the jitter buffer.
    [[nodiscard]] std::optional<avatar::AvatarState> latest() const;

    /// Deterministic fingerprint of the reconstruction state (decode
    /// counters + reference avatar bit patterns). Feeds the per-node state
    /// hashes the replay divergence checker compares across runs.
    [[nodiscard]] std::uint64_t state_digest() const;

    [[nodiscard]] const JitterBuffer& jitter_buffer() const { return buffer_; }
    [[nodiscard]] std::uint64_t decoded() const { return decoded_; }
    [[nodiscard]] std::uint64_t dropped_waiting_keyframe() const {
        return dropped_waiting_keyframe_;
    }

private:
    const avatar::AvatarCodec& codec_;
    JitterBuffer buffer_;
    avatar::AvatarState reference_;
    bool have_reference_{false};
    std::uint64_t decoded_{0};
    std::uint64_t dropped_waiting_keyframe_{0};
};

}  // namespace mvc::sync
