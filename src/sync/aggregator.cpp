#include "sync/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mvc::sync {

CellDeltaAggregator::CellDeltaAggregator(net::Backend& net, net::NodeId src,
                                         sim::Time interval, double cell_size,
                                         InterestPolicy policy, net::Priority priority)
    : net_(net),
      policy_(std::move(policy)),
      cell_size_(cell_size),
      interval_(interval),
      batcher_(net, src, interval, priority) {
    if (cell_size <= 0.0)
        throw std::invalid_argument("CellDeltaAggregator: cell size > 0");
}

std::vector<CellDeltaAggregator::ViewerState>::iterator
CellDeltaAggregator::find_viewer(net::NodeId node) {
    return std::lower_bound(
        viewers_.begin(), viewers_.end(), node,
        [](const ViewerState& v, net::NodeId n) { return v.node < n; });
}

void CellDeltaAggregator::add_viewer(net::NodeId node, ParticipantId self,
                                     const math::Vec3& position) {
    auto it = find_viewer(node);
    if (it != viewers_.end() && it->node == node) {
        it->self = self;
        it->position = position;
        return;
    }
    ViewerState v{.node = node, .self = self, .position = position};
    v.next_due.assign(policy_.tiers().size(), sim::Time{});
    v.admitted.assign(policy_.tiers().size(), 0);
    v.shipped.assign(policy_.tiers().size(), 0);
    viewers_.insert(it, std::move(v));
}

void CellDeltaAggregator::update_viewer(net::NodeId node, const math::Vec3& position) {
    auto it = find_viewer(node);
    if (it != viewers_.end() && it->node == node) it->position = position;
}

void CellDeltaAggregator::set_viewer_qoe(net::NodeId node, const math::Vec3& gaze,
                                         double fovea_cos, std::vector<double> foveal,
                                         std::vector<double> peripheral) {
    auto it = find_viewer(node);
    if (it == viewers_.end() || it->node != node) return;
    ViewerState& v = *it;
    const std::size_t tiers = policy_.tiers().size();
    v.gaze = gaze.normalized();
    v.fovea_cos = fovea_cos;
    v.foveal_scale = std::move(foveal);
    v.peripheral_scale = std::move(peripheral);
    v.foveal_scale.resize(tiers, 1.0);
    v.peripheral_scale.resize(tiers, 1.0);
    if (!v.qoe) {
        // The foveal bank starts due now, like a freshly added viewer's.
        v.qoe = true;
        v.next_due_fov.assign(tiers, sim::Time{});
        v.admitted_fov.assign(tiers, 0);
        v.shipped_fov.assign(tiers, 0);
    }
}

void CellDeltaAggregator::clear_viewer_qoe(net::NodeId node) {
    auto it = find_viewer(node);
    if (it == viewers_.end() || it->node != node) return;
    it->qoe = false;
    it->foveal_scale.clear();
    it->peripheral_scale.clear();
    it->next_due_fov.clear();
    it->admitted_fov.clear();
    it->shipped_fov.clear();
}

void CellDeltaAggregator::remove_viewer(net::NodeId node) {
    auto it = find_viewer(node);
    if (it != viewers_.end() && it->node == node) viewers_.erase(it);
}

void CellDeltaAggregator::enqueue(const math::Vec3& position, AvatarWire wire) {
    const auto cell = InterestGrid::Cell{
        static_cast<std::int32_t>(std::floor(position.x / cell_size_)),
        static_cast<std::int32_t>(std::floor(position.y / cell_size_)),
        static_cast<std::int32_t>(std::floor(position.z / cell_size_))};
    pending_.push_back(PendingDelta{cell, std::move(wire)});
    ++updates_enqueued_;
    if (armed_) return;
    armed_ = true;
    net_.clock().schedule_after(interval_, [this] {
        armed_ = false;
        flush();
    });
}

void CellDeltaAggregator::flush() {
    if (pending_.empty()) return;
    const sim::Time now = net_.clock().now();
    const auto& tiers = policy_.tiers();
    // Admission is decided once per (viewer, tier) per flush: a tier whose
    // clock is due drains every cell it selects this flush, then re-arms.
    for (ViewerState& v : viewers_) {
        for (std::size_t t = 0; t < tiers.size(); ++t) {
            v.admitted[t] = now >= v.next_due[t] ? 1 : 0;
            v.shipped[t] = 0;
        }
        if (v.qoe) {
            for (std::size_t t = 0; t < tiers.size(); ++t) {
                v.admitted_fov[t] = now >= v.next_due_fov[t] ? 1 : 0;
                v.shipped_fov[t] = 0;
            }
        }
    }
    std::sort(pending_.begin(), pending_.end(),
              [](const PendingDelta& a, const PendingDelta& b) {
                  if (a.cell != b.cell) return a.cell < b.cell;
                  if (a.wire.participant != b.wire.participant)
                      return a.wire.participant < b.wire.participant;
                  return a.wire.seq < b.wire.seq;
              });
    std::size_t i = 0;
    while (i < pending_.size()) {
        const InterestGrid::Cell cell = pending_[i].cell;
        std::size_t j = i + 1;
        while (j < pending_.size() && pending_[j].cell == cell) ++j;
        ++cells_flushed_;
        const std::uint64_t run = j - i;
        const math::Vec3 lo{cell.x * cell_size_, cell.y * cell_size_,
                            cell.z * cell_size_};
        const math::Vec3 hi{lo.x + cell_size_, lo.y + cell_size_, lo.z + cell_size_};
        for (ViewerState& v : viewers_) {
            // Distance from the viewer to the nearest point of the cell's
            // AABB: conservative, so a cell is never dropped for a viewer
            // one of its entities is actually in range of.
            const double dx = std::max({lo.x - v.position.x, 0.0, v.position.x - hi.x});
            const double dy = std::max({lo.y - v.position.y, 0.0, v.position.y - hi.y});
            const double dz = std::max({lo.z - v.position.z, 0.0, v.position.z - hi.z});
            const int t = policy_.tier_index_for(std::sqrt(dx * dx + dy * dy + dz * dz));
            if (t < 0) {
                suppressed_aoi_ += run;
                continue;
            }
            const auto ti = static_cast<std::size_t>(t);
            // QoE viewers pick a clock bank by attention: the cell is foveal
            // when its centre lies inside the viewer's gaze cone (a viewer
            // standing inside the cell is always foveal — the cell surrounds
            // them). Each bank's rate is the tier's native rate times the
            // bank's scale for this tier.
            bool foveal = false;
            if (v.qoe) {
                const math::Vec3 centre = lerp(lo, hi, 0.5);
                const math::Vec3 dir = centre - v.position;
                const double n = dir.norm();
                foveal = v.gaze != math::Vec3::zero() &&
                         (n <= 0.0 || dir.dot(v.gaze) >= v.fovea_cos * n);
                const double scale =
                    foveal ? v.foveal_scale[ti] : v.peripheral_scale[ti];
                if (scale <= 0.0) {
                    suppressed_budget_ += run;
                    continue;
                }
            }
            std::vector<std::uint8_t>& admitted =
                v.qoe && foveal ? v.admitted_fov : v.admitted;
            std::vector<std::uint8_t>& shipped =
                v.qoe && foveal ? v.shipped_fov : v.shipped;
            if (!admitted[ti]) {
                suppressed_rate_ += run;
                continue;
            }
            shipped[ti] = 1;
            for (std::size_t k = i; k < j; ++k) {
                if (pending_[k].wire.participant == v.self) continue;
                batcher_.enqueue(v.node, pending_[k].wire);
                ++updates_shipped_;
            }
        }
        i = j;
    }
    for (ViewerState& v : viewers_) {
        for (std::size_t t = 0; t < tiers.size(); ++t) {
            if (v.shipped[t]) {
                const double scale = v.qoe ? v.peripheral_scale[t] : 1.0;
                v.next_due[t] =
                    now + sim::Time::seconds(1.0 / (tiers[t].update_rate_hz * scale));
            }
            if (v.qoe && v.shipped_fov[t]) {
                v.next_due_fov[t] =
                    now + sim::Time::seconds(
                              1.0 / (tiers[t].update_rate_hz * v.foveal_scale[t]));
            }
        }
    }
    pending_.clear();
    batcher_.flush();
}

}  // namespace mvc::sync
