#include "sync/jitter.hpp"

#include <algorithm>
#include <cmath>

namespace mvc::sync {

JitterBuffer::JitterBuffer(JitterBufferParams params) : params_(params) {}

void JitterBuffer::push(avatar::AvatarState state, sim::Time arrival) {
    // RFC 3550-style interarrival jitter: smooth |transit - smoothed_transit|.
    const double transit_ms = (arrival - state.captured_at).to_ms();
    if (have_transit_) {
        const double d = std::abs(transit_ms - smoothed_transit_ms_);
        jitter_ms_ += (d - jitter_ms_) / 16.0;
    }
    smoothed_transit_ms_ = have_transit_
                               ? smoothed_transit_ms_ + (transit_ms - smoothed_transit_ms_) / 8.0
                               : transit_ms;
    have_transit_ = true;

    // Insert sorted by capture time (arrivals may reorder).
    auto it = std::upper_bound(
        buffer_.begin(), buffer_.end(), state.captured_at,
        [](sim::Time t, const Entry& e) { return t < e.state.captured_at; });
    buffer_.insert(it, Entry{std::move(state), arrival});
    prune(arrival);
}

void JitterBuffer::prune(sim::Time now) {
    while (!buffer_.empty() &&
           now - buffer_.front().state.captured_at > params_.history) {
        buffer_.pop_front();
    }
}

sim::Time JitterBuffer::playout_delay() const {
    const sim::Time d = sim::Time::ms(params_.margin * jitter_ms_);
    return std::clamp(d, params_.min_delay, params_.max_delay);
}

std::optional<avatar::AvatarState> JitterBuffer::sample(sim::Time now) const {
    if (buffer_.empty()) return std::nullopt;
    // Playout point on the capture-time axis: the newest capture timestamp we
    // have seen, minus the (smoothed) transit, gives the source-time "now";
    // we render delayed by playout_delay from that.
    const sim::Time target = now - sim::Time::ms(smoothed_transit_ms_) - playout_delay();

    const Entry* before = nullptr;
    const Entry* after = nullptr;
    for (const Entry& e : buffer_) {
        if (e.state.captured_at <= target) {
            before = &e;
        } else {
            after = &e;
            break;
        }
    }
    if (before != nullptr && after != nullptr) {
        const double span = (after->state.captured_at - before->state.captured_at).to_seconds();
        const double t = span > 0.0
                             ? (target - before->state.captured_at).to_seconds() / span
                             : 0.0;
        avatar::AvatarState out = before->state;
        out.root.pose = math::interpolate(before->state.root.pose, after->state.root.pose, t);
        out.body.head = math::interpolate(before->state.body.head, after->state.body.head, t);
        out.body.left_hand =
            math::interpolate(before->state.body.left_hand, after->state.body.left_hand, t);
        out.body.right_hand =
            math::interpolate(before->state.body.right_hand, after->state.body.right_hand, t);
        out.captured_at = target;
        return out;
    }
    if (before != nullptr) {
        // Underrun: extrapolate from the newest state, bounded. The capture
        // timestamp stays anchored to real data (last capture + the amount
        // extrapolated) so stale displays are visible as stale — an outage
        // must not masquerade as a fresh frame.
        const sim::Time gap = target - before->state.captured_at;
        if (gap > sim::Time::zero()) ++underruns_;
        const double dt =
            std::min(gap, params_.max_extrapolation).to_seconds();
        avatar::AvatarState out = avatar::extrapolate(before->state, std::max(0.0, dt));
        out.captured_at = before->state.captured_at + sim::Time::seconds(std::max(0.0, dt));
        return out;
    }
    // Target earlier than everything buffered (startup): show the oldest.
    return buffer_.front().state;
}

}  // namespace mvc::sync
