#pragma once
// Receiver-side jitter buffer for avatar streams. Network jitter makes
// update spacing irregular; rendering directly from the freshest update
// produces visible stutter. The buffer delays playout by an adaptive amount
// (EWMA jitter * margin), then serves interpolated states at
// now - playout_delay, extrapolating when the buffer runs dry.

#include <deque>
#include <optional>

#include "avatar/state.hpp"

namespace mvc::sync {

struct JitterBufferParams {
    sim::Time min_delay{sim::Time::ms(10)};
    sim::Time max_delay{sim::Time::ms(150)};
    /// Playout delay = margin * jitter estimate (clamped to [min, max]).
    double margin{4.0};
    /// Buffered history horizon; states older than this are pruned.
    sim::Time history{sim::Time::seconds(2.0)};
    /// Max extrapolation when the buffer underruns.
    sim::Time max_extrapolation{sim::Time::ms(100)};
};

class JitterBuffer {
public:
    explicit JitterBuffer(JitterBufferParams params = {});

    /// Insert a decoded avatar state (capture-timestamped at the source)
    /// that arrived at `arrival` local time.
    void push(avatar::AvatarState state, sim::Time arrival);

    /// State to display at local time `now`: interpolated at the playout
    /// point, extrapolated on underrun (bounded), nullopt before any data.
    [[nodiscard]] std::optional<avatar::AvatarState> sample(sim::Time now) const;

    [[nodiscard]] sim::Time playout_delay() const;
    [[nodiscard]] double jitter_estimate_ms() const { return jitter_ms_; }
    [[nodiscard]] std::size_t depth() const { return buffer_.size(); }
    [[nodiscard]] std::uint64_t underruns() const { return underruns_; }

private:
    struct Entry {
        avatar::AvatarState state;
        sim::Time arrival;
    };

    JitterBufferParams params_;
    std::deque<Entry> buffer_;  // sorted by capture time
    double jitter_ms_{0.0};
    bool have_transit_{false};
    double smoothed_transit_ms_{0.0};
    mutable std::uint64_t underruns_{0};

    void prune(sim::Time now);
};

}  // namespace mvc::sync
