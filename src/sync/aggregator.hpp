#pragma once
// Interest-grid-driven delta aggregation at egress. Per-client fan-out asks
// "who should see this update?" once per update per viewer — O(updates x
// viewers) tier checks and one enqueue per pair. The aggregator inverts the
// loop: dirty deltas accumulate for one aggregation interval, are grouped by
// interest-grid cell once, and each viewer's packet is assembled from the
// cells its interest tiers select — the tier test runs per (cell, viewer),
// not per (update, viewer), and the per-viewer rate clock collapses from
// per-entity to per-tier. Shipped batches ride the existing WireBatcher, so
// every destination still receives one coalesced AvatarBatchWire per flush.
//
// Determinism: pending deltas are sorted by (cell, participant, seq),
// viewers are kept sorted by node id, and the batcher flushes destinations
// in NodeId order — aggregated egress is byte-identical for any thread
// count, same as the rest of the sharded engine.

#include <cstdint>
#include <vector>

#include "net/channel.hpp"
#include "sync/batcher.hpp"
#include "sync/interest.hpp"
#include "sync/wire.hpp"

namespace mvc::sync {

class CellDeltaAggregator {
public:
    /// Deltas enqueued on this aggregator are grouped by `cell_size` cells
    /// and shipped from `src` every `interval` to the viewers whose `policy`
    /// tiers select their cell.
    CellDeltaAggregator(net::Backend& net, net::NodeId src, sim::Time interval,
                        double cell_size, InterestPolicy policy = {},
                        net::Priority priority = net::Priority::Realtime);

    CellDeltaAggregator(const CellDeltaAggregator&) = delete;
    CellDeltaAggregator& operator=(const CellDeltaAggregator&) = delete;

    /// Register / re-position / drop a receiving viewer. `self` suppresses
    /// echoing a viewer's own avatar back to it.
    void add_viewer(net::NodeId node, ParticipantId self, const math::Vec3& position);
    void update_viewer(net::NodeId node, const math::Vec3& position);
    void remove_viewer(net::NodeId node);
    [[nodiscard]] std::size_t viewer_count() const { return viewers_.size(); }

    /// Attach QoE-driven attention state to a viewer (see qoe::BudgetAllocator):
    /// `gaze` is the world-space view direction (zero = no gaze signal, the
    /// whole view is peripheral), `fovea_cos` the gaze-cone threshold, and the
    /// two banks are per-tier rate scales multiplied into this viewer's tier
    /// clocks — foveal for cells inside the cone, peripheral outside — so
    /// avatar update rates degrade by attention rather than uniformly.
    /// Viewers without QoE state take the exact legacy path (byte-identical).
    void set_viewer_qoe(net::NodeId node, const math::Vec3& gaze, double fovea_cos,
                        std::vector<double> foveal, std::vector<double> peripheral);
    void clear_viewer_qoe(net::NodeId node);

    /// Queue one dirty delta; `position` decides its cell. Arms the flush
    /// timer if idle.
    void enqueue(const math::Vec3& position, AvatarWire wire);

    /// Group pending deltas by cell, select each viewer's cells by tier
    /// distance (nearest point of the cell's AABB) and per-tier rate clock,
    /// and ship one batch per destination now.
    void flush();

    [[nodiscard]] sim::Time interval() const { return interval_; }
    [[nodiscard]] const WireBatcher& batcher() const { return batcher_; }
    [[nodiscard]] std::uint64_t updates_enqueued() const { return updates_enqueued_; }
    [[nodiscard]] std::uint64_t updates_shipped() const { return updates_shipped_; }
    [[nodiscard]] std::uint64_t cells_flushed() const { return cells_flushed_; }
    [[nodiscard]] std::uint64_t suppressed_by_aoi() const { return suppressed_aoi_; }
    [[nodiscard]] std::uint64_t suppressed_by_rate() const { return suppressed_rate_; }
    /// Runs suppressed because a QoE rate scale was zero for the tier.
    [[nodiscard]] std::uint64_t suppressed_by_budget() const { return suppressed_budget_; }

private:
    struct PendingDelta {
        InterestGrid::Cell cell;
        AvatarWire wire;
    };
    struct ViewerState {
        net::NodeId node{net::kInvalidNode};
        ParticipantId self;
        math::Vec3 position;
        /// Per-tier rate clocks + per-flush admission/shipped scratch. For a
        /// QoE viewer these arrays are the *peripheral* bank (scales applied);
        /// without QoE state they run at the tiers' native rates, unchanged.
        std::vector<sim::Time> next_due;
        std::vector<std::uint8_t> admitted;
        std::vector<std::uint8_t> shipped;
        /// QoE attention state (set_viewer_qoe): gaze cone + per-tier scale
        /// banks, with a second clock bank for cells inside the cone.
        bool qoe{false};
        math::Vec3 gaze;
        double fovea_cos{0.866};
        std::vector<double> foveal_scale;
        std::vector<double> peripheral_scale;
        std::vector<sim::Time> next_due_fov;
        std::vector<std::uint8_t> admitted_fov;
        std::vector<std::uint8_t> shipped_fov;
    };

    net::Backend& net_;
    InterestPolicy policy_;
    double cell_size_;
    sim::Time interval_;
    WireBatcher batcher_;
    std::vector<ViewerState> viewers_;  // sorted by node id
    std::vector<PendingDelta> pending_;
    bool armed_{false};
    std::uint64_t updates_enqueued_{0};
    std::uint64_t updates_shipped_{0};
    std::uint64_t cells_flushed_{0};
    std::uint64_t suppressed_aoi_{0};
    std::uint64_t suppressed_rate_{0};
    std::uint64_t suppressed_budget_{0};

    [[nodiscard]] std::vector<ViewerState>::iterator find_viewer(net::NodeId node);
};

}  // namespace mvc::sync
