#pragma once
// Clock synchronization between classroom servers. Every host has a
// DriftingClock (skew in ppm + boot offset); ClockSyncSession runs NTP-style
// probe exchanges over the network backend and maintains an offset
// estimate using minimum-RTT filtering (Cristian/NTP hybrid). Cross-
// classroom event ordering in E10 depends on this estimate's accuracy.

#include <deque>
#include <string>

#include "net/channel.hpp"

namespace mvc::net {
class WireCodecs;
}

namespace mvc::sync {

/// A host clock that drifts relative to simulation (true) time.
class DriftingClock {
public:
    DriftingClock() = default;
    /// `skew_ppm`: parts-per-million rate error; `offset`: epoch offset.
    DriftingClock(double skew_ppm, sim::Time offset)
        : skew_ppm_(skew_ppm), offset_(offset) {}

    /// Local reading for a given true (simulation) time.
    [[nodiscard]] sim::Time local_time(sim::Time true_time) const {
        const double scaled = true_time.to_seconds() * (1.0 + skew_ppm_ * 1e-6);
        return sim::Time::seconds(scaled) + offset_;
    }
    /// True offset (local - true) at the given instant; the quantity the
    /// estimator tries to recover.
    [[nodiscard]] sim::Time true_offset(sim::Time true_time) const {
        return local_time(true_time) - true_time;
    }
    [[nodiscard]] double skew_ppm() const { return skew_ppm_; }

private:
    double skew_ppm_{0.0};
    sim::Time offset_{};
};

struct ClockSyncParams {
    sim::Time probe_interval{sim::Time::ms(250)};
    /// Number of recent probes considered for the min-RTT pick.
    std::size_t window{8};
};

/// Client side of an NTP-like exchange: estimates (client_clock - server_clock).
class ClockSyncSession {
public:
    ClockSyncSession(net::Backend& net, net::PacketDemux& client_demux,
                     net::PacketDemux& server_demux, std::string flow,
                     const DriftingClock& client_clock, const DriftingClock& server_clock,
                     ClockSyncParams params = {});

    void start();
    void stop();

    /// Register codecs for the private probe Request/Reply payloads so the
    /// NTP-like exchange can run over the real UDP backend.
    static void register_wire_codecs(net::WireCodecs& codecs, std::uint16_t request_tag,
                                     std::uint16_t reply_tag);

    [[nodiscard]] bool synchronized() const { return !window_.empty(); }
    /// Estimated offset of the client clock relative to the server clock.
    [[nodiscard]] sim::Time estimated_offset() const;
    /// |estimate - truth| right now (observable in simulation only).
    [[nodiscard]] sim::Time estimation_error() const;
    /// Convert a client-local timestamp into server-clock terms.
    [[nodiscard]] sim::Time to_server_time(sim::Time client_local) const;
    [[nodiscard]] std::uint64_t probes_completed() const { return probes_completed_; }

private:
    struct Probe {
        sim::Time offset;
        sim::Time rtt;
    };
    struct Request {
        sim::Time t0_client;
    };
    struct Reply {
        sim::Time t0_client;
        sim::Time t_server;
    };

    net::Backend& net_;
    net::NodeId client_;
    net::NodeId server_;
    std::string flow_;
    net::Channel probe_tx_;
    net::Channel reply_tx_;
    const DriftingClock& client_clock_;
    const DriftingClock& server_clock_;
    ClockSyncParams params_;
    sim::EventHandle task_;
    bool running_{false};
    std::deque<Probe> window_;
    std::uint64_t probes_completed_{0};

    void send_probe();
    void handle_request(net::Packet&& p);
    void handle_reply(net::Packet&& p);
};

}  // namespace mvc::sync
