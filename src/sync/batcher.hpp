#pragma once
// Per-destination coalescing of avatar updates. A fan-out sender (cloud
// origin, relay, edge) enqueues each outbound update with its destination;
// the batcher holds them for one batch interval and then ships one
// AvatarBatchWire packet per destination. On WAN and cross-shard paths this
// turns N per-tick packets into one, cutting per-packet header overhead and
// — in sharded runs — boundary messages, at the cost of up to one interval
// of added latency.
//
// Determinism: the flush event is scheduled through the owning shard's
// simulator and destinations are flushed in NodeId order, so batched runs
// are as reproducible as unbatched ones.

#include <cstdint>
#include <map>

#include "net/channel.hpp"
#include "sync/wire.hpp"

namespace mvc::sync {

class WireBatcher {
public:
    /// Batches are sent from `src` on kAvatarBatchFlow every `interval`.
    WireBatcher(net::Backend& net, net::NodeId src, sim::Time interval,
                net::Priority priority = net::Priority::Realtime);

    WireBatcher(const WireBatcher&) = delete;
    WireBatcher& operator=(const WireBatcher&) = delete;

    /// Queue one update for `dst`; arms the flush timer if idle.
    void enqueue(net::NodeId dst, AvatarWire wire);
    /// Ship all pending batches now (also runs on every timer expiry).
    void flush();

    [[nodiscard]] sim::Time interval() const { return interval_; }
    [[nodiscard]] std::uint64_t batches_sent() const { return batches_sent_; }
    [[nodiscard]] std::uint64_t updates_batched() const { return updates_batched_; }
    [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

private:
    net::Backend& net_;
    net::Channel tx_;
    sim::Time interval_;
    std::map<net::NodeId, AvatarBatchWire> pending_;
    bool armed_{false};
    std::uint64_t batches_sent_{0};
    std::uint64_t updates_batched_{0};
    std::uint64_t bytes_sent_{0};
};

}  // namespace mvc::sync
