#include "sync/batcher.hpp"

#include <utility>

namespace mvc::sync {

WireBatcher::WireBatcher(net::Backend& net, net::NodeId src, sim::Time interval,
                         net::Priority priority)
    : net_(net),
      tx_(net.open_channel({.src = src,
                            .flow = std::string{kAvatarBatchFlow},
                            .options = {.priority = priority}})),
      interval_(interval) {}

void WireBatcher::enqueue(net::NodeId dst, AvatarWire wire) {
    pending_[dst].updates.push_back(std::move(wire));
    ++updates_batched_;
    if (armed_) return;
    armed_ = true;
    net_.clock().schedule_after(interval_, [this] {
        armed_ = false;
        flush();
    });
}

void WireBatcher::flush() {
    // Map nodes are kept between flushes: erasing them would make the first
    // post-flush enqueue for each destination re-allocate its node every
    // interval. Destinations with nothing queued are skipped.
    for (auto& [dst, batch] : pending_) {
        if (batch.updates.empty()) continue;
        const std::size_t size = batch.wire_bytes();
        bytes_sent_ += size;
        ++batches_sent_;
        tx_.send_to(dst, size, std::move(batch));
        batch = AvatarBatchWire{};
    }
}

}  // namespace mvc::sync
