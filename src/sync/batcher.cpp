#include "sync/batcher.hpp"

#include <utility>

namespace mvc::sync {

WireBatcher::WireBatcher(net::Network& net, net::NodeId src, sim::Time interval,
                         net::Priority priority)
    : net_(net),
      tx_(net, src, std::string{kAvatarBatchFlow},
          net::ChannelOptions{.priority = priority}),
      interval_(interval) {}

void WireBatcher::enqueue(net::NodeId dst, AvatarWire wire) {
    pending_[dst].updates.push_back(std::move(wire));
    ++updates_batched_;
    if (armed_) return;
    armed_ = true;
    net_.simulator().schedule_after(interval_, [this] {
        armed_ = false;
        flush();
    });
}

void WireBatcher::flush() {
    for (auto& [dst, batch] : pending_) {
        if (batch.updates.empty()) continue;
        const std::size_t size = batch.wire_bytes();
        bytes_sent_ += size;
        ++batches_sent_;
        tx_.send_to(dst, size, std::move(batch));
        batch = AvatarBatchWire{};
    }
    pending_.clear();
}

}  // namespace mvc::sync
