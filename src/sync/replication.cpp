#include "sync/replication.hpp"

#include <stdexcept>
#include <utility>

#include "common/hash.hpp"

namespace mvc::sync {

AvatarPublisher::AvatarPublisher(sim::Clock& clock, const avatar::AvatarCodec& codec,
                                 ReplicationParams params, SinkFn sink)
    : sim_(clock), codec_(codec), params_(params), sink_(std::move(sink)) {
    if (params_.tick_rate_hz <= 0.0)
        throw std::invalid_argument("AvatarPublisher: tick rate must be positive");
    if (!sink_) throw std::invalid_argument("AvatarPublisher: null sink");
}

void AvatarPublisher::set_state(const avatar::AvatarState& state) {
    current_ = state;
    have_state_ = true;
}

void AvatarPublisher::start() {
    if (running_) return;
    running_ = true;
    task_ = sim_.schedule_every(sim::Time::seconds(1.0 / effective_rate_hz()),
                                [this] { tick(); });
}

void AvatarPublisher::stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(task_);
}

void AvatarPublisher::set_rate_scale(double scale) {
    if (scale <= 0.0)
        throw std::invalid_argument("AvatarPublisher: rate scale must be positive");
    if (scale == rate_scale_) return;
    rate_scale_ = scale;
    if (running_) {  // re-arm the periodic task at the new cadence
        sim_.cancel(task_);
        task_ = sim_.schedule_every(sim::Time::seconds(1.0 / effective_rate_hz()),
                                    [this] { tick(); });
    }
}

void AvatarPublisher::set_threshold_scale(double scale) {
    if (scale <= 0.0)
        throw std::invalid_argument("AvatarPublisher: threshold scale must be positive");
    threshold_scale_ = scale;
}

void AvatarPublisher::tick() {
    if (provider_) {
        auto fresh = provider_();
        if (fresh.has_value()) {
            current_ = std::move(*fresh);
            have_state_ = true;
        }
    }
    if (!have_state_) return;

    const bool keyframe_time =
        !sent_anything_ ||
        sim_.now() - last_keyframe_at_ >= params_.keyframe_interval;
    if (keyframe_due_ || keyframe_time) {
        auto bytes = codec_.encode_full(current_);
        bytes_sent_ += bytes.size();
        ++sent_keyframes_;
        last_sent_ = current_;
        last_sent_at_ = sim_.now();
        last_keyframe_at_ = sim_.now();
        sent_anything_ = true;
        keyframe_due_ = false;
        sink_(std::move(bytes), true, current_.captured_at);
        return;
    }

    // Receiver-view prediction: what the other side shows right now if it
    // dead-reckons from the last update we sent.
    const double dt = (sim_.now() - last_sent_at_).to_seconds();
    const avatar::AvatarState predicted = avatar::extrapolate(last_sent_, dt);
    const double err = avatar::avatar_error(predicted, current_);
    const double threshold = params_.error_threshold * threshold_scale_;
    if (threshold > 0.0 && err <= threshold) {
        ++suppressed_;
        return;
    }

    auto bytes = codec_.encode_delta(last_sent_, current_);
    bytes_sent_ += bytes.size();
    ++sent_updates_;
    last_sent_ = current_;
    last_sent_at_ = sim_.now();
    sink_(std::move(bytes), false, current_.captured_at);
}

AvatarReplica::AvatarReplica(const avatar::AvatarCodec& codec, JitterBufferParams jitter)
    : codec_(codec), buffer_(jitter) {}

void AvatarReplica::ingest(std::span<const std::uint8_t> bytes, bool keyframe,
                           sim::Time arrival) {
    if (keyframe) {
        reference_ = codec_.decode_full(bytes);
        have_reference_ = true;
    } else {
        if (!have_reference_) {
            ++dropped_waiting_keyframe_;
            return;
        }
        reference_ = codec_.decode_delta(reference_, bytes);
    }
    ++decoded_;
    buffer_.push(reference_, arrival);
}

std::optional<avatar::AvatarState> AvatarReplica::display(sim::Time now) const {
    return buffer_.sample(now);
}

std::uint64_t AvatarReplica::state_digest() const {
    common::Hash64 h;
    h.u64(decoded_).u64(dropped_waiting_keyframe_).boolean(have_reference_);
    if (have_reference_) {
        h.u32(reference_.participant.value());
        h.i64(reference_.captured_at.nanos());
        const math::Pose& p = reference_.root.pose;
        h.f64(p.position.x).f64(p.position.y).f64(p.position.z);
        h.f64(p.orientation.w).f64(p.orientation.x).f64(p.orientation.y).f64(p.orientation.z);
        const math::Vec3& v = reference_.root.linear_velocity;
        h.f64(v.x).f64(v.y).f64(v.z);
        h.u8(reference_.viseme);
    }
    return h.digest();
}

std::optional<avatar::AvatarState> AvatarReplica::latest() const {
    if (!have_reference_) return std::nullopt;
    return reference_;
}

}  // namespace mvc::sync
