#pragma once
// Wire payloads carried by avatar-flow packets between classroom servers.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "sim/time.hpp"

namespace mvc::sync {

inline constexpr std::string_view kAvatarFlow = "avatar";
/// Flow label for coalesced per-interval avatar batches (see WireBatcher).
inline constexpr std::string_view kAvatarBatchFlow = "avatar.batch";

struct AvatarWire {
    ParticipantId participant;
    ClassroomId source_room;
    bool keyframe{false};
    std::vector<std::uint8_t> bytes;
    /// Source capture timestamp (duplicated outside the encoded bytes so
    /// relays can account latency without decoding).
    sim::Time captured_at{};
    /// Failover routing: node ids the cloud should forward this update to on
    /// behalf of the sender because the sender's direct link to them is dead.
    /// Plain node ids (net::NodeId is uint32) to keep this header net-free.
    std::vector<std::uint32_t> relay_to;
    /// Per-sender transmission counter, incremented once per update actually
    /// put on the wire. Dead-reckoning suppression means receiver silence is
    /// ambiguous (suppressed != lost); gaps in this sequence are the honest
    /// per-path loss signal fault::PathHealth consumes. Last member so the
    /// positional aggregate initializers around the codebase keep working.
    std::uint32_t seq{0};

    /// Bytes this update occupies on the wire (encoded state + subheader).
    [[nodiscard]] std::size_t wire_bytes() const { return bytes.size() + 8; }
};

/// Several avatar updates bound for the same destination, shipped as one
/// packet: fan-out senders pay one packet header (and one cross-shard
/// message) per destination per batch interval instead of one per update.
struct AvatarBatchWire {
    std::vector<AvatarWire> updates;

    /// Wire size of the whole batch: per-update bytes plus a 2-byte count.
    [[nodiscard]] std::size_t wire_bytes() const {
        std::size_t total = 2;
        for (const AvatarWire& u : updates) total += u.wire_bytes();
        return total;
    }
};

}  // namespace mvc::sync
