#pragma once
// Wire payload carried by avatar-flow packets between classroom servers.

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "sim/time.hpp"

namespace mvc::sync {

inline constexpr std::string_view kAvatarFlow = "avatar";

struct AvatarWire {
    ParticipantId participant;
    ClassroomId source_room;
    bool keyframe{false};
    std::vector<std::uint8_t> bytes;
    /// Source capture timestamp (duplicated outside the encoded bytes so
    /// relays can account latency without decoding).
    sim::Time captured_at{};
    /// Failover routing: node ids the cloud should forward this update to on
    /// behalf of the sender because the sender's direct link to them is dead.
    /// Plain node ids (net::NodeId is uint32) to keep this header net-free.
    std::vector<std::uint32_t> relay_to;
};

}  // namespace mvc::sync
