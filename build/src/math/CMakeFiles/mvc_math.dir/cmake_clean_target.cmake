file(REMOVE_RECURSE
  "libmvc_math.a"
)
