# Empty dependencies file for mvc_math.
# This may be replaced when dependencies are built.
