file(REMOVE_RECURSE
  "CMakeFiles/mvc_math.dir/math.cpp.o"
  "CMakeFiles/mvc_math.dir/math.cpp.o.d"
  "libmvc_math.a"
  "libmvc_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
