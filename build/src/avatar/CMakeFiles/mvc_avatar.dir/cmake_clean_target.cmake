file(REMOVE_RECURSE
  "libmvc_avatar.a"
)
