file(REMOVE_RECURSE
  "CMakeFiles/mvc_avatar.dir/codec.cpp.o"
  "CMakeFiles/mvc_avatar.dir/codec.cpp.o.d"
  "CMakeFiles/mvc_avatar.dir/ik.cpp.o"
  "CMakeFiles/mvc_avatar.dir/ik.cpp.o.d"
  "CMakeFiles/mvc_avatar.dir/skeleton.cpp.o"
  "CMakeFiles/mvc_avatar.dir/skeleton.cpp.o.d"
  "CMakeFiles/mvc_avatar.dir/state.cpp.o"
  "CMakeFiles/mvc_avatar.dir/state.cpp.o.d"
  "libmvc_avatar.a"
  "libmvc_avatar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_avatar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
