# Empty compiler generated dependencies file for mvc_avatar.
# This may be replaced when dependencies are built.
