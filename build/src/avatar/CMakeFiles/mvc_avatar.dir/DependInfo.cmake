
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/avatar/codec.cpp" "src/avatar/CMakeFiles/mvc_avatar.dir/codec.cpp.o" "gcc" "src/avatar/CMakeFiles/mvc_avatar.dir/codec.cpp.o.d"
  "/root/repo/src/avatar/ik.cpp" "src/avatar/CMakeFiles/mvc_avatar.dir/ik.cpp.o" "gcc" "src/avatar/CMakeFiles/mvc_avatar.dir/ik.cpp.o.d"
  "/root/repo/src/avatar/skeleton.cpp" "src/avatar/CMakeFiles/mvc_avatar.dir/skeleton.cpp.o" "gcc" "src/avatar/CMakeFiles/mvc_avatar.dir/skeleton.cpp.o.d"
  "/root/repo/src/avatar/state.cpp" "src/avatar/CMakeFiles/mvc_avatar.dir/state.cpp.o" "gcc" "src/avatar/CMakeFiles/mvc_avatar.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mvc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
