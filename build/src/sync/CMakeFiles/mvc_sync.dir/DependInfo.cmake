
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/clock.cpp" "src/sync/CMakeFiles/mvc_sync.dir/clock.cpp.o" "gcc" "src/sync/CMakeFiles/mvc_sync.dir/clock.cpp.o.d"
  "/root/repo/src/sync/interest.cpp" "src/sync/CMakeFiles/mvc_sync.dir/interest.cpp.o" "gcc" "src/sync/CMakeFiles/mvc_sync.dir/interest.cpp.o.d"
  "/root/repo/src/sync/jitter.cpp" "src/sync/CMakeFiles/mvc_sync.dir/jitter.cpp.o" "gcc" "src/sync/CMakeFiles/mvc_sync.dir/jitter.cpp.o.d"
  "/root/repo/src/sync/replication.cpp" "src/sync/CMakeFiles/mvc_sync.dir/replication.cpp.o" "gcc" "src/sync/CMakeFiles/mvc_sync.dir/replication.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/avatar/CMakeFiles/mvc_avatar.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mvc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
