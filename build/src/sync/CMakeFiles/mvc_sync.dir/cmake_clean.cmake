file(REMOVE_RECURSE
  "CMakeFiles/mvc_sync.dir/clock.cpp.o"
  "CMakeFiles/mvc_sync.dir/clock.cpp.o.d"
  "CMakeFiles/mvc_sync.dir/interest.cpp.o"
  "CMakeFiles/mvc_sync.dir/interest.cpp.o.d"
  "CMakeFiles/mvc_sync.dir/jitter.cpp.o"
  "CMakeFiles/mvc_sync.dir/jitter.cpp.o.d"
  "CMakeFiles/mvc_sync.dir/replication.cpp.o"
  "CMakeFiles/mvc_sync.dir/replication.cpp.o.d"
  "libmvc_sync.a"
  "libmvc_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
