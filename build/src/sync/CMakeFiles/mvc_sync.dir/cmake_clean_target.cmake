file(REMOVE_RECURSE
  "libmvc_sync.a"
)
