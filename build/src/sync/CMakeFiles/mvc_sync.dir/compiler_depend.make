# Empty compiler generated dependencies file for mvc_sync.
# This may be replaced when dependencies are built.
