file(REMOVE_RECURSE
  "libmvc_cloud.a"
)
