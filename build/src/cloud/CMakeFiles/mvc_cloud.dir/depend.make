# Empty dependencies file for mvc_cloud.
# This may be replaced when dependencies are built.
