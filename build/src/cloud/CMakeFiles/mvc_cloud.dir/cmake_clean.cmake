file(REMOVE_RECURSE
  "CMakeFiles/mvc_cloud.dir/cloud_server.cpp.o"
  "CMakeFiles/mvc_cloud.dir/cloud_server.cpp.o.d"
  "CMakeFiles/mvc_cloud.dir/fanout.cpp.o"
  "CMakeFiles/mvc_cloud.dir/fanout.cpp.o.d"
  "CMakeFiles/mvc_cloud.dir/relay.cpp.o"
  "CMakeFiles/mvc_cloud.dir/relay.cpp.o.d"
  "CMakeFiles/mvc_cloud.dir/vr_client.cpp.o"
  "CMakeFiles/mvc_cloud.dir/vr_client.cpp.o.d"
  "CMakeFiles/mvc_cloud.dir/vr_layout.cpp.o"
  "CMakeFiles/mvc_cloud.dir/vr_layout.cpp.o.d"
  "libmvc_cloud.a"
  "libmvc_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
