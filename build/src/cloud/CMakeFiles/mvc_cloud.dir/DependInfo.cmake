
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/cloud_server.cpp" "src/cloud/CMakeFiles/mvc_cloud.dir/cloud_server.cpp.o" "gcc" "src/cloud/CMakeFiles/mvc_cloud.dir/cloud_server.cpp.o.d"
  "/root/repo/src/cloud/fanout.cpp" "src/cloud/CMakeFiles/mvc_cloud.dir/fanout.cpp.o" "gcc" "src/cloud/CMakeFiles/mvc_cloud.dir/fanout.cpp.o.d"
  "/root/repo/src/cloud/relay.cpp" "src/cloud/CMakeFiles/mvc_cloud.dir/relay.cpp.o" "gcc" "src/cloud/CMakeFiles/mvc_cloud.dir/relay.cpp.o.d"
  "/root/repo/src/cloud/vr_client.cpp" "src/cloud/CMakeFiles/mvc_cloud.dir/vr_client.cpp.o" "gcc" "src/cloud/CMakeFiles/mvc_cloud.dir/vr_client.cpp.o.d"
  "/root/repo/src/cloud/vr_layout.cpp" "src/cloud/CMakeFiles/mvc_cloud.dir/vr_layout.cpp.o" "gcc" "src/cloud/CMakeFiles/mvc_cloud.dir/vr_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sync/CMakeFiles/mvc_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/avatar/CMakeFiles/mvc_avatar.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mvc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
