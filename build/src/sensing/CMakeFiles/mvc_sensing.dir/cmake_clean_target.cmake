file(REMOVE_RECURSE
  "libmvc_sensing.a"
)
