# Empty dependencies file for mvc_sensing.
# This may be replaced when dependencies are built.
