file(REMOVE_RECURSE
  "CMakeFiles/mvc_sensing.dir/fusion.cpp.o"
  "CMakeFiles/mvc_sensing.dir/fusion.cpp.o.d"
  "CMakeFiles/mvc_sensing.dir/headset.cpp.o"
  "CMakeFiles/mvc_sensing.dir/headset.cpp.o.d"
  "CMakeFiles/mvc_sensing.dir/room_sensors.cpp.o"
  "CMakeFiles/mvc_sensing.dir/room_sensors.cpp.o.d"
  "libmvc_sensing.a"
  "libmvc_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
