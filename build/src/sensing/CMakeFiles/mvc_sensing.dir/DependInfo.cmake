
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensing/fusion.cpp" "src/sensing/CMakeFiles/mvc_sensing.dir/fusion.cpp.o" "gcc" "src/sensing/CMakeFiles/mvc_sensing.dir/fusion.cpp.o.d"
  "/root/repo/src/sensing/headset.cpp" "src/sensing/CMakeFiles/mvc_sensing.dir/headset.cpp.o" "gcc" "src/sensing/CMakeFiles/mvc_sensing.dir/headset.cpp.o.d"
  "/root/repo/src/sensing/room_sensors.cpp" "src/sensing/CMakeFiles/mvc_sensing.dir/room_sensors.cpp.o" "gcc" "src/sensing/CMakeFiles/mvc_sensing.dir/room_sensors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mvc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
