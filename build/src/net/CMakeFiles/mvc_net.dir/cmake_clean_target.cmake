file(REMOVE_RECURSE
  "libmvc_net.a"
)
