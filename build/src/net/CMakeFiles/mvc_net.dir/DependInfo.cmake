
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/fec.cpp" "src/net/CMakeFiles/mvc_net.dir/fec.cpp.o" "gcc" "src/net/CMakeFiles/mvc_net.dir/fec.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/mvc_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/mvc_net.dir/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/mvc_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/mvc_net.dir/network.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/mvc_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/mvc_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "src/net/CMakeFiles/mvc_net.dir/transport.cpp.o" "gcc" "src/net/CMakeFiles/mvc_net.dir/transport.cpp.o.d"
  "/root/repo/src/net/wifi.cpp" "src/net/CMakeFiles/mvc_net.dir/wifi.cpp.o" "gcc" "src/net/CMakeFiles/mvc_net.dir/wifi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mvc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
