file(REMOVE_RECURSE
  "CMakeFiles/mvc_net.dir/fec.cpp.o"
  "CMakeFiles/mvc_net.dir/fec.cpp.o.d"
  "CMakeFiles/mvc_net.dir/link.cpp.o"
  "CMakeFiles/mvc_net.dir/link.cpp.o.d"
  "CMakeFiles/mvc_net.dir/network.cpp.o"
  "CMakeFiles/mvc_net.dir/network.cpp.o.d"
  "CMakeFiles/mvc_net.dir/topology.cpp.o"
  "CMakeFiles/mvc_net.dir/topology.cpp.o.d"
  "CMakeFiles/mvc_net.dir/transport.cpp.o"
  "CMakeFiles/mvc_net.dir/transport.cpp.o.d"
  "CMakeFiles/mvc_net.dir/wifi.cpp.o"
  "CMakeFiles/mvc_net.dir/wifi.cpp.o.d"
  "libmvc_net.a"
  "libmvc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
