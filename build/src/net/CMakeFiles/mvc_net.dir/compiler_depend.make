# Empty compiler generated dependencies file for mvc_net.
# This may be replaced when dependencies are built.
