file(REMOVE_RECURSE
  "libmvc_comfort.a"
)
