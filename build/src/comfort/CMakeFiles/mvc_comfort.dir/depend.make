# Empty dependencies file for mvc_comfort.
# This may be replaced when dependencies are built.
