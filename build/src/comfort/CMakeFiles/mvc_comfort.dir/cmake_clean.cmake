file(REMOVE_RECURSE
  "CMakeFiles/mvc_comfort.dir/cybersickness.cpp.o"
  "CMakeFiles/mvc_comfort.dir/cybersickness.cpp.o.d"
  "CMakeFiles/mvc_comfort.dir/fuzzy.cpp.o"
  "CMakeFiles/mvc_comfort.dir/fuzzy.cpp.o.d"
  "libmvc_comfort.a"
  "libmvc_comfort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_comfort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
