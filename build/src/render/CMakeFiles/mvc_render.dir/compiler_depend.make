# Empty compiler generated dependencies file for mvc_render.
# This may be replaced when dependencies are built.
