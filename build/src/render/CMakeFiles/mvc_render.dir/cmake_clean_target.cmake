file(REMOVE_RECURSE
  "libmvc_render.a"
)
