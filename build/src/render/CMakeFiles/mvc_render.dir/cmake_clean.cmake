file(REMOVE_RECURSE
  "CMakeFiles/mvc_render.dir/render.cpp.o"
  "CMakeFiles/mvc_render.dir/render.cpp.o.d"
  "libmvc_render.a"
  "libmvc_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
