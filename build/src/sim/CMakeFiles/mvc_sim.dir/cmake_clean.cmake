file(REMOVE_RECURSE
  "CMakeFiles/mvc_sim.dir/metrics.cpp.o"
  "CMakeFiles/mvc_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/mvc_sim.dir/rng.cpp.o"
  "CMakeFiles/mvc_sim.dir/rng.cpp.o.d"
  "CMakeFiles/mvc_sim.dir/simulator.cpp.o"
  "CMakeFiles/mvc_sim.dir/simulator.cpp.o.d"
  "libmvc_sim.a"
  "libmvc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
