file(REMOVE_RECURSE
  "libmvc_sim.a"
)
