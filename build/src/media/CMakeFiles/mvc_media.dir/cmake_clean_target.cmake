file(REMOVE_RECURSE
  "libmvc_media.a"
)
