file(REMOVE_RECURSE
  "CMakeFiles/mvc_media.dir/audio.cpp.o"
  "CMakeFiles/mvc_media.dir/audio.cpp.o.d"
  "CMakeFiles/mvc_media.dir/spatial.cpp.o"
  "CMakeFiles/mvc_media.dir/spatial.cpp.o.d"
  "CMakeFiles/mvc_media.dir/video.cpp.o"
  "CMakeFiles/mvc_media.dir/video.cpp.o.d"
  "libmvc_media.a"
  "libmvc_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
