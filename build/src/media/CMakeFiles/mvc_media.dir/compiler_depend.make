# Empty compiler generated dependencies file for mvc_media.
# This may be replaced when dependencies are built.
