
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/audio.cpp" "src/media/CMakeFiles/mvc_media.dir/audio.cpp.o" "gcc" "src/media/CMakeFiles/mvc_media.dir/audio.cpp.o.d"
  "/root/repo/src/media/spatial.cpp" "src/media/CMakeFiles/mvc_media.dir/spatial.cpp.o" "gcc" "src/media/CMakeFiles/mvc_media.dir/spatial.cpp.o.d"
  "/root/repo/src/media/video.cpp" "src/media/CMakeFiles/mvc_media.dir/video.cpp.o" "gcc" "src/media/CMakeFiles/mvc_media.dir/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mvc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
