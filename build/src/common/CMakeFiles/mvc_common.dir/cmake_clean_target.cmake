file(REMOVE_RECURSE
  "libmvc_common.a"
)
