# Empty compiler generated dependencies file for mvc_common.
# This may be replaced when dependencies are built.
