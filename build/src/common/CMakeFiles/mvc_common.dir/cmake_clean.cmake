file(REMOVE_RECURSE
  "CMakeFiles/mvc_common.dir/json.cpp.o"
  "CMakeFiles/mvc_common.dir/json.cpp.o.d"
  "libmvc_common.a"
  "libmvc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
