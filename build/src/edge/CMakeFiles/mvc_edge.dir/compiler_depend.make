# Empty compiler generated dependencies file for mvc_edge.
# This may be replaced when dependencies are built.
