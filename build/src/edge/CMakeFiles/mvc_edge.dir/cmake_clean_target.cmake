file(REMOVE_RECURSE
  "libmvc_edge.a"
)
