file(REMOVE_RECURSE
  "CMakeFiles/mvc_edge.dir/edge_server.cpp.o"
  "CMakeFiles/mvc_edge.dir/edge_server.cpp.o.d"
  "CMakeFiles/mvc_edge.dir/retarget.cpp.o"
  "CMakeFiles/mvc_edge.dir/retarget.cpp.o.d"
  "CMakeFiles/mvc_edge.dir/seats.cpp.o"
  "CMakeFiles/mvc_edge.dir/seats.cpp.o.d"
  "libmvc_edge.a"
  "libmvc_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
