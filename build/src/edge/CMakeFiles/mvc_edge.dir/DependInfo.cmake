
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edge/edge_server.cpp" "src/edge/CMakeFiles/mvc_edge.dir/edge_server.cpp.o" "gcc" "src/edge/CMakeFiles/mvc_edge.dir/edge_server.cpp.o.d"
  "/root/repo/src/edge/retarget.cpp" "src/edge/CMakeFiles/mvc_edge.dir/retarget.cpp.o" "gcc" "src/edge/CMakeFiles/mvc_edge.dir/retarget.cpp.o.d"
  "/root/repo/src/edge/seats.cpp" "src/edge/CMakeFiles/mvc_edge.dir/seats.cpp.o" "gcc" "src/edge/CMakeFiles/mvc_edge.dir/seats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sync/CMakeFiles/mvc_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/mvc_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/avatar/CMakeFiles/mvc_avatar.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mvc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
