file(REMOVE_RECURSE
  "libmvc_session.a"
)
