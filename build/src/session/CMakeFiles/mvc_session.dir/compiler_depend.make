# Empty compiler generated dependencies file for mvc_session.
# This may be replaced when dependencies are built.
