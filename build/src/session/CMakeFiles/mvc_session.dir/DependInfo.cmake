
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/session/activity.cpp" "src/session/CMakeFiles/mvc_session.dir/activity.cpp.o" "gcc" "src/session/CMakeFiles/mvc_session.dir/activity.cpp.o.d"
  "/root/repo/src/session/behaviour.cpp" "src/session/CMakeFiles/mvc_session.dir/behaviour.cpp.o" "gcc" "src/session/CMakeFiles/mvc_session.dir/behaviour.cpp.o.d"
  "/root/repo/src/session/content.cpp" "src/session/CMakeFiles/mvc_session.dir/content.cpp.o" "gcc" "src/session/CMakeFiles/mvc_session.dir/content.cpp.o.d"
  "/root/repo/src/session/session.cpp" "src/session/CMakeFiles/mvc_session.dir/session.cpp.o" "gcc" "src/session/CMakeFiles/mvc_session.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sensing/CMakeFiles/mvc_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/comfort/CMakeFiles/mvc_comfort.dir/DependInfo.cmake"
  "/root/repo/build/src/avatar/CMakeFiles/mvc_avatar.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mvc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
