file(REMOVE_RECURSE
  "CMakeFiles/mvc_session.dir/activity.cpp.o"
  "CMakeFiles/mvc_session.dir/activity.cpp.o.d"
  "CMakeFiles/mvc_session.dir/behaviour.cpp.o"
  "CMakeFiles/mvc_session.dir/behaviour.cpp.o.d"
  "CMakeFiles/mvc_session.dir/content.cpp.o"
  "CMakeFiles/mvc_session.dir/content.cpp.o.d"
  "CMakeFiles/mvc_session.dir/session.cpp.o"
  "CMakeFiles/mvc_session.dir/session.cpp.o.d"
  "libmvc_session.a"
  "libmvc_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
