# Empty compiler generated dependencies file for mvc_core.
# This may be replaced when dependencies are built.
