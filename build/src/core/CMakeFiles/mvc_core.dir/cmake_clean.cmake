file(REMOVE_RECURSE
  "CMakeFiles/mvc_core.dir/classroom.cpp.o"
  "CMakeFiles/mvc_core.dir/classroom.cpp.o.d"
  "CMakeFiles/mvc_core.dir/media_bridge.cpp.o"
  "CMakeFiles/mvc_core.dir/media_bridge.cpp.o.d"
  "CMakeFiles/mvc_core.dir/scenario.cpp.o"
  "CMakeFiles/mvc_core.dir/scenario.cpp.o.d"
  "libmvc_core.a"
  "libmvc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
