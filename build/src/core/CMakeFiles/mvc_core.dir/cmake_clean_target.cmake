file(REMOVE_RECURSE
  "libmvc_core.a"
)
