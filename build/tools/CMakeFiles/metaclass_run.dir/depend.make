# Empty dependencies file for metaclass_run.
# This may be replaced when dependencies are built.
