file(REMOVE_RECURSE
  "CMakeFiles/metaclass_run.dir/metaclass_run.cpp.o"
  "CMakeFiles/metaclass_run.dir/metaclass_run.cpp.o.d"
  "metaclass_run"
  "metaclass_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaclass_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
