# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/math_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/fec_test[1]_include.cmake")
include("/root/repo/build/tests/sensing_test[1]_include.cmake")
include("/root/repo/build/tests/avatar_test[1]_include.cmake")
include("/root/repo/build/tests/ik_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/render_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/comfort_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/core_integration_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
