# Empty compiler generated dependencies file for comfort_test.
# This may be replaced when dependencies are built.
