file(REMOVE_RECURSE
  "CMakeFiles/comfort_test.dir/comfort_test.cpp.o"
  "CMakeFiles/comfort_test.dir/comfort_test.cpp.o.d"
  "comfort_test"
  "comfort_test.pdb"
  "comfort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comfort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
