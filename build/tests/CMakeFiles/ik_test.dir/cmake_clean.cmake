file(REMOVE_RECURSE
  "CMakeFiles/ik_test.dir/ik_test.cpp.o"
  "CMakeFiles/ik_test.dir/ik_test.cpp.o.d"
  "ik_test"
  "ik_test.pdb"
  "ik_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ik_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
