# Empty dependencies file for ik_test.
# This may be replaced when dependencies are built.
