file(REMOVE_RECURSE
  "CMakeFiles/sensing_test.dir/sensing_test.cpp.o"
  "CMakeFiles/sensing_test.dir/sensing_test.cpp.o.d"
  "sensing_test"
  "sensing_test.pdb"
  "sensing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
