# Empty compiler generated dependencies file for sensing_test.
# This may be replaced when dependencies are built.
