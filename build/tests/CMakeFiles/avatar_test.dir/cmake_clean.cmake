file(REMOVE_RECURSE
  "CMakeFiles/avatar_test.dir/avatar_test.cpp.o"
  "CMakeFiles/avatar_test.dir/avatar_test.cpp.o.d"
  "avatar_test"
  "avatar_test.pdb"
  "avatar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avatar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
