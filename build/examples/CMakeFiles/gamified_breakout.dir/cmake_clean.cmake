file(REMOVE_RECURSE
  "CMakeFiles/gamified_breakout.dir/gamified_breakout.cpp.o"
  "CMakeFiles/gamified_breakout.dir/gamified_breakout.cpp.o.d"
  "gamified_breakout"
  "gamified_breakout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamified_breakout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
