# Empty dependencies file for gamified_breakout.
# This may be replaced when dependencies are built.
