# Empty compiler generated dependencies file for blended_lecture.
# This may be replaced when dependencies are built.
