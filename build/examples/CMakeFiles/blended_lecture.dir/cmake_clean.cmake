file(REMOVE_RECURSE
  "CMakeFiles/blended_lecture.dir/blended_lecture.cpp.o"
  "CMakeFiles/blended_lecture.dir/blended_lecture.cpp.o.d"
  "blended_lecture"
  "blended_lecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blended_lecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
