file(REMOVE_RECURSE
  "CMakeFiles/comfort_aware_lab.dir/comfort_aware_lab.cpp.o"
  "CMakeFiles/comfort_aware_lab.dir/comfort_aware_lab.cpp.o.d"
  "comfort_aware_lab"
  "comfort_aware_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comfort_aware_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
