# Empty dependencies file for comfort_aware_lab.
# This may be replaced when dependencies are built.
