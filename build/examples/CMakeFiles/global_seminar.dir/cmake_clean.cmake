file(REMOVE_RECURSE
  "CMakeFiles/global_seminar.dir/global_seminar.cpp.o"
  "CMakeFiles/global_seminar.dir/global_seminar.cpp.o.d"
  "global_seminar"
  "global_seminar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_seminar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
