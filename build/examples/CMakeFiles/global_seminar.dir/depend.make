# Empty dependencies file for global_seminar.
# This may be replaced when dependencies are built.
