# Empty compiler generated dependencies file for bench_e5_dead_reckoning.
# This may be replaced when dependencies are built.
