file(REMOVE_RECURSE
  "../bench/bench_e5_dead_reckoning"
  "../bench/bench_e5_dead_reckoning.pdb"
  "CMakeFiles/bench_e5_dead_reckoning.dir/bench_e5_dead_reckoning.cpp.o"
  "CMakeFiles/bench_e5_dead_reckoning.dir/bench_e5_dead_reckoning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_dead_reckoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
