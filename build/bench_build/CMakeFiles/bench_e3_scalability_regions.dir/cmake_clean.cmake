file(REMOVE_RECURSE
  "../bench/bench_e3_scalability_regions"
  "../bench/bench_e3_scalability_regions.pdb"
  "CMakeFiles/bench_e3_scalability_regions.dir/bench_e3_scalability_regions.cpp.o"
  "CMakeFiles/bench_e3_scalability_regions.dir/bench_e3_scalability_regions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_scalability_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
