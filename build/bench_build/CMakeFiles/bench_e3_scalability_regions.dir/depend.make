# Empty dependencies file for bench_e3_scalability_regions.
# This may be replaced when dependencies are built.
