file(REMOVE_RECURSE
  "../bench/bench_e8_cybersickness"
  "../bench/bench_e8_cybersickness.pdb"
  "CMakeFiles/bench_e8_cybersickness.dir/bench_e8_cybersickness.cpp.o"
  "CMakeFiles/bench_e8_cybersickness.dir/bench_e8_cybersickness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_cybersickness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
