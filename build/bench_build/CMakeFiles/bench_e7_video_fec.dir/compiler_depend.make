# Empty compiler generated dependencies file for bench_e7_video_fec.
# This may be replaced when dependencies are built.
