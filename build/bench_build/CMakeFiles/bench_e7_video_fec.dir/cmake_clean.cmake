file(REMOVE_RECURSE
  "../bench/bench_e7_video_fec"
  "../bench/bench_e7_video_fec.pdb"
  "CMakeFiles/bench_e7_video_fec.dir/bench_e7_video_fec.cpp.o"
  "CMakeFiles/bench_e7_video_fec.dir/bench_e7_video_fec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_video_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
