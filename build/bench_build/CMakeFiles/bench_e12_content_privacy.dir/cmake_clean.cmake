file(REMOVE_RECURSE
  "../bench/bench_e12_content_privacy"
  "../bench/bench_e12_content_privacy.pdb"
  "CMakeFiles/bench_e12_content_privacy.dir/bench_e12_content_privacy.cpp.o"
  "CMakeFiles/bench_e12_content_privacy.dir/bench_e12_content_privacy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_content_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
