# Empty compiler generated dependencies file for bench_e12_content_privacy.
# This may be replaced when dependencies are built.
