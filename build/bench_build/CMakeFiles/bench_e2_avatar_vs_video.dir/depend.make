# Empty dependencies file for bench_e2_avatar_vs_video.
# This may be replaced when dependencies are built.
