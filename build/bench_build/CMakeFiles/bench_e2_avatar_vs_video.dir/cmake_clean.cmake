file(REMOVE_RECURSE
  "../bench/bench_e2_avatar_vs_video"
  "../bench/bench_e2_avatar_vs_video.pdb"
  "CMakeFiles/bench_e2_avatar_vs_video.dir/bench_e2_avatar_vs_video.cpp.o"
  "CMakeFiles/bench_e2_avatar_vs_video.dir/bench_e2_avatar_vs_video.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_avatar_vs_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
