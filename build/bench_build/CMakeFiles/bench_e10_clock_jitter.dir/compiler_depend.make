# Empty compiler generated dependencies file for bench_e10_clock_jitter.
# This may be replaced when dependencies are built.
