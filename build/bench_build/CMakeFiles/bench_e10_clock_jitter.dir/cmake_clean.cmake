file(REMOVE_RECURSE
  "../bench/bench_e10_clock_jitter"
  "../bench/bench_e10_clock_jitter.pdb"
  "CMakeFiles/bench_e10_clock_jitter.dir/bench_e10_clock_jitter.cpp.o"
  "CMakeFiles/bench_e10_clock_jitter.dir/bench_e10_clock_jitter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_clock_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
