file(REMOVE_RECURSE
  "../bench/bench_e1_latency_breakdown"
  "../bench/bench_e1_latency_breakdown.pdb"
  "CMakeFiles/bench_e1_latency_breakdown.dir/bench_e1_latency_breakdown.cpp.o"
  "CMakeFiles/bench_e1_latency_breakdown.dir/bench_e1_latency_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
