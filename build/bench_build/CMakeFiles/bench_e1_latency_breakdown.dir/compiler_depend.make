# Empty compiler generated dependencies file for bench_e1_latency_breakdown.
# This may be replaced when dependencies are built.
