
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e1_latency_breakdown.cpp" "bench_build/CMakeFiles/bench_e1_latency_breakdown.dir/bench_e1_latency_breakdown.cpp.o" "gcc" "bench_build/CMakeFiles/bench_e1_latency_breakdown.dir/bench_e1_latency_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mvc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mvc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/session/CMakeFiles/mvc_session.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/mvc_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/mvc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/mvc_render.dir/DependInfo.cmake"
  "/root/repo/build/src/comfort/CMakeFiles/mvc_comfort.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/mvc_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/mvc_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/mvc_media.dir/DependInfo.cmake"
  "/root/repo/build/src/avatar/CMakeFiles/mvc_avatar.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mvc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
