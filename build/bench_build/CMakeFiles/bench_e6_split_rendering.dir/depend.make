# Empty dependencies file for bench_e6_split_rendering.
# This may be replaced when dependencies are built.
