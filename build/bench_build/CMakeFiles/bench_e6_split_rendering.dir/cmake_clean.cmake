file(REMOVE_RECURSE
  "../bench/bench_e6_split_rendering"
  "../bench/bench_e6_split_rendering.pdb"
  "CMakeFiles/bench_e6_split_rendering.dir/bench_e6_split_rendering.cpp.o"
  "CMakeFiles/bench_e6_split_rendering.dir/bench_e6_split_rendering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_split_rendering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
