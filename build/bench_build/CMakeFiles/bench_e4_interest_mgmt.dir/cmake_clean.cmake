file(REMOVE_RECURSE
  "../bench/bench_e4_interest_mgmt"
  "../bench/bench_e4_interest_mgmt.pdb"
  "CMakeFiles/bench_e4_interest_mgmt.dir/bench_e4_interest_mgmt.cpp.o"
  "CMakeFiles/bench_e4_interest_mgmt.dir/bench_e4_interest_mgmt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_interest_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
