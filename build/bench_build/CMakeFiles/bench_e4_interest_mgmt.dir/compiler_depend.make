# Empty compiler generated dependencies file for bench_e4_interest_mgmt.
# This may be replaced when dependencies are built.
