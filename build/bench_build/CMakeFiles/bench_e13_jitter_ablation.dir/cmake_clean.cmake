file(REMOVE_RECURSE
  "../bench/bench_e13_jitter_ablation"
  "../bench/bench_e13_jitter_ablation.pdb"
  "CMakeFiles/bench_e13_jitter_ablation.dir/bench_e13_jitter_ablation.cpp.o"
  "CMakeFiles/bench_e13_jitter_ablation.dir/bench_e13_jitter_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_jitter_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
