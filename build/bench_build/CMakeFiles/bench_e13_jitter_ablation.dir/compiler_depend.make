# Empty compiler generated dependencies file for bench_e13_jitter_ablation.
# This may be replaced when dependencies are built.
