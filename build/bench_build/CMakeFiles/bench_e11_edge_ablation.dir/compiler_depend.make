# Empty compiler generated dependencies file for bench_e11_edge_ablation.
# This may be replaced when dependencies are built.
