file(REMOVE_RECURSE
  "../bench/bench_e11_edge_ablation"
  "../bench/bench_e11_edge_ablation.pdb"
  "CMakeFiles/bench_e11_edge_ablation.dir/bench_e11_edge_ablation.cpp.o"
  "CMakeFiles/bench_e11_edge_ablation.dir/bench_e11_edge_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_edge_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
