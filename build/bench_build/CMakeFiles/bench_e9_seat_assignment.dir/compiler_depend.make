# Empty compiler generated dependencies file for bench_e9_seat_assignment.
# This may be replaced when dependencies are built.
