file(REMOVE_RECURSE
  "../bench/bench_e9_seat_assignment"
  "../bench/bench_e9_seat_assignment.pdb"
  "CMakeFiles/bench_e9_seat_assignment.dir/bench_e9_seat_assignment.cpp.o"
  "CMakeFiles/bench_e9_seat_assignment.dir/bench_e9_seat_assignment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_seat_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
