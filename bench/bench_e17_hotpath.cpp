// E17 — allocation-free hot path: interned metric handles and pooled
// simulator events versus the string-keyed / std::function baseline.
//
// The binary replaces global operator new/delete with a counting hook, so
// every figure below is a measured allocation count, not an estimate:
//  - section A: labeled metric recording through the string API (canonical
//    key built per call) vs a pre-resolved MetricId (one indexed add);
//  - section B: the Simulator event loop (SBO callbacks + pooled overflow
//    blocks + bitmap liveness) vs an in-bench reference loop using the old
//    design (std::function events, priority_queue with copy-out top,
//    unordered_set liveness) on the same self-rescheduling workload;
//  - section C: the full Channel -> Network -> Link -> deliver packet path,
//    allocations per send in steady state;
//  - section D: an E16-style sharded sweep (origin + 6 regional relays +
//    VR clients) timed end to end, so the sweep wall time is tracked in the
//    same artifact;
//  - section E: flat interest-grid queries through the _into overloads on a
//    committed grid — the E22 per-tick census path — which must stay inside
//    the same steady-state allocation budget.
//
// Exit code gates the perf CI stage: steady-state allocations/event must
// stay within a small budget, and the pooled loop must allocate at least 5x
// less than the reference loop.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/harness.hpp"
#include "cloud/relay.hpp"
#include "cloud/vr_client.hpp"
#include "core/sharded_world.hpp"
#include "net/channel.hpp"
#include "net/network.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "sync/interest.hpp"

// ---------------------------------------------------------------------------
// Counting allocator hook. Replaces the unaligned new/delete family for the
// whole binary; the aligned family is left untouched so every allocation is
// freed by the same family that produced it. Relaxed atomics: sections A-C
// are single-threaded, and section D only reads the counter around the run.
namespace {
std::atomic<std::uint64_t> g_allocations{0};

[[nodiscard]] std::uint64_t allocations() {
    return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) noexcept {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size == 0 ? 1 : size);
}
}  // namespace

void* operator new(std::size_t size) {
    if (void* p = counted_alloc(size)) return p;
    throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

using namespace mvc;

namespace {

constexpr std::uint64_t kSeed = 29;
/// CI gate: steady-state allocations per event/send on the reworked path.
constexpr double kAllocBudget = 0.01;

struct Measured {
    double ops_per_sec{0.0};
    double allocs_per_op{0.0};
};

/// Run `op` for `warmup` iterations (pools fill, vectors grow, strings
/// intern), then measure `ops` iterations.
template <class Fn>
Measured measure(std::size_t warmup, std::size_t ops, Fn&& op) {
    for (std::size_t i = 0; i < warmup; ++i) op(i);
    const std::uint64_t before = allocations();
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) op(warmup + i);
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    Measured m;
    m.ops_per_sec = wall.count() > 0.0 ? static_cast<double>(ops) / wall.count() : 0.0;
    m.allocs_per_op = static_cast<double>(allocations() - before) / static_cast<double>(ops);
    return m;
}

void print_row(const char* label, const Measured& m) {
    std::printf("%-34s %14.0f ops/s %12.3f allocs/op\n", label, m.ops_per_sec,
                m.allocs_per_op);
}

// ------------------------------------------------------------- section B ref
// Reference event loop with the pre-rework design: type-erased std::function
// callbacks, a priority_queue whose const top() forces a copy-out, and an
// unordered_set tracking live event ids (one node allocation per event).
class LegacyLoop {
public:
    using Fn = std::function<void()>;

    std::uint64_t schedule_at(sim::Time at, Fn fn) {
        const std::uint64_t id = next_id_++;
        queue_.push(Ev{at, next_seq_++, id, std::move(fn)});
        live_.insert(id);
        return id;
    }

    [[nodiscard]] sim::Time now() const { return now_; }

    std::size_t run_until(sim::Time until) {
        std::size_t executed = 0;
        while (!queue_.empty() && !(until < queue_.top().at)) {
            Ev ev = queue_.top();  // const top: copies the std::function
            queue_.pop();
            if (live_.erase(ev.id) == 0) continue;
            now_ = ev.at;
            ev.fn();
            ++executed;
        }
        now_ = until;
        return executed;
    }

private:
    struct Ev {
        sim::Time at;
        std::uint64_t seq;
        std::uint64_t id;
        Fn fn;
    };
    struct Later {
        bool operator()(const Ev& a, const Ev& b) const {
            if (a.at.nanos() != b.at.nanos()) return b.at < a.at;
            return a.seq > b.seq;
        }
    };

    sim::Time now_{};
    std::uint64_t next_seq_{1};
    std::uint64_t next_id_{1};
    std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
    std::unordered_set<std::uint64_t> live_;
};

/// Per-event state mirroring a server tick: big enough (80 B) that the
/// callback overflows EventFn's inline buffer into the pool, and would
/// overflow std::function's SBO in the reference loop.
struct TickState {
    std::array<std::uint64_t, 10> acc{};
};

/// Self-rescheduling chains of `sessions` parallel tickers on `loop`, until
/// `target` events ran. Drives both loops through the same code shape.
template <class Loop>
struct ChainDriver {
    Loop& loop;
    std::uint64_t executed{0};
    std::uint64_t target;

    void arm_small(sim::Time at) {
        loop.schedule_at(at, [this] {
            ++executed;
            if (executed < target) arm_small(loop.now() + sim::Time::us(100));
        });
    }
    void arm_large(sim::Time at, TickState state) {
        loop.schedule_at(at, [this, state] {
            ++executed;
            if (executed < target)
                arm_large(loop.now() + sim::Time::us(100), state);
        });
    }
};

template <class Loop>
Measured run_event_loop(std::size_t sessions, std::uint64_t warmup_events,
                        std::uint64_t events, bool large_capture) {
    Loop loop{};
    ChainDriver<Loop> driver{loop, 0, warmup_events + events};
    for (std::size_t s = 0; s < sessions; ++s) {
        const sim::Time at = sim::Time::us(100 + s);
        if (large_capture) {
            driver.arm_large(at, TickState{});
        } else {
            driver.arm_small(at);
        }
    }
    // Advance in small slices so the warmup/measure boundary lands within a
    // few thousand events of its target (the chains stop re-arming once
    // `target` is reached, so a coarse horizon would burn the whole workload
    // inside one run_until call).
    const sim::Time slice = sim::Time::ms(10);
    sim::Time horizon = slice;
    // Warmup: pools fill and the queue vector reaches steady size.
    while (driver.executed < warmup_events) {
        loop.run_until(horizon);
        horizon = horizon + slice;
    }
    const std::uint64_t before_allocs = allocations();
    const std::uint64_t before_events = driver.executed;
    const auto start = std::chrono::steady_clock::now();
    while (driver.executed < warmup_events + events) {
        loop.run_until(horizon);
        horizon = horizon + slice;
    }
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    const std::uint64_t ran = driver.executed - before_events;
    Measured m;
    m.ops_per_sec = wall.count() > 0.0 ? static_cast<double>(ran) / wall.count() : 0.0;
    m.allocs_per_op =
        static_cast<double>(allocations() - before_allocs) / static_cast<double>(ran);
    return m;
}

// Simulator needs a seed; give both loop types a uniform factory shape.
struct PooledLoop : sim::Simulator {
    PooledLoop() : sim::Simulator(kSeed) {}
};

// ------------------------------------------------------------- section D
constexpr net::Region kRegions[] = {net::Region::Seoul,  net::Region::Tokyo,
                                    net::Region::Boston, net::Region::London,
                                    net::Region::Sydney, net::Region::Singapore};

struct SweepResult {
    std::size_t events{0};
    double wall_seconds{0.0};
    double allocs_per_event{0.0};
};

/// E16's topology at one size: origin cloud shard + one relay shard per
/// region, lightweight VR clients spread round-robin. Measures the whole
/// run_until (model + engine), not a synthetic loop.
SweepResult run_sharded_sweep(std::size_t clients, double sim_seconds) {
    const std::size_t shard_count = 1 + std::size(kRegions);
    core::ShardedWorld world{shard_count, kSeed};
    net::WanTopology wan;

    cloud::CloudServerConfig cc;
    cc.room = ClassroomId{1};
    cc.batch_interval = sim::Time::ms(20);
    const core::GlobalNode cloud_node = world.add_node(0, "cloud", net::Region::HongKong);
    cloud::CloudServer origin{world.network(0), cloud_node.node, cc};

    std::vector<std::unique_ptr<cloud::RelayServer>> relays;
    std::vector<core::GlobalNode> relay_nodes;
    for (std::size_t r = 0; r < std::size(kRegions); ++r) {
        const std::size_t shard = r + 1;
        cloud::RelayConfig rc;
        rc.name = "relay-" + std::string{net::region_name(kRegions[r])};
        rc.batch_interval = sim::Time::ms(20);
        const core::GlobalNode node = world.add_node(shard, rc.name, kRegions[r]);
        auto relay = std::make_unique<cloud::RelayServer>(world.network(shard),
                                                          node.node, std::move(rc));
        world.connect_cross_wan(node, cloud_node, wan);
        relay->set_origin(world.proxy_in(shard, cloud_node));
        origin.add_relay(world.proxy_in(0, node));
        relays.push_back(std::move(relay));
        relay_nodes.push_back(node);
    }

    cloud::VrLayout layout;
    std::vector<std::unique_ptr<cloud::VrClient>> pool;
    pool.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
        const std::size_t r = i % std::size(kRegions);
        const std::size_t shard = r + 1;
        net::Network& net = world.network(shard);
        const ParticipantId who{static_cast<std::uint32_t>(i + 1)};
        const net::NodeId node = net.add_node("c" + std::to_string(i), kRegions[r]);
        net.connect_wan(node, relay_nodes[r].node, wan);

        cloud::VrClientConfig vc;
        vc.name = "c" + std::to_string(i);
        vc.room = ClassroomId{1};
        vc.lightweight = true;
        vc.latency_metric = "e2e_ms";
        auto client = std::make_unique<cloud::VrClient>(net, node, who, vc);

        const math::Pose seat = layout.seat_pose(i);
        for (auto& relay : relays) relay->upsert_entity(who, seat.position);
        origin.place_entity(who);
        relays[r]->attach_client(node, who, seat.position);
        client->join(relay_nodes[r].node, seat);
        pool.push_back(std::move(client));
    }

    const std::uint64_t before_allocs = allocations();
    const auto start = std::chrono::steady_clock::now();
    const std::size_t events = world.run_until(sim::Time::seconds(sim_seconds), 1);
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;

    SweepResult out;
    out.events = events;
    out.wall_seconds = wall.count();
    out.allocs_per_event = events > 0
                               ? static_cast<double>(allocations() - before_allocs) /
                                     static_cast<double>(events)
                               : 0.0;
    return out;
}

}  // namespace

int main() {
    bench::Harness harness{"e17"};
    bench::Session& session = harness.session();
    session.set_seed(kSeed);

    const bool quick = std::getenv("E17_QUICK") != nullptr;
    const std::size_t ops = quick ? 200'000 : 2'000'000;
    const std::uint64_t events = quick ? 200'000 : 1'000'000;
    const std::size_t sends = quick ? 50'000 : 400'000;

    // -------------------------------------------------- A: metric recording
    std::printf("\nA. labeled metric recording (count + latency sample per op)\n");
    sim::MetricsRecorder rec;
    const Measured via_strings = measure(1'000, ops, [&rec](std::size_t) {
        rec.count("net.prio_bytes", {{"flow", "avatar"}, {"priority", "rt"}}, 412);
        rec.sample("net.latency_ms", {{"flow", "avatar"}}, 17.0);
    });
    const sim::MetricId prio =
        rec.counter_id("net.prio_bytes", {{"flow", "avatar"}, {"priority", "rt"}});
    const sim::MetricId lat = rec.series_id("net.latency_ms", {{"flow", "avatar"}});
    const Measured via_handles = measure(1'000, ops, [&rec, prio, lat](std::size_t) {
        rec.count(prio, 412);
        rec.sample(lat, 17.0);
    });
    print_row("string API (key built per call)", via_strings);
    print_row("interned MetricId handles", via_handles);
    session.record("A string_api / ops_per_sec", via_strings.ops_per_sec);
    session.record("A string_api / allocs_per_op", via_strings.allocs_per_op);
    session.record("A handles / ops_per_sec", via_handles.ops_per_sec);
    session.record("A handles / allocs_per_op", via_handles.allocs_per_op);

    // ------------------------------------------------------- B: event loop
    std::printf("\nB. event loop, %zu self-rescheduling sessions\n",
                static_cast<std::size_t>(64));
    const std::uint64_t warmup_events = events / 10;
    const Measured legacy_small =
        run_event_loop<LegacyLoop>(64, warmup_events, events, false);
    const Measured legacy_large =
        run_event_loop<LegacyLoop>(64, warmup_events, events, true);
    const Measured pooled_small =
        run_event_loop<PooledLoop>(64, warmup_events, events, false);
    const Measured pooled_large =
        run_event_loop<PooledLoop>(64, warmup_events, events, true);
    print_row("reference loop, 8 B captures", legacy_small);
    print_row("reference loop, 80 B captures", legacy_large);
    print_row("pooled loop, 8 B captures", pooled_small);
    print_row("pooled loop, 80 B captures", pooled_large);
    session.record("B legacy_small / events_per_sec", legacy_small.ops_per_sec);
    session.record("B legacy_small / allocs_per_event", legacy_small.allocs_per_op);
    session.record("B legacy_large / events_per_sec", legacy_large.ops_per_sec);
    session.record("B legacy_large / allocs_per_event", legacy_large.allocs_per_op);
    session.record("B pooled_small / events_per_sec", pooled_small.ops_per_sec);
    session.record("B pooled_small / allocs_per_event", pooled_small.allocs_per_op);
    session.record("B pooled_large / events_per_sec", pooled_large.ops_per_sec);
    session.record("B pooled_large / allocs_per_event", pooled_large.allocs_per_op);

    // ---------------------------------------------------- C: channel sends
    std::printf("\nC. Channel -> Network -> Link -> deliver, empty payloads\n");
    sim::Simulator csim{kSeed};
    net::Network cnet{csim};
    const net::NodeId a = cnet.add_node("a", net::Region::HongKong);
    const net::NodeId b = cnet.add_node("b", net::Region::HongKong);
    net::LinkParams lp;
    lp.latency = sim::Time::us(200);
    lp.queue_bytes = 64 * 1024 * 1024;
    cnet.connect(a, b, lp);
    std::size_t received = 0;
    cnet.set_handler(b, [&received](net::Packet&&) { ++received; });
    net::Channel tx = cnet.open_channel({.src = a, .flow = "avatar"});
    const Measured send_path = measure(2'000, sends, [&](std::size_t) {
        tx.send_to(b, 120, net::Payload{});
        // Drain periodically so the in-flight window stays bounded.
        if (csim.pending_events() > 256) csim.run_until(csim.now() + sim::Time::ms(1));
    });
    csim.run_until(csim.now() + sim::Time::seconds(1));
    print_row("send+deliver (steady state)", send_path);
    std::printf("%-34s %14zu delivered\n", "", received);
    session.record("C send_path / sends_per_sec", send_path.ops_per_sec);
    session.record("C send_path / allocs_per_send", send_path.allocs_per_op);

    // --------------------------------------------------- D: sharded sweep
    std::printf("\nD. E16-style sharded sweep (origin + 6 relays, 1 thread)\n");
    const std::size_t sweep_clients = quick ? 36 : 288;
    const double sweep_seconds = quick ? 0.5 : 2.0;
    const SweepResult sweep = run_sharded_sweep(sweep_clients, sweep_seconds);
    std::printf("%zu clients, %.1f sim s: %zu events in %.3f s (%.0f events/s, "
                "%.3f allocs/event end-to-end)\n",
                sweep_clients, sweep_seconds, sweep.events, sweep.wall_seconds,
                sweep.wall_seconds > 0.0
                    ? static_cast<double>(sweep.events) / sweep.wall_seconds
                    : 0.0,
                sweep.allocs_per_event);
    session.count("D sweep / clients", sweep_clients);
    session.count("D sweep / events", sweep.events);
    session.record("D sweep / wall_seconds", sweep.wall_seconds);
    session.record("D sweep / allocs_per_event", sweep.allocs_per_event);

    // ------------------------------------------- E: interest-grid queries
    // The flat grid's _into overloads write into caller buffers; after the
    // warmup grows scratch to steady size, radius and nearest queries on a
    // committed grid must allocate nothing (E22 hot path budget).
    std::printf("\nE. interest-grid queries into caller buffers (4096 entities)\n");
    sync::InterestGrid grid{4.0};
    {
        std::uint64_t state = kSeed;
        const auto next = [&state] {
            state = state * 6364136223846793005ULL + 1442695040888963407ULL;
            return state >> 33;
        };
        for (std::uint32_t i = 1; i <= 4096; ++i) {
            grid.update(EntityId{i}, {static_cast<double>(next() % 640) / 4.0, 0.0,
                                      static_cast<double>(next() % 640) / 4.0});
        }
        grid.rebuild();
    }
    std::vector<EntityId> query_out;
    std::uint64_t query_hits = 0;
    const std::size_t query_ops = quick ? 20'000 : 200'000;
    const Measured radius_query = measure(1'000, query_ops, [&](std::size_t i) {
        const double c = static_cast<double>(i % 160);
        grid.query_radius_into({c, 0.0, 160.0 - c}, 12.0, query_out);
        query_hits += query_out.size();
    });
    const Measured nearest_query = measure(1'000, query_ops, [&](std::size_t i) {
        const double c = static_cast<double>(i % 160);
        grid.query_nearest_into({c, 0.0, 160.0 - c}, 25.0, 16, query_out);
        query_hits += query_out.size();
    });
    print_row("query_radius_into (12 m)", radius_query);
    print_row("query_nearest_into (25 m, cap 16)", nearest_query);
    std::printf("%-34s %14llu hits\n", "",
                static_cast<unsigned long long>(query_hits));
    session.record("E radius_into / queries_per_sec", radius_query.ops_per_sec);
    session.record("E radius_into / allocs_per_query", radius_query.allocs_per_op);
    session.record("E nearest_into / queries_per_sec", nearest_query.ops_per_sec);
    session.record("E nearest_into / allocs_per_query", nearest_query.allocs_per_op);

    // --------------------------------------------------------------- gates
    const double floor = 1e-9;
    const double reduction_small =
        legacy_small.allocs_per_op / std::max(pooled_small.allocs_per_op, floor);
    const double reduction_large =
        legacy_large.allocs_per_op / std::max(pooled_large.allocs_per_op, floor);
    const bool budget_ok = pooled_small.allocs_per_op <= kAllocBudget &&
                           pooled_large.allocs_per_op <= kAllocBudget &&
                           send_path.allocs_per_op <= kAllocBudget &&
                           radius_query.allocs_per_op <= kAllocBudget &&
                           nearest_query.allocs_per_op <= kAllocBudget;
    const bool reduction_ok =
        legacy_small.allocs_per_op >= 5.0 * std::max(pooled_small.allocs_per_op, floor) &&
        legacy_large.allocs_per_op >= 5.0 * std::max(pooled_large.allocs_per_op, floor);
    const bool throughput_ok = via_handles.ops_per_sec > via_strings.ops_per_sec;

    session.record("gate / reduction_small_x", reduction_small);
    session.record("gate / reduction_large_x", reduction_large);
    session.count("gate / alloc_budget_ok", budget_ok ? 1 : 0);
    session.count("gate / reduction_5x_ok", reduction_ok ? 1 : 0);
    session.count("gate / handle_throughput_ok", throughput_ok ? 1 : 0);

    std::printf("\nexpected shape: steady-state allocs per event/send/query <= %.2f "
                "-> %s\n",
                kAllocBudget, budget_ok ? "PASS" : "FAIL");
    std::printf("expected shape: >=5x fewer allocations than reference loop "
                "(%.0fx / %.0fx) -> %s\n",
                reduction_small, reduction_large, reduction_ok ? "PASS" : "FAIL");
    std::printf("expected shape: handle API faster than string API -> %s\n",
                throughput_ok ? "PASS" : "FAIL");
    return budget_ok && reduction_ok && throughput_ok ? 0 : 1;
}
