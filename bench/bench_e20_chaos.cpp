// E20 — chaos soak: the classroom model under a scripted adversity timeline
// (net::ChaosBackend driven by a FaultPlan) with the reconnect hardening on.
//
// The whole deployment — relay + N reconnect-hardened VrClients on the chaos
// backend, the control ARQ pair, the lossy windows and the partition — is
// declared in scenarios/chaos_soak.scenario.json; this bench loads the spec,
// attaches the client0 staleness/recovery probes, and evaluates the gates.
// Timeline (sim time):
//
//   [ 0s,  5s)  clean      — baseline staleness
//   [ 5s, 10s)  lossy      — Gilbert–Elliott burst loss (~21% avg), jitter,
//                            duplication, reordering, and in-flight
//                            corruption on every client<->relay direction;
//                            the self-adaptation ladder sheds fidelity
//   [10s, 14s)  partition  — client0 fully blackholed from the relay; its
//                            reconnector detects the outage, pauses
//                            publishing, and probes with backed-off resyncs
//   [14s, 22s)  heal       — first probe through the healed path lands a
//                            snapshot; client0 resumes and staleness
//                            converges; the ladder steps back to full
//
// Gates (exit code drives tools/ci.sh --chaos):
//   - control ARQ stream delivers >= 99% exactly-once despite the lossy
//     window (it is never partitioned);
//   - client0 declares the outage, then recovers within the budget after
//     the heal (resync applied, reconnector Connected);
//   - post-heal staleness converges back to the clean baseline's ballpark;
//   - the ladder engages during the lossy window and ends at level 0;
//   - two same-seed runs produce byte-identical per-epoch avatar state-hash
//     streams (the chaos draws are part of the deterministic event order).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "cloud/relay.hpp"
#include "cloud/vr_client.hpp"
#include "net/chaos.hpp"
#include "scenario/runner.hpp"

using namespace mvc;

namespace {

constexpr double kLossyStartS = 5.0;
constexpr double kPartitionStartS = 10.0;
constexpr double kHealS = 14.0;
constexpr double kRecoveryBudgetS = 3.0;  // heal -> client0 back in session

struct SoakResult {
    std::vector<std::uint64_t> hashes;  // per-epoch avatar state hashes
    std::uint64_t ctrl_sent{0};
    std::uint64_t ctrl_delivered{0};
    std::uint64_t outages{0};
    std::uint64_t reconnects{0};
    std::uint64_t resyncs{0};
    double detect_s{-1.0};    // partition declared down (abs sim s)
    double recovered_s{-1.0};  // post-heal: connected again (abs sim s)
    int max_degradation{0};
    int final_degradation{0};
    math::SampleSeries clean_staleness_ms;
    math::SampleSeries heal_staleness_ms;
    std::uint64_t chaos_dropped{0};
    std::uint64_t chaos_duplicated{0};
    std::uint64_t chaos_corrupted{0};
    std::uint64_t chaos_blackholed{0};
    std::uint64_t relay_served{0};
};

SoakResult run_soak(const scenario::ScenarioSpec& spec) {
    SoakResult r;
    const std::unique_ptr<scenario::ScenarioWorld> world = scenario::build(spec);

    // ------------------------------------------------------------- probes
    cloud::VrClient& c0 = world->client(0);
    sim::Simulator& sim = world->simulator();
    std::uint64_t last_rx = 0;
    sim::Time last_update = sim::Time::zero();
    sim.schedule_every(sim::Time::ms(20), [&] {
        const sim::Time now = sim.now();
        const double now_s = now.to_seconds();
        if (c0.updates_received() != last_rx) {
            last_rx = c0.updates_received();
            last_update = now;
        }
        const double staleness_ms = (now - last_update).to_ms();
        if (now_s >= 1.0 && now_s < kLossyStartS) {
            r.clean_staleness_ms.add(staleness_ms);
        } else if (now_s >= kHealS + kRecoveryBudgetS) {
            r.heal_staleness_ms.add(staleness_ms);
        }
        if (now_s >= kPartitionStartS && now_s < kHealS && r.detect_s < 0.0 &&
            c0.reconnector() != nullptr && !c0.reconnector()->connected()) {
            r.detect_s = now_s;
        }
        if (now_s >= kHealS && r.recovered_s < 0.0 && c0.reconnector() != nullptr &&
            c0.reconnector()->connected() && c0.resyncs_applied() > 0) {
            r.recovered_s = now_s;
        }
        for (std::size_t i = 0; i < world->client_count(); ++i)
            r.max_degradation =
                std::max(r.max_degradation, world->client(i).degradation_level());
    });

    world->run();

    for (std::size_t i = 0; i < world->client_count(); ++i) {
        const cloud::VrClient& c = world->client(i);
        if (const recovery::Reconnector* rec = c.reconnector()) {
            r.outages += rec->outages();
            r.reconnects += rec->reconnects();
        }
        r.resyncs += c.resyncs_applied();
        r.final_degradation = std::max(r.final_degradation, c.degradation_level());
    }
    r.hashes = world->hashes();
    r.ctrl_sent = world->ctrl_sent();
    r.ctrl_delivered = world->ctrl_delivered();
    const net::ChaosBackend& chaos = *world->chaos();
    r.chaos_dropped = chaos.dropped();
    r.chaos_duplicated = chaos.duplicated();
    r.chaos_corrupted = chaos.corrupted();
    r.chaos_blackholed = chaos.blackholed();
    if (const recovery::ResyncResponder* rr = world->relay().resync_responder())
        r.relay_served = rr->served();
    world->stop();
    return r;
}

}  // namespace

int main() {
    bench::Harness harness{"e20"};
    bench::Session& session = harness.session();

    scenario::ScenarioSpec spec = scenario::load_spec_file(
        std::string{METACLASS_SCENARIO_DIR} + "/chaos_soak.scenario.json");
    session.set_seed(spec.seed);

    const bool quick = std::getenv("E20_QUICK") != nullptr;
    if (quick) {
        spec.relay.clients.at(0).count = 4;
        scenario::validate_spec(spec);
    }
    const std::size_t clients_n = spec.relay.clients.at(0).count;

    std::printf("\nchaos soak: relay + %zu reconnect-hardened clients, "
                "clean -> lossy -> partition -> heal (%.0f s sim)\n",
                clients_n, spec.duration.to_seconds());
    const SoakResult a = run_soak(spec);
    const SoakResult b = run_soak(spec);  // same seed: must be identical

    const double delivery = a.ctrl_sent == 0
                                ? 0.0
                                : static_cast<double>(a.ctrl_delivered) /
                                      static_cast<double>(a.ctrl_sent);
    const double detect_ms = (a.detect_s - kPartitionStartS) * 1e3;
    const double recovery_ms = (a.recovered_s - kHealS) * 1e3;
    const double clean_p95 = a.clean_staleness_ms.p95();
    const double heal_p95 = a.heal_staleness_ms.p95();

    std::printf("\ninjected adversity: dropped=%llu duplicated=%llu "
                "corrupted=%llu blackholed=%llu\n",
                static_cast<unsigned long long>(a.chaos_dropped),
                static_cast<unsigned long long>(a.chaos_duplicated),
                static_cast<unsigned long long>(a.chaos_corrupted),
                static_cast<unsigned long long>(a.chaos_blackholed));
    std::printf("control ARQ: %llu sent, %llu delivered (%.4f)\n",
                static_cast<unsigned long long>(a.ctrl_sent),
                static_cast<unsigned long long>(a.ctrl_delivered), delivery);
    std::printf("client0 reconnect: detect %+.0f ms into partition, recovered "
                "%+.0f ms after heal (outages=%llu reconnects=%llu resyncs=%llu "
                "relay served=%llu)\n",
                detect_ms, recovery_ms,
                static_cast<unsigned long long>(a.outages),
                static_cast<unsigned long long>(a.reconnects),
                static_cast<unsigned long long>(a.resyncs),
                static_cast<unsigned long long>(a.relay_served));
    std::printf("staleness p95: clean %.1f ms, post-heal %.1f ms\n", clean_p95,
                heal_p95);
    std::printf("self-adaptation: max level %d during lossy window, final %d\n",
                a.max_degradation, a.final_degradation);

    session.record("ctrl_delivery_ratio", delivery);
    session.record("detect_ms", detect_ms);
    session.record("recovery_ms", recovery_ms);
    session.record("clean_staleness_p95_ms", clean_p95);
    session.record("heal_staleness_p95_ms", heal_p95);
    session.record("degradation_max_level", a.max_degradation);
    session.record("degradation_final_level", a.final_degradation);
    session.count("chaos_dropped", a.chaos_dropped);
    session.count("chaos_duplicated", a.chaos_duplicated);
    session.count("chaos_corrupted", a.chaos_corrupted);
    session.count("chaos_blackholed", a.chaos_blackholed);
    session.count("resyncs_applied", a.resyncs);
    session.count("hash_epochs", a.hashes.size());

    // ------------------------------------------------------------------ gates
    const bool chaos_ok = a.chaos_dropped > 0 && a.chaos_duplicated > 0 &&
                          a.chaos_corrupted > 0 && a.chaos_blackholed > 0;
    const bool delivery_ok = delivery >= 0.99;
    const bool outage_ok = a.detect_s > 0.0 && a.outages >= 1;
    const bool recovery_ok = a.recovered_s > 0.0 &&
                             a.recovered_s - kHealS <= kRecoveryBudgetS &&
                             a.resyncs >= 1 && a.relay_served >= 1;
    const bool staleness_ok =
        heal_p95 <= std::max(clean_p95, 1.0) * 3.0 + 50.0;
    const bool degrade_ok = a.max_degradation >= 1 && a.final_degradation == 0;
    const bool deterministic =
        !a.hashes.empty() && a.hashes == b.hashes &&
        a.ctrl_delivered == b.ctrl_delivered && a.chaos_dropped == b.chaos_dropped;

    session.count("gate / chaos_injected", chaos_ok ? 1 : 0);
    session.count("gate / ctrl_delivery_ok", delivery_ok ? 1 : 0);
    session.count("gate / outage_detected", outage_ok ? 1 : 0);
    session.count("gate / recovery_ok", recovery_ok ? 1 : 0);
    session.count("gate / staleness_converged", staleness_ok ? 1 : 0);
    session.count("gate / degradation_recovered", degrade_ok ? 1 : 0);
    session.count("gate / deterministic", deterministic ? 1 : 0);

    std::printf("\nexpected shape: every chaos mode actually fired -> %s\n",
                chaos_ok ? "PASS" : "FAIL");
    std::printf("expected shape: control ARQ delivery >= 0.99 through the lossy "
                "window -> %s (%.4f)\n",
                delivery_ok ? "PASS" : "FAIL", delivery);
    std::printf("expected shape: partition detected as an outage -> %s "
                "(%+.0f ms)\n",
                outage_ok ? "PASS" : "FAIL", detect_ms);
    std::printf("expected shape: resync-led recovery within %.1f s of heal -> %s "
                "(%+.0f ms)\n",
                kRecoveryBudgetS, recovery_ok ? "PASS" : "FAIL", recovery_ms);
    std::printf("expected shape: post-heal staleness back near baseline -> %s "
                "(p95 %.1f ms vs clean %.1f ms)\n",
                staleness_ok ? "PASS" : "FAIL", heal_p95, clean_p95);
    std::printf("expected shape: ladder sheds under loss and fully recovers -> "
                "%s (max %d, final %d)\n",
                degrade_ok ? "PASS" : "FAIL", a.max_degradation,
                a.final_degradation);
    std::printf("expected shape: same seed -> byte-identical hash stream -> %s "
                "(%zu epochs)\n",
                deterministic ? "PASS" : "FAIL", a.hashes.size());

    return chaos_ok && delivery_ok && outage_ok && recovery_ok &&
                   staleness_ok && degrade_ok && deterministic
               ? 0
               : 1;
}
