// E23 — adaptive streaming & QoE control loop. The shipped congested-lecture
// scenario runs six VR clients behind per-client ChaosBackend throttles: the
// high-priority cohort's links carry 1.5 Mb/s against a 5 Mb/s top video
// rung, the low-priority cohort's 0.5 Mb/s (10x oversubscribed). The gate is
// that the per-client ABR + budget loop *trades* quality by priority class
// instead of collapsing uniformly: the high class converges onto the rung
// its link fits while keeping stalls and avatar staleness inside budget, the
// low class rides the floor rung, and switch counts stay bounded (no
// oscillation). A clean-link control run must deliver the top tier to every
// client with zero stall and zero switches — the controller must not tax a
// healthy network. Both runs are deterministic: same seed -> byte-identical
// hash stream + metrics, across 1/2/4/8 `threads` arguments.
//
// E23_QUICK cuts the sim from 30 s to 12 s for the CI smoke (the throttle
// window opens at 1 s and the ABR hold times are sub-second, so every gated
// behaviour lands well inside 12 s).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "scenario/runner.hpp"

using namespace mvc;

namespace {

bool same_run(const scenario::ScenarioReport& a, const scenario::ScenarioReport& b) {
    return !a.hashes.empty() && a.hashes == b.hashes &&
           a.metrics.dump(2) == b.metrics.dump(2);
}

double metric(const scenario::ScenarioReport& report, const std::string& name) {
    // Re-evaluate against the report's metric dump via the SLO helper shape:
    // the report keeps SLO values for declared gates; ad-hoc reads go
    // through the recorder snapshot instead. Gates below only use declared
    // SLOs plus hash/byte comparisons, so this stays simple.
    for (const scenario::SloResult& slo : report.slos)
        if (slo.gate.metric == name && slo.value) return *slo.value;
    return 0.0;
}

}  // namespace

int main() {
    bench::Harness harness{"e23"};
    bench::Session& session = harness.session();

    const bool quick = std::getenv("E23_QUICK") != nullptr;

    scenario::ScenarioSpec congested = scenario::load_spec_file(
        std::string{METACLASS_SCENARIO_DIR} + "/congested_lecture.scenario.json");
    if (quick) congested.duration = sim::Time::seconds(12.0);

    std::printf("=== %s (seed %llu, %.0f s sim) ===\n", congested.name.c_str(),
                static_cast<unsigned long long>(congested.seed),
                congested.duration.to_seconds());
    const scenario::ScenarioReport report = scenario::run_scenario(congested);
    for (const scenario::SloResult& slo : report.slos) {
        std::printf("  slo %-34s %s", slo.gate.metric.c_str(),
                    slo.passed ? "PASS" : "FAIL");
        if (slo.value)
            std::printf("  (%.3f)\n", *slo.value);
        else
            std::printf("  (metric missing)\n");
    }
    const bool slos_ok = report.passed;
    session.count("gate / congested_slos", slos_ok ? 1 : 0);
    session.record("qoe / high_rung_mean", metric(report, "qoe.rung{class=high}.mean"));
    session.record("qoe / low_rung_mean", metric(report, "qoe.rung{class=low}.mean"));
    session.record("qoe / high_score_mean",
                   metric(report, "qoe.score{class=high}.mean"));

    // Same-seed rerun and thread-argument sweep: the relay world runs one
    // simulator, so every `threads` value must reproduce the identical run.
    bool det_ok = true;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                      std::size_t{8}}) {
        const scenario::ScenarioReport again =
            scenario::run_scenario(congested, threads);
        const bool same = same_run(report, again);
        std::printf("  rerun threads=%zu -> %s\n", threads,
                    same ? "byte-identical" : "DIVERGED");
        det_ok = det_ok && same;
    }
    session.count("gate / deterministic", det_ok ? 1 : 0);

    // Clean-link control: same cohorts, no throttles, pure sim backend. The
    // controller must deliver the top tier everywhere and never switch.
    scenario::ScenarioSpec clean = congested;
    clean.name = "clean-lecture";
    clean.backend = scenario::BackendKind::Sim;
    clean.timeline.clear();
    clean.slos = {
        {"qoe.rung{class=high}.min", 3.0, std::nullopt},
        {"qoe.rung{class=low}.min", 3.0, std::nullopt},
        {"qoe.stall_ms{class=high}", std::nullopt, 0.0},
        {"qoe.stall_ms{class=low}", std::nullopt, 0.0},
        {"qoe.switches{class=high}", std::nullopt, 0.0},
        {"qoe.switches{class=low}", std::nullopt, 0.0},
    };
    std::printf("\n=== %s (clean control) ===\n", clean.name.c_str());
    const scenario::ScenarioReport clean_report = scenario::run_scenario(clean);
    for (const scenario::SloResult& slo : clean_report.slos) {
        std::printf("  slo %-34s %s", slo.gate.metric.c_str(),
                    slo.passed ? "PASS" : "FAIL");
        if (slo.value)
            std::printf("  (%.3f)\n", *slo.value);
        else
            std::printf("  (metric missing)\n");
    }
    const bool clean_ok = clean_report.passed;
    session.count("gate / clean_top_tier", clean_ok ? 1 : 0);

    std::printf("\nexpected shape: congested SLOs held (priority trade) -> %s\n",
                slos_ok ? "PASS" : "FAIL");
    std::printf("expected shape: byte-identical across reruns + threads -> %s\n",
                det_ok ? "PASS" : "FAIL");
    std::printf("expected shape: clean link delivers top tier, zero switch -> %s\n",
                clean_ok ? "PASS" : "FAIL");

    return slos_ok && det_ok && clean_ok ? 0 : 1;
}
