// E15: crash recovery + overload admission — checkpointed restart vs a cold
// (no-checkpoint) baseline, and hysteresis load shedding on the avatar
// ingress.
//
// Part A runs the same CWB<->GZ lecture twice with the same seed; the only
// difference is whether the crashed GZ edge can restore from its periodic
// checkpoints (+ one-round-trip peer resync) or must restart cold:
//
//   [ 0s, 10s)  lecture — both rooms streaming, content contributed,
//               checkpoints every 2 s (checkpointed mode)
//   [10s, 13s)  GZ edge process crash (FaultPlan node outage): its volatile
//               replicated state — remote replicas, seat assignments,
//               reservations, ingress queue — is wiped
//   [13s, 20s)  restart: checkpointed mode restores seats/membership/content
//               and re-ingests replica references immediately, then resyncs
//               live peers; the cold baseline waits for the peers' next
//               keyframes before remote avatars re-appear
//
// Part B is a two-node overload rig: established avatar streams fill the
// service capacity, late joiners at t=5s push the bounded drop-oldest
// ingress past the shed threshold, and the hysteresis admission gate sheds
// the newcomers — once, with no flapping — while admitted streams keep
// bounded staleness.
//
// All scheduling is deterministic; two runs of the same binary produce
// byte-identical BENCH_e15.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "core/classroom.hpp"
#include "fault/fault_plan.hpp"
#include "sync/wire.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

using namespace mvc;

namespace {

constexpr double kCrashStartS = 10.0;
constexpr double kCrashEndS = 13.0;
constexpr double kRunS = 20.0;

struct CrashResult {
    /// First decoded remote update at the GZ edge after restart, ms from the
    /// node-up instant (probe granularity 10 ms); <0 = never restored.
    double time_to_restore_ms{-1.0};
    /// Age of the restored checkpoint (downtime + checkpoint staleness).
    double recovery_gap_ms{-1.0};
    double baseline_staleness_p95_ms{0.0};
    double post_staleness_p95_ms{0.0};
    std::uint64_t restores{0};
    std::uint64_t cold_starts{0};
    std::size_t restored_members{0};
    std::size_t restored_content{0};
    std::size_t restored_replicas{0};
    std::size_t restored_seats{0};
    bool seat_kept{false};
    std::uint64_t checkpoints_taken{0};
    std::uint64_t checkpoint_bytes{0};
    std::size_t live_roster{0};
    std::size_t live_content{0};
};

CrashResult run_crash_case(bool checkpointed) {
    core::ClassroomConfig config;
    config.seed = 21;
    config.heartbeat.enabled = true;
    config.heartbeat.interval = sim::Time::ms(50);
    config.heartbeat.timeout = sim::Time::ms(200);
    config.recovery.enabled = true;
    config.recovery.checkpoints = checkpointed;
    config.recovery.resync = checkpointed;
    config.recovery.checkpoint_interval = sim::Time::seconds(2.0);
    // Sparse keyframes make the cold restart visibly wait for re-anchoring.
    config.rooms = {core::cwb_room_config(), core::gz_room_config()};
    for (auto& room : config.rooms) {
        room.edge.replication.keyframe_interval = sim::Time::seconds(2.0);
    }
    core::MetaverseClassroom classroom{config};
    const ParticipantId cwb_student = classroom.add_physical_student(0);
    classroom.add_physical_student(0);
    classroom.add_physical_student(1);
    classroom.add_physical_student(1);

    // Contributed content rides along in the checkpoint via the session
    // decorator; a restored edge hands back the full ledger.
    for (int i = 0; i < 3; ++i) {
        session::ContentItem item;
        item.creator = cwb_student;
        item.kind = session::ContentKind::Slide;
        item.title = "lecture-slide-" + std::to_string(i);
        item.size_bytes = 64 * 1024;
        classroom.class_session().contribute(std::move(item));
    }
    classroom.start();

    auto& sim = classroom.simulator();
    auto& edge_gz = classroom.edge_server(1);

    fault::FaultPlan plan{classroom.network()};
    plan.node_outage(edge_gz.node(), sim::Time::seconds(kCrashStartS),
                     sim::Time::seconds(kCrashEndS - kCrashStartS));
    plan.arm();

    CrashResult r;
    const auto seat_before = [&] {
        return edge_gz.seats().seat_of(cwb_student);
    };
    std::optional<std::size_t> pre_crash_seat;
    math::SampleSeries baseline_ms;
    math::SampleSeries post_ms;
    std::uint64_t last_count = 0;
    sim::Time last_update = sim::Time::zero();
    sim.schedule_every(sim::Time::ms(10), [&] {
        const sim::Time now = sim.now();
        const double now_s = now.to_seconds();
        const std::uint64_t count = edge_gz.remote_update_count(cwb_student);
        if (count != last_count && count > 0) {
            last_count = count;
            last_update = now;
            if (r.time_to_restore_ms < 0.0 && now_s >= kCrashEndS) {
                r.time_to_restore_ms = (now_s - kCrashEndS) * 1e3;
            }
        }
        const double staleness_ms = (now - last_update).to_ms();
        if (now_s >= 5.0 && now_s < kCrashStartS) {
            pre_crash_seat = seat_before();
            baseline_ms.add(staleness_ms);
        } else if (now_s >= kCrashEndS + 1.0) {
            post_ms.add(staleness_ms);
        }
    });

    classroom.run_for(sim::Time::seconds(kRunS));

    r.baseline_staleness_p95_ms = baseline_ms.p95();
    r.post_staleness_p95_ms = post_ms.p95();
    r.restores = edge_gz.restores();
    r.cold_starts = edge_gz.cold_starts();
    if (edge_gz.last_restored().has_value()) {
        const recovery::ClassroomCheckpoint& cp = *edge_gz.last_restored();
        r.recovery_gap_ms = edge_gz.last_recovery_gap_ms();
        r.restored_members = cp.members.size();
        r.restored_content = cp.content.size();
        r.restored_replicas = cp.replicas.size();
        r.restored_seats = cp.seats.size();
    }
    r.seat_kept = pre_crash_seat.has_value() && seat_before() == pre_crash_seat;
    r.checkpoints_taken = classroom.checkpoint_store().total_puts();
    r.checkpoint_bytes = classroom.checkpoint_store().bytes_stored("edge-gz");
    r.live_roster = classroom.class_session().roster().size();
    r.live_content = classroom.class_session().ledger().size();
    classroom.stop();
    return r;
}

struct OverloadResult {
    std::uint64_t shed{0};
    std::uint64_t transitions{0};
    std::uint64_t queue_dropped{0};
    std::size_t final_depth{0};
    std::size_t capacity{0};
    std::uint64_t admitted_updates{0};
    double admitted_staleness_p95_ms{0.0};
    bool shedding_at_end{false};
};

OverloadResult run_overload_case() {
    sim::Simulator sim{21};
    net::Network net{sim};
    net::WanTopology wan;
    const net::NodeId src = net.add_node("edge-src", net::Region::HongKong);
    const net::NodeId dst = net.add_node("edge-dst", net::Region::Guangzhou);
    net.connect_wan(src, dst, wan);

    edge::EdgeServerConfig config;
    config.room = ClassroomId{2};
    config.name = "dst";
    config.process_time = sim::Time::ms(2);  // service capacity: 500 wires/s
    config.admission.enabled = true;
    config.admission.queue_capacity = 32;
    config.admission.shed_enter_depth = 24;
    config.admission.shed_exit_depth = 4;
    config.admission.hold = sim::Time::ms(200);
    edge::EdgeServer server{net, dst, config, edge::SeatMap::grid(6, 6)};
    server.start();

    // Every wire is a keyframe (I-frame-only stream): each admitted arrival
    // is decodable, so replica update counts measure delivered throughput.
    avatar::AvatarCodec codec{avatar::CodecBounds{}};
    const auto send_update = [&](std::uint32_t id) {
        const double t = sim.now().to_seconds();
        avatar::AvatarState s;
        s.participant = ParticipantId{id};
        s.root.pose.position = {std::cos(t + id), 0.0, 2.0 + std::sin(t + id)};
        s.body.head = {s.root.pose.position + math::Vec3{0, 0.65, 0},
                       s.root.pose.orientation};
        s.captured_at = sim.now();
        sync::AvatarWire wire;
        wire.participant = s.participant;
        wire.source_room = ClassroomId{1};
        wire.keyframe = true;
        wire.bytes = codec.encode_full(s);
        wire.captured_at = s.captured_at;
        const std::size_t size = wire.bytes.size() + 32;
        net.send(src, dst, size, std::string{sync::kAvatarFlow}, std::move(wire));
    };

    // 8 established streams from t=0, then 16 late joiners trickling in from
    // t=5s (one every 100 ms), all at 60 Hz. 8 streams fit the 500/s service
    // rate; the first few late arrivals tip the queue into overload, the
    // gate trips after its hold, and the remaining newcomers are shed.
    constexpr std::uint32_t kEstablished = 8;
    constexpr std::uint32_t kLate = 16;
    const sim::Time tick = sim::Time::us(16667);
    for (std::uint32_t i = 0; i < kEstablished; ++i) {
        sim.schedule_every(tick, sim::Time::ms(1 + i), [&send_update, i] {
            send_update(100 + i);
        });
    }
    for (std::uint32_t i = 0; i < kLate; ++i) {
        sim.schedule_at(sim::Time::seconds(5.0) + sim::Time::ms(100 * i), [&, i] {
            send_update(200 + i);
            sim.schedule_every(tick, [&send_update, i] { send_update(200 + i); });
        });
    }

    // Staleness of one established stream, sampled through the overload.
    math::SampleSeries admitted_staleness_ms;
    std::uint64_t last_count = 0;
    sim::Time last_update = sim::Time::zero();
    sim.schedule_every(sim::Time::ms(10), [&] {
        const std::uint64_t count = server.remote_update_count(ParticipantId{100});
        if (count != last_count) {
            last_count = count;
            last_update = sim.now();
        }
        if (sim.now() >= sim::Time::seconds(6.0)) {
            admitted_staleness_ms.add((sim.now() - last_update).to_ms());
        }
    });

    sim.run_until(sim::Time::seconds(12.0));

    OverloadResult r;
    r.shed = server.shed_streams();
    r.transitions = server.admission_gate().transitions();
    r.queue_dropped = server.queue_dropped();
    r.final_depth = server.ingress_depth();
    r.capacity = config.admission.queue_capacity;
    r.admitted_updates = last_count;
    r.admitted_staleness_p95_ms = admitted_staleness_ms.p95();
    r.shedding_at_end = server.admission_gate().shedding();
    server.stop();
    return r;
}

}  // namespace

int main() {
    bench::Harness harness{"e15"};
    bench::Session& session = harness.session();
    session.set_seed(21);

    std::printf("\n--- part A: GZ edge crash at %.0fs, restart at %.0fs (seed 21) ---\n",
                kCrashStartS, kCrashEndS);
    const CrashResult ckpt = run_crash_case(/*checkpointed=*/true);
    const CrashResult cold = run_crash_case(/*checkpointed=*/false);

    std::printf("\n%-38s %14s %14s\n", "metric", "checkpointed", "no-checkpoint");
    std::printf("%-38s %14.1f %14.1f\n", "time-to-restore (ms)", ckpt.time_to_restore_ms,
                cold.time_to_restore_ms);
    std::printf("%-38s %14.1f %14s\n", "recovery gap (ms)", ckpt.recovery_gap_ms, "-");
    std::printf("%-38s %14.1f %14.1f\n", "baseline staleness p95 (ms)",
                ckpt.baseline_staleness_p95_ms, cold.baseline_staleness_p95_ms);
    std::printf("%-38s %14.1f %14.1f\n", "post-restart staleness p95 (ms)",
                ckpt.post_staleness_p95_ms, cold.post_staleness_p95_ms);
    std::printf("%-38s %8llu/%-5llu %8llu/%-5llu\n", "restores/cold starts",
                static_cast<unsigned long long>(ckpt.restores),
                static_cast<unsigned long long>(ckpt.cold_starts),
                static_cast<unsigned long long>(cold.restores),
                static_cast<unsigned long long>(cold.cold_starts));
    std::printf("%-38s %14zu %14s\n", "restored members", ckpt.restored_members, "-");
    std::printf("%-38s %14zu %14s\n", "restored content items", ckpt.restored_content,
                "-");
    std::printf("%-38s %14zu %14s\n", "restored avatar replicas",
                ckpt.restored_replicas, "-");
    std::printf("%-38s %14s %14s\n", "seat retained across crash",
                ckpt.seat_kept ? "yes" : "no", cold.seat_kept ? "yes" : "no");
    std::printf("%-38s %14llu %14s\n", "checkpoints taken",
                static_cast<unsigned long long>(ckpt.checkpoints_taken), "-");
    std::printf("%-38s %14llu %14s\n", "checkpoint bytes stored",
                static_cast<unsigned long long>(ckpt.checkpoint_bytes), "-");

    std::printf("\n--- part B: overload admission on the avatar ingress ---\n");
    const OverloadResult ov = run_overload_case();
    std::printf("  shed stream updates       %10llu\n",
                static_cast<unsigned long long>(ov.shed));
    std::printf("  gate transitions          %10llu  (1 = entered shed once, no flap)\n",
                static_cast<unsigned long long>(ov.transitions));
    std::printf("  drop-oldest queue drops   %10llu\n",
                static_cast<unsigned long long>(ov.queue_dropped));
    std::printf("  final queue depth         %10zu  (capacity %zu)\n", ov.final_depth,
                ov.capacity);
    std::printf("  admitted stream updates   %10llu\n",
                static_cast<unsigned long long>(ov.admitted_updates));
    std::printf("  admitted staleness p95    %10.1f ms (under overload)\n",
                ov.admitted_staleness_p95_ms);

    session.record("ckpt_time_to_restore_ms", ckpt.time_to_restore_ms);
    session.record("cold_time_to_restore_ms", cold.time_to_restore_ms);
    session.record("ckpt_recovery_gap_ms", ckpt.recovery_gap_ms);
    session.record("ckpt_post_staleness_p95_ms", ckpt.post_staleness_p95_ms);
    session.record("cold_post_staleness_p95_ms", cold.post_staleness_p95_ms);
    session.record("ckpt_restored_members", static_cast<double>(ckpt.restored_members));
    session.record("ckpt_restored_content", static_cast<double>(ckpt.restored_content));
    session.record("ckpt_restored_replicas",
                   static_cast<double>(ckpt.restored_replicas));
    session.count("ckpt_checkpoints_taken", ckpt.checkpoints_taken);
    session.count("ckpt_checkpoint_bytes", ckpt.checkpoint_bytes);
    session.count("overload_shed", ov.shed);
    session.count("overload_gate_transitions", ov.transitions);
    session.count("overload_queue_dropped", ov.queue_dropped);
    session.count("overload_admitted_updates", ov.admitted_updates);
    session.record("overload_admitted_staleness_p95_ms", ov.admitted_staleness_p95_ms);

    const bool restore_ok = ckpt.restores == 1 && ckpt.cold_starts == 0 &&
                            cold.restores == 0 && cold.cold_starts == 1;
    const bool faster_ok = ckpt.time_to_restore_ms >= 0.0 &&
                           cold.time_to_restore_ms >= 0.0 &&
                           ckpt.time_to_restore_ms < cold.time_to_restore_ms;
    const double max_gap_ms =
        (kCrashEndS - kCrashStartS) * 1e3 + 2000.0 + 1.0;  // downtime + interval
    const bool gap_ok = ckpt.recovery_gap_ms >= (kCrashEndS - kCrashStartS) * 1e3 &&
                        ckpt.recovery_gap_ms <= max_gap_ms;
    const bool state_ok = ckpt.restored_members == ckpt.live_roster &&
                          ckpt.restored_content == ckpt.live_content &&
                          ckpt.restored_replicas == 2 && ckpt.seat_kept;
    const bool converge_ok =
        ckpt.post_staleness_p95_ms <=
        std::max(ckpt.baseline_staleness_p95_ms, 1.0) * 2.0 + 5.0;
    const bool shed_ok = ov.shed > 0 && ov.admitted_updates > 0 &&
                         ov.final_depth <= ov.capacity &&
                         ov.admitted_staleness_p95_ms <= 250.0;
    const bool no_flap_ok = ov.transitions <= 2;

    std::printf("\nexpected shape: checkpointed restart restores, baseline is cold -> %s\n",
                restore_ok ? "PASS" : "FAIL");
    std::printf("expected shape: checkpointed restore strictly faster -> %s "
                "(%.1f ms vs %.1f ms)\n",
                faster_ok ? "PASS" : "FAIL", ckpt.time_to_restore_ms,
                cold.time_to_restore_ms);
    std::printf("expected shape: recovery gap = downtime + checkpoint age -> %s "
                "(%.1f ms, budget %.0f ms)\n",
                gap_ok ? "PASS" : "FAIL", ckpt.recovery_gap_ms, max_gap_ms);
    std::printf("expected shape: membership/content/replicas/seat restored -> %s "
                "(%zu members, %zu items, %zu replicas)\n",
                state_ok ? "PASS" : "FAIL", ckpt.restored_members,
                ckpt.restored_content, ckpt.restored_replicas);
    std::printf("expected shape: post-restart staleness converges -> %s "
                "(p95 %.1f ms vs baseline %.1f ms)\n",
                converge_ok ? "PASS" : "FAIL", ckpt.post_staleness_p95_ms,
                ckpt.baseline_staleness_p95_ms);
    std::printf("expected shape: overload sheds late joiners, admitted bounded -> %s\n",
                shed_ok ? "PASS" : "FAIL");
    std::printf("expected shape: admission gate holds without flapping -> %s "
                "(%llu transitions)\n",
                no_flap_ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(ov.transitions));

    return restore_ok && faster_ok && gap_ok && state_ok && converge_ok && shed_ok &&
                   no_flap_ok
               ? 0
               : 1;
}
