// E12 (ablation) — content democratization under privacy screening (§3.3):
// "class participants ... are expected to contribute learning content";
// "we have to consider the appropriateness of content overlays under the
// privacy-preserving perspective".
//
// A breakout-heavy class generates contributions at the per-activity rates;
// we compare an unfiltered ledger against the privacy-screened one: what
// fraction of content gets blocked, what the screening costs in time, and
// how credits distribute across the class (the NFT/economics incentive).

#include <chrono>
#include <cstdio>

#include "bench/harness.hpp"
#include "session/session.hpp"
#include "sim/rng.hpp"

using namespace mvc;
using namespace mvc::session;

namespace {

ContentItem random_item(sim::Rng& rng, ParticipantId creator, bool risky_population) {
    static constexpr ContentKind kinds[] = {ContentKind::Slide, ContentKind::Annotation,
                                            ContentKind::Model3d, ContentKind::Recording,
                                            ContentKind::LabResult};
    ContentItem item;
    item.creator = creator;
    item.kind = kinds[rng.index(std::size(kinds))];
    item.scope = rng.chance(0.2) ? AudienceScope::Team : AudienceScope::Class;
    item.size_bytes = static_cast<std::size_t>(rng.uniform(1'000.0, 500'000.0));
    if (risky_population) {
        // A realistic share of overlays is anchored to people; only some of
        // those anchors consented.
        item.anchored_to_person = rng.chance(0.25);
        item.anchor_consent = rng.chance(0.5);
    }
    return item;
}

}  // namespace

int main() {
    bench::Harness harness{"e12"};
    bench::Session& session = harness.session();
    session.set_seed(61);

    sim::Rng rng{61};
    constexpr std::size_t kStudents = 40;
    constexpr int kContributions = 20'000;

    // (a) screened session.
    ClassSession screened{"COMP4971"};
    std::vector<ParticipantId> roster;
    for (std::size_t i = 0; i < kStudents; ++i) roster.push_back(screened.enroll({}));
    int admitted = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kContributions; ++i) {
        const ParticipantId who = roster[rng.index(roster.size())];
        if (screened.contribute(random_item(rng, who, true)).has_value()) ++admitted;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double screened_us_per_item =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kContributions;

    // (b) unscreened baseline (permissive policy).
    sim::Rng rng2{61};
    ClassSession open{"COMP4971-open"};
    PrivacyPolicy lax;
    lax.person_anchors_need_consent = false;
    lax.recordings_need_approval = false;
    open.privacy() = PrivacyFilter{lax};
    std::vector<ParticipantId> roster2;
    for (std::size_t i = 0; i < kStudents; ++i) roster2.push_back(open.enroll({}));
    int admitted_open = 0;
    const auto t2 = std::chrono::steady_clock::now();
    for (int i = 0; i < kContributions; ++i) {
        const ParticipantId who = roster2[rng2.index(roster2.size())];
        if (open.contribute(random_item(rng2, who, true)).has_value()) ++admitted_open;
    }
    const auto t3 = std::chrono::steady_clock::now();
    const double open_us_per_item =
        std::chrono::duration<double, std::micro>(t3 - t2).count() / kContributions;

    session.record("screened / admitted_pct", 100.0 * admitted / kContributions);
    session.record("permissive / admitted_pct", 100.0 * admitted_open / kContributions);

    std::printf("\n%d contributions from %zu students:\n", kContributions, kStudents);
    std::printf("%-24s %10s %10s %14s\n", "policy", "admitted", "blocked", "us/item");
    std::printf("%-24s %9.1f%% %9.1f%% %14.3f\n", "privacy-screened",
                100.0 * admitted / kContributions,
                100.0 * (kContributions - admitted) / kContributions,
                screened_us_per_item);
    std::printf("%-24s %9.1f%% %9.1f%% %14.3f\n", "permissive",
                100.0 * admitted_open / kContributions,
                100.0 * (kContributions - admitted_open) / kContributions,
                open_us_per_item);

    std::printf("\ntop-5 contributors by credit (screened session):\n");
    const auto board = screened.ledger().leaderboard();
    for (std::size_t i = 0; i < std::min<std::size_t>(5, board.size()); ++i) {
        std::printf("  participant %-4u %8.1f credits\n", board[i].first.value(),
                    board[i].second);
    }

    const double blocked_ratio = 1.0 - static_cast<double>(admitted) / kContributions;
    std::printf("\nexpected shape: screening blocks the unconsented/unapproved share "
                "(5-30%%) -> %s (%.1f%%)\n",
                blocked_ratio > 0.05 && blocked_ratio < 0.30 ? "PASS" : "FAIL",
                blocked_ratio * 100.0);
    std::printf("expected shape: permissive admits everything -> %s\n",
                admitted_open == kContributions ? "PASS" : "FAIL");
    std::printf("expected shape: screening costs < 2 us per item -> %s (%.3f us)\n",
                screened_us_per_item < 2.0 ? "PASS" : "FAIL", screened_us_per_item);
    return 0;
}
