// Micro-benchmarks (google-benchmark) for the hot paths of the classroom
// stack: avatar codec, Reed-Solomon coding, interest-grid queries, seat
// assignment, pose fusion and the event engine. These bound how many
// participants a single edge/cloud process can sustain.

#include <benchmark/benchmark.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "bench/harness.hpp"

#include "avatar/codec.hpp"
#include "edge/seats.hpp"
#include "net/fec.hpp"
#include "sensing/fusion.hpp"
#include "sim/simulator.hpp"
#include "sync/interest.hpp"

using namespace mvc;

namespace {

avatar::AvatarState sample_state() {
    avatar::AvatarState s;
    s.participant = ParticipantId{5};
    s.root.pose = {{3.2, 0.0, -7.5}, math::Quat::from_yaw_pitch_roll(0.4, 0.1, 0.0)};
    s.root.linear_velocity = {0.5, 0.0, -0.2};
    s.body.head = {s.root.pose.position + math::Vec3{0, 0.65, 0},
                   s.root.pose.orientation};
    s.body.left_hand = s.body.head;
    s.body.right_hand = s.body.head;
    s.expression.assign(avatar::kExpressionChannels, 0.25);
    return s;
}

void BM_CodecEncodeFull(benchmark::State& state) {
    const avatar::AvatarCodec codec;
    const avatar::AvatarState s = sample_state();
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec.encode_full(s));
    }
}
BENCHMARK(BM_CodecEncodeFull);

void BM_CodecDecodeFull(benchmark::State& state) {
    const avatar::AvatarCodec codec;
    const auto bytes = codec.encode_full(sample_state());
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec.decode_full(bytes));
    }
}
BENCHMARK(BM_CodecDecodeFull);

void BM_CodecEncodeDelta(benchmark::State& state) {
    const avatar::AvatarCodec codec;
    const avatar::AvatarState a = sample_state();
    avatar::AvatarState b = a;
    b.root.pose.position += math::Vec3{0.05, 0.0, 0.02};
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec.encode_delta(a, b));
    }
}
BENCHMARK(BM_CodecEncodeDelta);

void BM_ReedSolomonEncode(benchmark::State& state) {
    const auto k = static_cast<std::size_t>(state.range(0));
    const net::ReedSolomon rs{k, 4};
    std::vector<std::vector<std::uint8_t>> shards(k, std::vector<std::uint8_t>(1200));
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < 1200; ++j) {
            shards[i][j] = static_cast<std::uint8_t>(i * 31 + j);
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(rs.encode(shards));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k * 1200));
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(4)->Arg(8)->Arg(16);

void BM_ReedSolomonReconstruct(benchmark::State& state) {
    const std::size_t k = 8;
    const net::ReedSolomon rs{k, 4};
    std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(1200));
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < 1200; ++j) {
            data[i][j] = static_cast<std::uint8_t>(i * 17 + j);
        }
    }
    const auto parity = rs.encode(data);
    for (auto _ : state) {
        std::vector<std::optional<std::vector<std::uint8_t>>> shards;
        for (const auto& d : data) shards.emplace_back(d);
        for (const auto& p : parity) shards.emplace_back(p);
        shards[1].reset();
        shards[4].reset();
        benchmark::DoNotOptimize(rs.reconstruct(shards));
    }
}
BENCHMARK(BM_ReedSolomonReconstruct);

void BM_InterestGridQuery(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    sync::InterestGrid grid{4.0};
    sim::Rng rng{7};
    for (std::uint32_t i = 1; i <= n; ++i) {
        grid.update(EntityId{i},
                    {rng.uniform(-40.0, 40.0), 0.0, rng.uniform(-40.0, 40.0)});
    }
    grid.rebuild();
    std::vector<EntityId> out;
    for (auto _ : state) {
        grid.query_radius_into({0, 0, 0}, 12.0, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_InterestGridQuery)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SeatAssignmentOptimal(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    sim::Rng rng{9};
    edge::SeatMap seats = edge::SeatMap::grid(8, 8);
    std::vector<edge::SeatRequest> requests;
    for (std::uint32_t i = 1; i <= n; ++i) {
        requests.push_back({ParticipantId{i},
                            {rng.uniform(-4.0, 4.0), 0.0, rng.uniform(1.0, 7.0)}});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(assign_seats_optimal(seats, requests));
    }
}
BENCHMARK(BM_SeatAssignmentOptimal)->Arg(8)->Arg(24)->Arg(64);

void BM_PoseFusionObserve(benchmark::State& state) {
    sensing::PoseFusion fusion;
    sensing::SensorSample s;
    s.participant = ParticipantId{1};
    s.source = sensing::SensorSource::Headset;
    s.expression.assign(16, 0.4);
    std::int64_t t = 0;
    for (auto _ : state) {
        s.captured_at = sim::Time::us(t += 11'000);
        s.pose.position = {std::sin(static_cast<double>(t) * 1e-6), 1.2,
                           std::cos(static_cast<double>(t) * 1e-6)};
        fusion.observe(s);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_PoseFusionObserve);

void BM_SimulatorEventChurn(benchmark::State& state) {
    for (auto _ : state) {
        sim::Simulator sim;
        int counter = 0;
        for (int i = 0; i < 1000; ++i) {
            sim.schedule_at(sim::Time::us(i), [&counter] { ++counter; });
        }
        sim.run_all();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_HungarianSquare(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    sim::Rng rng{11};
    std::vector<std::vector<double>> cost(n, std::vector<double>(n));
    for (auto& row : cost) {
        for (auto& c : row) c = rng.uniform(0.0, 100.0);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(edge::hungarian(cost));
    }
}
BENCHMARK(BM_HungarianSquare)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

// Custom driver (replaces benchmark_main): runs the registered benchmarks
// through the normal console reporter while capturing every per-run real/cpu
// time into a MetricsRecorder, then writes BENCH_micro.json alongside the
// other experiment artifacts.
class RecordingReporter : public benchmark::ConsoleReporter {
public:
    explicit RecordingReporter(sim::MetricsRecorder& metrics) : metrics_(metrics) {}

    void ReportRuns(const std::vector<Run>& runs) override {
        for (const Run& run : runs) {
            if (run.error_occurred) continue;
            const std::string name = run.benchmark_name();
            metrics_.sample(name + " / real_ns", run.GetAdjustedRealTime());
            metrics_.sample(name + " / cpu_ns", run.GetAdjustedCPUTime());
        }
        benchmark::ConsoleReporter::ReportRuns(runs);
    }

private:
    sim::MetricsRecorder& metrics_;
};

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    mvc::bench::Harness harness{"micro"};
    mvc::bench::Session& session = harness.session();
    RecordingReporter reporter{session.metrics()};
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
}
