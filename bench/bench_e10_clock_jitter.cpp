// E10 — cross-classroom synchronization plumbing: clock sync accuracy and
// jitter-buffer sizing under WiFi contention.
// Claim (§3.1): the three classrooms are "synchronized so that the
// intervention of a participant in any of these classrooms will be visible
// to the attendants in the other two classrooms".
//
// (a) NTP-style sync error vs path jitter and probing window.
// (b) WiFi contention (station count) vs sensor ingestion latency — the
//     first hop of Figure 3 — and the jitter-buffer playout delay a
//     receiver needs downstream of it.

#include <cstdio>

#include "bench/harness.hpp"
#include "net/wifi.hpp"
#include "sync/clock.hpp"
#include "sync/jitter.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

using namespace mvc;

namespace {

double sync_error_ms(double jitter_ms, std::size_t window, double seconds = 30.0) {
    sim::Simulator sim{47};
    net::Network net{sim};
    const net::NodeId a = net.add_node("edge-a", net::Region::HongKong);
    const net::NodeId b = net.add_node("edge-b", net::Region::Guangzhou);
    net::LinkParams link;
    link.latency = sim::Time::ms(4.0);
    link.jitter = sim::Time::ms(jitter_ms);
    link.spike_probability = 0.01;
    net.connect(a, b, link);
    net::PacketDemux demux_a{net, a};
    net::PacketDemux demux_b{net, b};
    const sync::DriftingClock client{80.0, sim::Time::ms(321.0)};
    const sync::DriftingClock server{-40.0, sim::Time::ms(-777.0)};
    sync::ClockSyncParams params;
    params.window = window;
    sync::ClockSyncSession session{net, demux_a, demux_b, "ntp", client, server, params};
    session.start();
    // Measure the error at several points in the second half of the run.
    math::SampleSeries err;
    for (double t = seconds / 2; t <= seconds; t += 1.0) {
        sim.run_until(sim::Time::seconds(t));
        err.add(session.estimation_error().to_ms());
    }
    return err.mean();
}

struct WifiRow {
    std::size_t stations;
    double ingest_p50;
    double ingest_p99;
    double utilization;
    double playout_ms;
};

WifiRow wifi_case(std::size_t stations, double seconds = 20.0) {
    sim::Simulator sim{53};
    net::WifiParams params;
    net::WifiChannel wifi{sim, "room", params};
    math::SampleSeries ingest_ms;
    sync::JitterBuffer buffer;

    std::vector<net::StationId> ids;
    for (std::size_t i = 0; i < stations; ++i) ids.push_back(wifi.add_station());

    // Every station streams 60 Hz tracking samples (~110 B); we follow one
    // "tracked participant" whose samples feed a downstream jitter buffer.
    sim::Rng rng = sim.rng_stream("phase");
    for (std::size_t i = 0; i < stations; ++i) {
        const net::StationId sid = ids[i];
        const bool tracked = i == 0;
        const sim::Time phase = sim::Time::ms(rng.uniform(0.0, 16.0));
        sim.schedule_every(sim::Time::ms(1000.0 / 60.0), phase, [&, sid, tracked] {
            net::Packet pkt;
            pkt.size_bytes = 110;
            const sim::Time sent = sim.now();
            wifi.send(sid, std::move(pkt), [&, sent, tracked](net::Packet&&) {
                const double ms = (sim.now() - sent).to_ms();
                if (tracked) {
                    ingest_ms.add(ms);
                    avatar::AvatarState s;
                    s.participant = ParticipantId{1};
                    s.captured_at = sent;
                    buffer.push(s, sim.now());
                }
            });
        });
    }
    sim.run_until(sim::Time::seconds(seconds));
    return {stations, ingest_ms.median(), ingest_ms.p99(), wifi.utilization(),
            buffer.playout_delay().to_ms()};
}

}  // namespace

int main() {
    bench::Harness harness{"e10"};
    bench::Session& session = harness.session();
    session.set_seed(47);

    std::printf("\n(a) clock sync error (CWB<->GZ, 4 ms path, skewed clocks):\n");
    std::printf("%14s %10s %16s\n", "path jitter", "window", "mean error");
    double calm_err = 0.0;
    double stormy_err = 0.0;
    for (const double jitter : {0.0, 2.0, 8.0}) {
        for (const std::size_t window : {1u, 8u, 32u}) {
            const double err = sync_error_ms(jitter, window);
            session.record("sync_error_ms / jitter " + std::to_string(jitter) +
                               " window " + std::to_string(window),
                           err);
            std::printf("%11.1f ms %10zu %13.3f ms\n", jitter, window, err);
            if (jitter == 8.0 && window == 1) stormy_err = err;
            if (jitter == 8.0 && window == 32) calm_err = err;
        }
    }

    std::printf("\n(b) WiFi ingestion vs classroom size (60 Hz tracking streams):\n");
    std::printf("%10s %12s %12s %12s %14s\n", "stations", "p50 ms", "p99 ms",
                "airtime", "playout ms");
    double p99_small = 0.0;
    double p99_class = 0.0;
    double p99_saturated = 0.0;
    for (const std::size_t n : {5u, 30u, 60u, 120u, 200u}) {
        const WifiRow row = wifi_case(n);
        session.record("wifi / " + std::to_string(n) + " stations / ingest_p99_ms",
                       row.ingest_p99);
        std::printf("%10zu %12.2f %12.2f %11.1f%% %14.1f\n", row.stations, row.ingest_p50,
                    row.ingest_p99, row.utilization * 100.0, row.playout_ms);
        if (n == 5) p99_small = row.ingest_p99;
        if (n == 60) p99_class = row.ingest_p99;
        if (n == 200) p99_saturated = row.ingest_p99;
    }

    std::printf("\nexpected shape: min-RTT window beats single probe under jitter -> %s "
                "(%.3f vs %.3f ms)\n",
                calm_err < stormy_err ? "PASS" : "FAIL", calm_err, stormy_err);
    std::printf("expected shape: saturating the BSS inflates ingest p99 -> %s "
                "(%.2f -> %.2f ms)\n",
                p99_saturated > 2.0 * p99_small ? "PASS" : "FAIL", p99_small,
                p99_saturated);
    std::printf("expected shape: 60-headset classroom still ingests under 100 ms p99 -> "
                "%s (%.2f ms)\n",
                p99_class < 100.0 ? "PASS" : "FAIL", p99_class);
    return 0;
}
