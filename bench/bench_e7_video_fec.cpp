// E7 — low-latency classroom video: plain UDP vs ARQ retransmission vs
// application-level FEC (the paper's pointer to Nebula-style joint source
// coding + FEC).
//
// A 720p instructor stream crosses the WAN to a remote campus under a loss
// sweep. Expected shape: ARQ recovers everything but pays one or more RTTs
// exactly when loss bites, busting the playout deadline on long paths; FEC
// pays constant redundancy overhead and keeps p99 frame delay flat; plain
// UDP is cheap but quality collapses with loss.

#include <cstdio>

#include "bench/harness.hpp"
#include "media/video.hpp"
#include "net/fec.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

using namespace mvc;

namespace {

struct Row {
    const char* transport;
    double loss;
    double quality_db;
    double complete_ratio;
    double p50_delay_ms;
    double p99_delay_ms;
    double overhead_pct;  // extra bytes vs the raw stream
};

enum class Transport { Udp, Arq, Fec };

Row run(Transport transport, double loss, double one_way_ms, double deadline_ms,
        double seconds = 30.0) {
    sim::Simulator sim{37};
    net::Network net{sim};
    const net::NodeId tx = net.add_node("lecturer", net::Region::HongKong);
    const net::NodeId rx_node = net.add_node("campus", net::Region::Boston);
    net::LinkParams link;
    link.latency = sim::Time::ms(one_way_ms);
    link.jitter = sim::Time::ms(2.0);
    link.loss = loss;
    link.bandwidth_bps = 50e6;
    net.connect(tx, rx_node, link);

    net::PacketDemux demux_tx{net, tx};
    net::PacketDemux demux_rx{net, rx_node};

    const media::VideoProfile profile = media::profile_720p();
    const sim::Time playout = sim::Time::ms(deadline_ms);
    media::VideoReceiver receiver{sim, profile, playout};

    std::uint64_t payload_bytes = 0;
    std::uint64_t wire_bytes = 0;

    // Transport plumbing.
    std::unique_ptr<net::ReliableChannel> arq;
    std::unique_ptr<net::FecStream> fec;
    if (transport == Transport::Arq) {
        net::ReliableOptions opts;
        opts.ordered = false;  // frames reassembled by index; no HoL blocking
        arq = std::make_unique<net::ReliableChannel>(net, demux_tx, demux_rx, "video",
                                                     opts);
        arq->on_delivered([&](net::Payload payload, sim::Time, int) {
            receiver.ingest(payload.take<media::VideoPacket>());
        });
    } else if (transport == Transport::Fec) {
        net::FecStreamOptions opts;
        opts.block_size = 10;
        opts.adaptive = true;
        opts.block_timeout = playout;
        fec = std::make_unique<net::FecStream>(net, demux_tx, demux_rx, "video", opts);
        fec->on_delivered([&](net::Payload payload, sim::Time, bool) {
            receiver.ingest(payload.take<media::VideoPacket>());
        });
    } else {
        demux_rx.on_flow("video", [&](net::Packet&& p) {
            receiver.ingest(p.payload.take<media::VideoPacket>());
        });
    }

    media::VideoSource source{sim, "cam", profile, [&](media::VideoFrame&& frame) {
        for (const media::VideoPacket& pkt : media::packetize(frame)) {
            payload_bytes += pkt.size_bytes;
            switch (transport) {
                case Transport::Udp:
                    net.send(tx, rx_node, pkt.size_bytes, "video", pkt);
                    break;
                case Transport::Arq:
                    arq->send(pkt.size_bytes, pkt);
                    break;
                case Transport::Fec:
                    fec->send(pkt.size_bytes, pkt);
                    break;
            }
        }
        // Low-latency FEC closes its block at each frame boundary instead of
        // letting the tail of a frame wait for packets of the next one.
        if (transport == Transport::Fec) fec->flush();
    }};
    source.start();
    sim.run_until(sim::Time::seconds(seconds));
    source.stop();
    sim.run_until(sim.now() + sim::Time::seconds(2));
    receiver.finish();

    wire_bytes = net.metrics().counter("net.tx_bytes.video") +
                 net.metrics().counter("net.tx_bytes.video.ack");

    const media::PlaybackStats& stats = receiver.stats();
    Row row;
    row.transport = transport == Transport::Udp   ? "udp"
                    : transport == Transport::Arq ? "arq"
                                                  : "fec";
    row.loss = loss;
    row.quality_db = stats.delivered_quality_db(profile, seconds);
    const double total = static_cast<double>(stats.frames_complete + stats.frames_missed);
    row.complete_ratio =
        total > 0.0 ? static_cast<double>(stats.frames_complete) / total : 0.0;
    row.p50_delay_ms = stats.frame_delay_ms.median();
    row.p99_delay_ms = stats.frame_delay_ms.p99();
    row.overhead_pct = payload_bytes > 0
                           ? 100.0 * (static_cast<double>(wire_bytes) /
                                          static_cast<double>(payload_bytes) -
                                      1.0)
                           : 0.0;
    return row;
}

}  // namespace

int main() {
    bench::Harness harness{"e7"};
    bench::Session& session = harness.session();
    session.set_seed(37);

    const double one_way_ms = 105.0;  // HK -> Boston

    // (a) Relaxed deadline: ARQ has time to retransmit; the question is how
    // much tail latency it costs versus FEC's constant overhead.
    const double relaxed = 2.0 * 2.0 * one_way_ms + 200.0;  // 2 RTT + slack
    std::printf("\n(a) relaxed playout deadline %.0f ms (ARQ can recover):\n", relaxed);
    std::printf("%-6s %7s %12s %10s %12s %12s %10s\n", "mode", "loss", "quality dB",
                "complete", "p50 ms", "p99 ms", "overhead");
    Row fec_at_3{};
    Row arq_at_3{};
    Row udp_at_3{};
    for (const double loss : {0.0, 0.01, 0.03, 0.08}) {
        for (const Transport t : {Transport::Udp, Transport::Arq, Transport::Fec}) {
            const Row r = run(t, loss, one_way_ms, relaxed);
            const std::string key = std::string{"relaxed/"} + r.transport + "@" +
                                    std::to_string(loss);
            session.record(key + " / quality_db", r.quality_db);
            session.record(key + " / p99_delay_ms", r.p99_delay_ms);
            std::printf("%-6s %6.1f%% %12.1f %9.1f%% %12.1f %12.1f %9.1f%%\n", r.transport,
                        loss * 100.0, r.quality_db, r.complete_ratio * 100.0,
                        r.p50_delay_ms, r.p99_delay_ms, r.overhead_pct);
            if (loss == 0.03) {
                if (t == Transport::Fec) fec_at_3 = r;
                if (t == Transport::Arq) arq_at_3 = r;
                if (t == Transport::Udp) udp_at_3 = r;
            }
        }
    }

    // (b) Interactive deadline: retransmissions simply arrive too late, so
    // ARQ collapses to UDP quality while FEC keeps its dB.
    const double tight = 2.0 * one_way_ms + 80.0;
    std::printf("\n(b) interactive playout deadline %.0f ms (one shot per packet):\n",
                tight);
    std::printf("%-6s %7s %12s %10s %12s %12s %10s\n", "mode", "loss", "quality dB",
                "complete", "p50 ms", "p99 ms", "overhead");
    Row tight_fec{};
    Row tight_arq{};
    for (const Transport t : {Transport::Udp, Transport::Arq, Transport::Fec}) {
        const Row r = run(t, 0.03, one_way_ms, tight);
        session.record(std::string{"interactive/"} + r.transport + " / quality_db",
                       r.quality_db);
        std::printf("%-6s %6.1f%% %12.1f %9.1f%% %12.1f %12.1f %9.1f%%\n", r.transport,
                    3.0, r.quality_db, r.complete_ratio * 100.0, r.p50_delay_ms,
                    r.p99_delay_ms, r.overhead_pct);
        if (t == Transport::Fec) tight_fec = r;
        if (t == Transport::Arq) tight_arq = r;
    }

    std::printf("\nexpected shape @ 3%% loss, 210 ms RTT:\n");
    std::printf("  relaxed: fec p99 delay < arq p99 delay -> %s (%.0f vs %.0f ms)\n",
                fec_at_3.p99_delay_ms < arq_at_3.p99_delay_ms ? "PASS" : "FAIL",
                fec_at_3.p99_delay_ms, arq_at_3.p99_delay_ms);
    std::printf("  relaxed: fec quality > udp quality -> %s (%.1f vs %.1f dB)\n",
                fec_at_3.quality_db > udp_at_3.quality_db ? "PASS" : "FAIL",
                fec_at_3.quality_db, udp_at_3.quality_db);
    std::printf("  interactive: fec quality > arq quality -> %s (%.1f vs %.1f dB)\n",
                tight_fec.quality_db > tight_arq.quality_db ? "PASS" : "FAIL",
                tight_fec.quality_db, tight_arq.quality_db);
    return 0;
}
