// E9 — vacant-seat assignment and pose correction (Figure 3: "identifies
// the vacant seats ... corrects the pose to match the new position").
//
// (a) assignment quality: optimal (Hungarian) vs greedy matching cost as
//     remote cohorts grow — relative-geometry preservation is the metric.
// (b) assignment compute time: the edge server runs this on arrival bursts,
//     so O(n^3) must stay sub-millisecond at classroom sizes.
// (c) retargeting fidelity: after seat correction, local motion magnitudes
//     are preserved exactly (isometry check) and roaming is clamped.

#include <chrono>
#include <cstdio>

#include "bench/harness.hpp"
#include "edge/retarget.hpp"
#include "edge/seats.hpp"
#include "sim/rng.hpp"

using namespace mvc;
using namespace mvc::edge;

namespace {

std::vector<SeatRequest> random_cohort(std::size_t n, sim::Rng& rng) {
    std::vector<SeatRequest> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        out.push_back({ParticipantId{i + 1},
                       {rng.uniform(-4.0, 4.0), 0.0, rng.uniform(1.0, 7.0)}});
    }
    return out;
}

}  // namespace

int main() {
    bench::Harness harness{"e9"};
    bench::Session& session = harness.session();
    session.set_seed(43);

    sim::Rng rng{43};

    std::printf("\n(a) matching cost (mean metres of relative-geometry distortion per "
                "avatar, 20 trials):\n");
    std::printf("%10s %10s %12s %12s %10s\n", "cohort", "seats", "optimal", "greedy",
                "ratio");
    bool optimal_wins = true;
    for (const std::size_t n : {4u, 8u, 16u, 24u}) {
        double opt_total = 0.0;
        double greedy_total = 0.0;
        for (int trial = 0; trial < 20; ++trial) {
            SeatMap seats = SeatMap::grid(5, 6);
            const auto cohort = random_cohort(n, rng);
            opt_total += assign_seats_optimal(seats, cohort).total_cost;
            greedy_total += assign_seats_greedy(seats, cohort).total_cost;
        }
        const double opt = opt_total / (20.0 * static_cast<double>(n));
        const double greedy = greedy_total / (20.0 * static_cast<double>(n));
        session.record("cohort " + std::to_string(n) + " / optimal_cost", opt);
        session.record("cohort " + std::to_string(n) + " / greedy_cost", greedy);
        std::printf("%10zu %10d %12.3f %12.3f %10.2fx\n", n, 30, opt, greedy,
                    greedy / opt);
        if (opt > greedy + 1e-9) optimal_wins = false;
    }

    std::printf("\n(b) assignment compute time (single burst, wall clock):\n");
    std::printf("%10s %16s %16s\n", "cohort", "hungarian", "greedy");
    double worst_us = 0.0;
    for (const std::size_t n : {8u, 16u, 32u, 64u}) {
        SeatMap seats = SeatMap::grid(8, 8);
        const auto cohort = random_cohort(n, rng);
        const auto t0 = std::chrono::steady_clock::now();
        for (int rep = 0; rep < 50; ++rep) (void)assign_seats_optimal(seats, cohort);
        const auto t1 = std::chrono::steady_clock::now();
        for (int rep = 0; rep < 50; ++rep) (void)assign_seats_greedy(seats, cohort);
        const auto t2 = std::chrono::steady_clock::now();
        const double hung_us =
            std::chrono::duration<double, std::micro>(t1 - t0).count() / 50.0;
        const double greedy_us =
            std::chrono::duration<double, std::micro>(t2 - t1).count() / 50.0;
        std::printf("%10zu %13.1f us %13.1f us\n", n, hung_us, greedy_us);
        worst_us = std::max(worst_us, hung_us);
    }

    std::printf("\n(c) retargeting fidelity (1000 random local motions):\n");
    PoseRetargeter rt;
    const math::Pose anchor{{5.0, 0.0, 3.0},
                            math::Quat::from_axis_angle(math::Vec3::unit_y(), 0.7)};
    const math::Pose seat{{-1.0, 0.0, 2.0},
                          math::Quat::from_axis_angle(math::Vec3::unit_y(), -0.4)};
    rt.bind(ParticipantId{1}, anchor, seat);
    double max_isometry_err = 0.0;
    for (int i = 0; i < 1000; ++i) {
        // Local motion within the roam radius.
        const math::Vec3 delta{rng.uniform(-0.5, 0.5), rng.uniform(-0.1, 0.1),
                               rng.uniform(-0.5, 0.5)};
        avatar::AvatarState s;
        s.participant = ParticipantId{1};
        s.root.pose = {anchor.position + anchor.orientation.rotate(delta),
                       anchor.orientation};
        s.body.head = {s.root.pose.position + math::Vec3{0, 0.65, 0},
                       s.root.pose.orientation};
        s.body.left_hand = s.body.head;
        s.body.right_hand = s.body.head;
        const auto out = rt.retarget(s);
        // Isometry: distance from seat must equal the local displacement.
        const double local = delta.norm();
        const double mapped = out->root.pose.position.distance_to(seat.position);
        max_isometry_err = std::max(max_isometry_err, std::abs(local - mapped));
    }
    std::printf("  max |local displacement - mapped displacement| = %.2e m\n",
                max_isometry_err);

    std::printf("\nexpected shape: optimal cost <= greedy cost everywhere -> %s\n",
                optimal_wins ? "PASS" : "FAIL");
    std::printf("expected shape: 64-avatar burst assigns in < 5 ms -> %s (worst %.0f us)\n",
                worst_us < 5000.0 ? "PASS" : "FAIL", worst_us);
    std::printf("expected shape: retargeting is an isometry (err < 1e-9) -> %s\n",
                max_isometry_err < 1e-9 ? "PASS" : "FAIL");
    return 0;
}
