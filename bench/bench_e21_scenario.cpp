// E21 — scenario engine: the three shipped `.scenario.json` specs run purely
// declaratively (no bespoke topology code in this file), their SLO gates
// hold, and the engine is deterministic: a same-seed rerun reproduces the
// per-epoch hash stream and the metrics snapshot byte-for-byte, and the
// campus world's thread-count sweep {1, 2, 4} does too.
//
// Gates (exit code drives tools/ci.sh --scenario):
//   - exam / campus-event / breakout-groups all build from their spec files
//     and every declared SLO passes;
//   - for each spec, run #2 with the same seed is byte-identical (hashes and
//     MetricsRecorder::to_json dump);
//   - the campus spec re-run with 2 and 4 worker threads matches the
//     single-threaded hash stream and metrics byte-for-byte.
//
// E21_QUICK caps classroom durations at 20 s for the CI smoke (long enough
// for every gated metric — the exam's first interaction events land after
// the 10 s mark — while cutting the wall clock roughly in half).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "scenario/runner.hpp"

using namespace mvc;

namespace {

struct SpecRun {
    std::string file;
    scenario::ScenarioSpec spec;
    scenario::ScenarioReport report;
    bool slos_ok{false};
    bool rerun_ok{false};
};

bool same_run(const scenario::ScenarioReport& a, const scenario::ScenarioReport& b) {
    return !a.hashes.empty() && a.hashes == b.hashes &&
           a.metrics.dump(2) == b.metrics.dump(2);
}

}  // namespace

int main() {
    bench::Harness harness{"e21"};
    bench::Session& session = harness.session();

    const bool quick = std::getenv("E21_QUICK") != nullptr;
    const std::vector<std::string> files = {
        "exam.scenario.json",
        "campus_event.scenario.json",
        "breakout_groups.scenario.json",
    };

    bool all_slos_ok = true;
    bool all_rerun_ok = true;
    std::vector<SpecRun> runs;
    for (const std::string& file : files) {
        SpecRun run;
        run.file = file;
        run.spec = scenario::load_spec_file(std::string{METACLASS_SCENARIO_DIR} +
                                            "/" + file);
        if (quick && run.spec.duration > sim::Time::seconds(20.0))
            run.spec.duration = sim::Time::seconds(20.0);

        std::printf("\n=== %s (seed %llu, %.0f s sim) ===\n", run.spec.name.c_str(),
                    static_cast<unsigned long long>(run.spec.seed),
                    run.spec.duration.to_seconds());
        run.report = scenario::run_scenario(run.spec);
        const scenario::ScenarioReport again = scenario::run_scenario(run.spec);
        run.rerun_ok = same_run(run.report, again);
        run.slos_ok = run.report.passed;

        for (const scenario::SloResult& slo : run.report.slos) {
            std::printf("  slo %-32s %s", slo.gate.metric.c_str(),
                        slo.passed ? "PASS" : "FAIL");
            if (slo.value)
                std::printf("  (%.3f)", *slo.value);
            else
                std::printf("  (metric missing)");
            std::printf("\n");
        }
        std::printf("  %zu hash epochs; same-seed rerun %s\n",
                    run.report.hashes.size(),
                    run.rerun_ok ? "byte-identical" : "DIVERGED");

        session.count("slo_gates / " + run.spec.name,
                      static_cast<std::uint64_t>(run.report.slos.size()));
        session.count("hash_epochs / " + run.spec.name,
                      static_cast<std::uint64_t>(run.report.hashes.size()));
        session.count("gate / slos_" + run.spec.name, run.slos_ok ? 1 : 0);
        session.count("gate / rerun_" + run.spec.name, run.rerun_ok ? 1 : 0);
        all_slos_ok = all_slos_ok && run.slos_ok;
        all_rerun_ok = all_rerun_ok && run.rerun_ok;
        runs.push_back(std::move(run));
    }

    // Campus thread sweep: the sharded world must be schedule-independent.
    const scenario::ScenarioSpec& campus = runs.at(1).spec;
    bool sweep_ok = true;
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        const scenario::ScenarioReport swept = scenario::run_scenario(campus, threads);
        const bool same = same_run(runs.at(1).report, swept);
        std::printf("campus sweep: %zu threads -> %s\n", threads,
                    same ? "byte-identical" : "DIVERGED");
        sweep_ok = sweep_ok && same;
    }
    session.count("gate / campus_thread_sweep", sweep_ok ? 1 : 0);

    std::printf("\nexpected shape: every declared SLO held -> %s\n",
                all_slos_ok ? "PASS" : "FAIL");
    std::printf("expected shape: same seed -> byte-identical run -> %s\n",
                all_rerun_ok ? "PASS" : "FAIL");
    std::printf("expected shape: campus invariant under thread count -> %s\n",
                sweep_ok ? "PASS" : "FAIL");

    return all_slos_ok && all_rerun_ok && sweep_ok ? 0 : 1;
}
