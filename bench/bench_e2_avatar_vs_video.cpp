// E2 — avatar synchronization traffic vs live video streaming.
// Claim (§3.3): "these data [avatar sync] account for less traffic than live
// video streaming". We measure the real wire bytes of one participant's
// avatar stream — full snapshots, gated deltas, different tick rates —
// against the video ladder a Zoom-style classroom would ship.

#include <cmath>
#include <cstdio>

#include "bench/harness.hpp"
#include "media/video.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sync/replication.hpp"

using namespace mvc;

namespace {

struct AvatarRow {
    const char* label;
    double bits_per_second;
    std::uint64_t packets;
};

/// Drive one publisher with a lively seated participant for `seconds` of
/// simulated time and report the wire rate.
AvatarRow measure_avatar(const char* label, double tick_hz, double error_threshold,
                         double keyframe_s, double seconds = 60.0) {
    sim::Simulator sim{13};
    avatar::AvatarCodec codec;
    sync::ReplicationParams params;
    params.tick_rate_hz = tick_hz;
    params.error_threshold = error_threshold;
    params.keyframe_interval = sim::Time::seconds(keyframe_s);

    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    sync::AvatarPublisher pub{sim, codec, params,
                              [&](std::vector<std::uint8_t> b, bool, sim::Time) {
                                  bytes += b.size() + net::kHeaderBytes;
                                  ++packets;
                              }};
    pub.set_provider([&]() -> std::optional<avatar::AvatarState> {
        // Animated participant: sway + head turn + gesturing hands + talking
        // face. Deliberately lively so deltas fire often (worst case).
        const double t = sim.now().to_seconds();
        avatar::AvatarState s;
        s.participant = ParticipantId{1};
        s.captured_at = sim.now();
        s.root.pose.position = {0.08 * std::sin(0.8 * t), 0.0, 0.04 * std::sin(1.3 * t)};
        s.root.pose.orientation =
            math::Quat::from_axis_angle(math::Vec3::unit_y(), 0.5 * std::sin(0.4 * t));
        s.root.linear_velocity = {0.064 * std::cos(0.8 * t), 0.0, 0.052 * std::cos(1.3 * t)};
        const math::Quat& q = s.root.pose.orientation;
        s.body.head = {s.root.pose.position + q.rotate({0, 0.65, 0}), q};
        s.body.left_hand = {s.root.pose.position +
                                q.rotate({-0.25, 0.35 + 0.1 * std::sin(2.0 * t), -0.2}),
                            q};
        s.body.right_hand = {s.root.pose.position +
                                 q.rotate({0.25, 0.35 + 0.15 * std::sin(1.7 * t), -0.2}),
                             q};
        s.expression.assign(avatar::kExpressionChannels, 0.0);
        s.expression[1] = 0.5 + 0.5 * std::sin(12.0 * t);  // talking
        s.expression[2] = 0.3 + 0.3 * std::sin(9.0 * t);
        s.viseme = static_cast<std::uint8_t>(1 + static_cast<int>(t * 8) % 14);
        return s;
    });
    pub.start();
    sim.run_until(sim::Time::seconds(seconds));
    return {label, static_cast<double>(bytes) * 8.0 / seconds, packets};
}

}  // namespace

int main() {
    bench::Harness harness{"e2"};
    bench::Session& session = harness.session();
    session.set_seed(13);

    std::printf("\nPer-participant avatar stream (lively seated participant, 60 s):\n");
    const AvatarRow rows[] = {
        measure_avatar("full snapshots @ 60 Hz (no gating)", 60.0, 0.0, 0.0166),
        measure_avatar("full snapshots @ 30 Hz (no gating)", 30.0, 0.0, 0.0333),
        measure_avatar("deltas @ 60 Hz, gated, 1 s keyframe", 60.0, 0.02, 1.0),
        measure_avatar("deltas @ 30 Hz, gated, 1 s keyframe", 30.0, 0.02, 1.0),
        measure_avatar("deltas @ 10 Hz, gated, 2 s keyframe", 10.0, 0.02, 2.0),
    };
    for (const auto& r : rows) {
        session.record(std::string{"avatar_bps / "} + r.label, r.bits_per_second);
        std::printf("  %-44s %14s  (%llu packets)\n", r.label,
                    bench::fmt_rate(r.bits_per_second).c_str(),
                    static_cast<unsigned long long>(r.packets));
    }

    std::printf("\nLive video alternatives (per participant webcam tile):\n");
    const media::VideoProfile profiles[] = {media::profile_360p(), media::profile_720p(),
                                            media::profile_1080p()};
    const char* names[] = {"360p webcam", "720p webcam", "1080p webcam"};
    for (int i = 0; i < 3; ++i) {
        session.record(std::string{"video_bps / "} + names[i], profiles[i].bitrate_bps);
        std::printf("  %-44s %14s  (PSNR %.1f dB)\n", names[i],
                    bench::fmt_rate(profiles[i].bitrate_bps).c_str(),
                    media::encode_psnr_db(profiles[i]));
    }

    const double avatar_best = rows[3].bits_per_second;  // 30 Hz gated deltas
    const double video_least = media::profile_360p().bitrate_bps;
    session.record("video_over_avatar_ratio", video_least / avatar_best);
    std::printf("\nratio: cheapest video / production avatar stream = %.0fx\n",
                video_least / avatar_best);
    std::printf("expected shape: avatar stream at least 10x cheaper -> %s\n",
                video_least / avatar_best >= 10.0 ? "PASS" : "FAIL");
    return 0;
}
