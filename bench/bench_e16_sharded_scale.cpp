// E16 — sharded parallel simulation engine: one shard per region, advanced
// by worker threads under a conservative lookahead, with relay/origin
// fan-out coalesced into per-destination wire batches.
//
// Topology: the Hong Kong origin cloud is shard 0; six regional relays
// (Seoul, Tokyo, Boston, London, Sydney, Singapore) are shards 1..6, each
// serving its local crowd of lightweight VR clients. Relay<->origin traffic
// crosses shard boundaries through proxy nodes; the epoch length is the
// minimum origin<->relay WAN latency, so cross-shard messages always land in
// a later epoch and no rollback is ever needed.
//
// Claims measured:
//  - determinism: for a fixed seed, the merged metrics JSON is byte-
//    identical for every worker-thread count (1/2/4/8);
//  - scaling: events/sec grows with threads on multicore hosts (the PASS
//    check is gated on std::thread::hardware_concurrency — a 1-core CI box
//    cannot show parallel speedup and reports SKIP instead);
//  - batching: per-destination batches collapse cross-shard packet counts.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "cloud/relay.hpp"
#include "cloud/vr_client.hpp"
#include "core/sharded_world.hpp"
#include "net/network.hpp"

using namespace mvc;

namespace {

constexpr net::Region kRegions[] = {net::Region::Seoul,  net::Region::Tokyo,
                                    net::Region::Boston, net::Region::London,
                                    net::Region::Sydney, net::Region::Singapore};
constexpr std::uint64_t kSeed = 23;

struct RunResult {
    std::string metrics_json;   // deterministic merged export
    std::size_t events{0};      // events executed across shards
    double wall_seconds{0.0};   // host time for run_until
    std::uint64_t epochs{0};
    std::uint64_t cross_messages{0};
    std::uint64_t violations{0};
};

RunResult run(std::size_t clients, std::size_t threads, double sim_seconds,
              sim::Time batch_interval) {
    const std::size_t shard_count = 1 + std::size(kRegions);
    core::ShardedWorld world{shard_count, kSeed};
    net::WanTopology wan;

    // Shard 0: the origin cloud.
    cloud::CloudServerConfig cc;
    cc.room = ClassroomId{1};
    cc.batch_interval = batch_interval;
    const core::GlobalNode cloud_node = world.add_node(0, "cloud", net::Region::HongKong);
    cloud::CloudServer origin{world.network(0), cloud_node.node, cc};

    // Shards 1..6: one relay per region, linked to the origin across the
    // shard boundary (this pins the lookahead to the fastest WAN path).
    std::vector<std::unique_ptr<cloud::RelayServer>> relays;
    std::vector<core::GlobalNode> relay_nodes;
    for (std::size_t r = 0; r < std::size(kRegions); ++r) {
        const std::size_t shard = r + 1;
        cloud::RelayConfig rc;
        rc.name = "relay-" + std::string{net::region_name(kRegions[r])};
        rc.batch_interval = batch_interval;
        const core::GlobalNode node = world.add_node(shard, rc.name, kRegions[r]);
        auto relay = std::make_unique<cloud::RelayServer>(world.network(shard),
                                                          node.node, std::move(rc));
        world.connect_cross_wan(node, cloud_node, wan);
        relay->set_origin(world.proxy_in(shard, cloud_node));
        origin.add_relay(world.proxy_in(0, node));
        relays.push_back(std::move(relay));
        relay_nodes.push_back(node);
    }

    // Clients: lightweight VR attendees spread round-robin over the regions,
    // each seated in the shared virtual room and visible to every relay's
    // interest filter.
    cloud::VrLayout layout;
    std::vector<std::unique_ptr<cloud::VrClient>> pool;
    pool.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
        const std::size_t r = i % std::size(kRegions);
        const std::size_t shard = r + 1;
        net::Network& net = world.network(shard);
        const ParticipantId who{static_cast<std::uint32_t>(i + 1)};
        const net::NodeId node = net.add_node("c" + std::to_string(i), kRegions[r]);
        net.connect_wan(node, relay_nodes[r].node, wan);

        cloud::VrClientConfig vc;
        vc.name = "c" + std::to_string(i);
        vc.room = ClassroomId{1};
        vc.lightweight = true;
        vc.latency_metric = "e2e_ms";
        auto client = std::make_unique<cloud::VrClient>(net, node, who, vc);

        const math::Pose seat = layout.seat_pose(i);
        for (auto& relay : relays) relay->upsert_entity(who, seat.position);
        origin.place_entity(who);
        relays[r]->attach_client(node, who, seat.position);
        client->join(relay_nodes[r].node, seat);
        pool.push_back(std::move(client));
    }

    const auto wall_start = std::chrono::steady_clock::now();
    const std::size_t events =
        world.run_until(sim::Time::seconds(sim_seconds), threads);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;

    RunResult out;
    const sim::MetricsRecorder merged = world.merged_metrics();
    out.metrics_json = merged.to_json().dump(2);
    out.events = events;
    out.wall_seconds = wall.count();
    out.epochs = merged.counter("shard.epochs");
    out.cross_messages = merged.counter("shard.cross_messages");
    out.violations = merged.counter("shard.lookahead_violations");
    return out;
}

}  // namespace

int main() {
    bench::Harness harness{"e16"};
    bench::Session& session = harness.session();
    session.set_seed(kSeed);

    const bool quick = std::getenv("E16_QUICK") != nullptr;
    const double seconds = quick ? 1.0 : 2.0;
    const std::vector<std::size_t> sizes =
        quick ? std::vector<std::size_t>{36} : std::vector<std::size_t>{288, 1024, 4096};
    const std::vector<std::size_t> thread_counts =
        quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
    const sim::Time batch_interval = sim::Time::ms(20);

    bool identical = true;
    bool violation_free = true;
    double best_speedup = 0.0;
    std::size_t largest = sizes.back();

    std::printf("\n%8s %8s %12s %10s %12s %10s %8s\n", "clients", "threads",
                "events", "wall s", "events/s", "speedup", "epochs");
    for (const std::size_t n : sizes) {
        std::string baseline_json;
        double baseline_rate = 0.0;
        for (const std::size_t t : thread_counts) {
            const RunResult r = run(n, t, seconds, batch_interval);
            const double rate =
                r.wall_seconds > 0.0 ? static_cast<double>(r.events) / r.wall_seconds : 0.0;
            if (t == thread_counts.front()) {
                baseline_json = r.metrics_json;
                baseline_rate = rate;
                // Deterministic figures recorded once per size, from the
                // single-thread run (identical for every thread count).
                const std::string key = std::to_string(n) + " clients";
                session.count(key + " / events", r.events);
                session.count(key + " / epochs", r.epochs);
                session.count(key + " / cross_messages", r.cross_messages);
            } else if (r.metrics_json != baseline_json) {
                identical = false;
            }
            if (r.violations != 0) violation_free = false;
            const double speedup = baseline_rate > 0.0 ? rate / baseline_rate : 0.0;
            if (n == largest) best_speedup = std::max(best_speedup, speedup);
            std::printf("%8zu %8zu %12zu %10.3f %12.0f %9.2fx %8llu\n", n, t, r.events,
                        r.wall_seconds, rate, speedup,
                        static_cast<unsigned long long>(r.epochs));
        }
    }

    // Batching ablation at the mid size: cross-shard messages with and
    // without per-destination coalescing (deterministic, so exported).
    const std::size_t ablation_n = quick ? sizes.front() : 1024;
    const RunResult batched = run(ablation_n, 1, seconds, batch_interval);
    const RunResult unbatched = run(ablation_n, 1, seconds, sim::Time::zero());
    session.count("ablation / cross_messages_batched", batched.cross_messages);
    session.count("ablation / cross_messages_unbatched", unbatched.cross_messages);
    std::printf("\nbatching at %zu clients: cross-shard messages %llu -> %llu "
                "(%.1fx fewer)\n",
                ablation_n, static_cast<unsigned long long>(unbatched.cross_messages),
                static_cast<unsigned long long>(batched.cross_messages),
                batched.cross_messages > 0
                    ? static_cast<double>(unbatched.cross_messages) /
                          static_cast<double>(batched.cross_messages)
                    : 0.0);

    session.count("determinism_identical_json", identical ? 1 : 0);
    session.count("lookahead_violation_free", violation_free ? 1 : 0);

    std::printf("\nexpected shape: merged metrics byte-identical across thread "
                "counts -> %s\n",
                identical ? "PASS" : "FAIL");
    std::printf("expected shape: zero lookahead violations -> %s\n",
                violation_free ? "PASS" : "FAIL");
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores >= 4) {
        std::printf("expected shape: >=3x events/s at 8 threads vs 1 (%u cores) -> %s\n",
                    cores, best_speedup >= 3.0 ? "PASS" : "FAIL");
    } else {
        std::printf("expected shape: >=3x events/s at 8 threads vs 1 -> SKIP "
                    "(host has %u core%s; parallel speedup needs >=4)\n",
                    cores, cores == 1 ? "" : "s");
    }
    return identical && violation_free ? 0 : 1;
}
