// E3 — scaling the VR classroom to a worldwide audience: single origin
// cloud vs regional relay servers.
// Claims (§3.3): "sharing the real-time course with thousands of remote
// users scattered worldwide"; "users located either far away ... present a
// round-trip latency in the order of the hundreds of milliseconds. Most
// gaming platforms solve this issue by setting up regional servers."
//
// Remote attendees from six regions join either directly (single cloud in
// Hong Kong) or via their regional relay. We report end-to-end avatar
// latency percentiles and server load. Expected shape: the regional mesh
// cuts p50 sharply (same-region pairs stop crossing oceans) and keeps the
// origin's queue bounded as attendance grows.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.hpp"
#include "cloud/relay.hpp"
#include "cloud/vr_client.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

using namespace mvc;

namespace {

constexpr net::Region kRegions[] = {net::Region::Seoul,   net::Region::Tokyo,
                                    net::Region::Boston,  net::Region::London,
                                    net::Region::Sydney,  net::Region::Singapore};

struct Result {
    math::SampleSeries e2e_ms;
    double origin_egress_mbps{0.0};
    double origin_queue_ms{0.0};
    double relay_egress_mbps{0.0};
};

Result run(std::size_t clients, bool mesh_mode, double seconds) {
    sim::Simulator sim{17};
    net::Network net{sim};
    net::WanTopology wan;

    cloud::CloudServerConfig cc;
    cc.room = ClassroomId{1};
    const net::NodeId cloud_node = net.add_node("cloud", net::Region::HongKong);
    cloud::CloudServer origin{net, cloud_node, cc};
    std::unique_ptr<cloud::RegionalMesh> mesh;
    if (mesh_mode) {
        mesh = std::make_unique<cloud::RegionalMesh>(net, wan, origin,
                                                     net::Region::HongKong);
    }

    std::vector<std::unique_ptr<cloud::VrClient>> pool;
    pool.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
        const net::Region region = kRegions[i % std::size(kRegions)];
        const ParticipantId who{static_cast<std::uint32_t>(i + 1)};
        const net::NodeId node = net.add_node("c" + std::to_string(i), region);
        cloud::VrClientConfig vc;
        vc.name = "c" + std::to_string(i);
        vc.room = ClassroomId{1};
        vc.lightweight = true;  // latency accounting only at this scale
        vc.latency_metric = "e2e_ms";
        auto client = std::make_unique<cloud::VrClient>(net, node, who, vc);
        if (mesh_mode) {
            cloud::RelayServer& relay = mesh->relay_for(region);
            net.connect_wan(node, relay.node(), wan);
            client->join(relay.node(), mesh->attach_client(node, who, region));
        } else {
            net.connect_wan(node, cloud_node, wan);
            const auto seat = origin.attach_client(node, who);
            client->join(cloud_node, *seat);
        }
        pool.push_back(std::move(client));
    }

    sim.run_until(sim::Time::seconds(seconds));

    Result out;
    out.e2e_ms = net.metrics().series("e2e_ms");
    out.origin_egress_mbps =
        static_cast<double>(origin.egress_bytes()) * 8.0 / seconds / 1e6;
    out.origin_queue_ms = origin.mean_queue_delay_ms();
    if (mesh) {
        out.relay_egress_mbps =
            static_cast<double>(mesh->total_relay_egress()) * 8.0 / seconds / 1e6;
    }
    return out;
}

}  // namespace

int main() {
    bench::Harness harness{"e3"};
    bench::Session& session = harness.session();
    session.set_seed(17);

    std::printf("\n%8s %-10s %8s %8s %8s %8s | %12s %10s %12s\n", "clients", "mode",
                "mean", "p50", "p95", "p99", "origin Mb/s", "queue ms", "relay Mb/s");
    for (const std::size_t n : {36u, 72u, 144u, 288u}) {
        for (const bool mesh : {false, true}) {
            const Result r = run(n, mesh, 8.0);
            const std::string key = std::to_string(n) + (mesh ? "/regional" : "/single");
            session.record(key + " / e2e_ms", r.e2e_ms);
            session.record(key + " / origin_egress_mbps", r.origin_egress_mbps);
            session.record(key + " / origin_queue_ms", r.origin_queue_ms);
            session.record(key + " / relay_egress_mbps", r.relay_egress_mbps);
            std::printf("%8zu %-10s %8.1f %8.1f %8.1f %8.1f | %12.2f %10.3f %12.2f\n", n,
                        mesh ? "regional" : "single", r.e2e_ms.mean(), r.e2e_ms.median(),
                        r.e2e_ms.p95(), r.e2e_ms.p99(), r.origin_egress_mbps,
                        r.origin_queue_ms, r.relay_egress_mbps);
        }
    }

    const Result single = run(144, false, 8.0);
    const Result mesh = run(144, true, 8.0);
    std::printf("\nexpected shape: regional p50 < single p50 (same-region pairs go "
                "local) -> %s\n",
                mesh.e2e_ms.median() < single.e2e_ms.median() ? "PASS" : "FAIL");
    std::printf("expected shape: regional offloads origin egress -> %s\n",
                mesh.origin_egress_mbps < single.origin_egress_mbps ? "PASS" : "FAIL");
    return 0;
}
