// E6 — split rendering: "render a low-quality version of the models
// on-device and merge the rendered frame with high-quality frames rendered
// in the cloud [Outatime]" (§3.3).
//
// Device classes x strategies x cloud RTT. Expected shape: cloud-only wins
// quality but its motion-to-photon latency tracks the RTT past the 100 ms
// budget; local-only is responsive but collapses to coarse LODs on weak
// devices; split keeps local responsiveness and most of the cloud quality,
// degrading gracefully (artifacts) as RTT and head motion grow.

#include <cstdio>

#include "bench/harness.hpp"
#include "render/split.hpp"

using namespace mvc;
using namespace mvc::render;

int main() {
    bench::Harness harness{"e6"};
    bench::Session& session = harness.session();

    const DeviceProfile devices[] = {phone_webgl_profile(), standalone_hmd_profile(),
                                     pc_vr_profile()};

    std::printf("\n30-avatar classroom, moderate head motion (0.8 rad/s):\n");
    std::printf("%-16s %-12s %8s %10s %12s %10s %10s\n", "device", "mode", "rtt ms",
                "fps", "mtp ms", "quality", "artifact");
    for (const auto& dev : devices) {
        for (const double rtt : {20.0, 60.0, 150.0}) {
            for (const RenderMode mode :
                 {RenderMode::LocalOnly, RenderMode::CloudOnly, RenderMode::Split}) {
                SplitConditions cond;
                cond.avatar_count = 30;
                cond.cloud_rtt_ms = rtt;
                cond.head_angular_speed = 0.8;
                const SplitOutcome out = evaluate(mode, dev, cond);
                const std::string key = std::string{dev.name} + "/" +
                                        std::string{render_mode_name(mode)} + "@" +
                                        std::to_string(static_cast<int>(rtt));
                session.record(key + " / fps", out.fps);
                session.record(key + " / mtp_ms", out.motion_to_photon_ms);
                session.record(key + " / quality", out.visual_quality);
                std::printf("%-16s %-12s %8.0f %10.1f %12.1f %10.1f %10.1f\n",
                            std::string{dev.name}.c_str(),
                            std::string{render_mode_name(mode)}.c_str(), rtt, out.fps,
                            out.motion_to_photon_ms, out.visual_quality,
                            out.artifact_penalty);
            }
        }
    }

    // Checks of the expected shape on the standalone HMD at 60 ms RTT.
    SplitConditions cond;
    cond.avatar_count = 30;
    cond.cloud_rtt_ms = 60.0;
    cond.head_angular_speed = 0.8;
    const DeviceProfile hmd = standalone_hmd_profile();
    const SplitOutcome local = evaluate(RenderMode::LocalOnly, hmd, cond);
    const SplitOutcome cloud = evaluate(RenderMode::CloudOnly, hmd, cond);
    const SplitOutcome split = evaluate(RenderMode::Split, hmd, cond);

    std::printf("\nstandalone HMD @ 60 ms RTT:\n");
    std::printf("expected shape: cloud quality > split quality > local quality -> %s\n",
                cloud.visual_quality > split.visual_quality &&
                        split.visual_quality > local.visual_quality
                    ? "PASS"
                    : "FAIL");
    std::printf("expected shape: split mtp ~= local mtp << cloud mtp -> %s\n",
                split.motion_to_photon_ms <= local.motion_to_photon_ms + 1.0 &&
                        cloud.motion_to_photon_ms > 2.0 * split.motion_to_photon_ms
                    ? "PASS"
                    : "FAIL");
    std::printf("expected shape: cloud-only busts 100 ms budget at 150 ms RTT -> %s\n",
                [&] {
                    SplitConditions far = cond;
                    far.cloud_rtt_ms = 150.0;
                    return evaluate(RenderMode::CloudOnly, hmd, far).motion_to_photon_ms >
                           100.0;
                }()
                    ? "PASS"
                    : "FAIL");
    return 0;
}
