#pragma once
// Builder that turns a registry id into a ready-to-use Session. The banner
// title and claim come from tools/experiment_registry.hpp — the same table
// behind `metaclass_run --experiments` — so a bench's main() declares only
// what actually varies (the id and the scenario seed) and the registry stays
// the single source of truth for what each experiment demonstrates.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "bench/bench_util.hpp"
#include "tools/experiment_registry.hpp"

namespace mvc::bench {

/// Registry entry for `id`; throws for ids the registry does not know, so a
/// bench can never ship under an undocumented name.
[[nodiscard]] inline const tools::Experiment& experiment_info(std::string_view id) {
    for (const tools::Experiment& e : tools::kExperiments) {
        if (id == e.id) return e;
    }
    throw std::invalid_argument("bench::Harness: unknown experiment id: " +
                                std::string{id});
}

class Harness {
public:
    explicit Harness(std::string_view id) : info_(experiment_info(id)) {}

    Harness(const Harness&) = delete;
    Harness& operator=(const Harness&) = delete;

    /// Stamp the scenario seed (kept if called before or after session()).
    Harness& seed(std::uint64_t s) {
        seed_ = s;
        if (session_) session_->set_seed(s);
        return *this;
    }

    /// The Session for this experiment; banner prints on first call.
    [[nodiscard]] Session& session() {
        if (!session_) {
            session_.emplace(info_.id, info_.title, info_.claim);
            if (seed_) session_->set_seed(*seed_);
        }
        return *session_;
    }

    [[nodiscard]] const tools::Experiment& info() const { return info_; }

private:
    const tools::Experiment& info_;
    std::optional<std::uint64_t> seed_;
    std::optional<Session> session_;
};

}  // namespace mvc::bench
