#pragma once
// Shared helpers for the experiment harnesses: fixed-width table printing,
// latency-series row formatting, and the Session wrapper that collects every
// reported figure into a MetricsRecorder and exports it as BENCH_<exp>.json
// on exit — so each bench emits both the human table EXPERIMENTS.md records
// and a machine-readable artifact with identical numbers.

#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "math/stats.hpp"
#include "sim/metrics.hpp"

// Build provenance stamped into every BENCH_<exp>.json. The CMake bench
// target defines METACLASS_BUILD_FLAGS from the compiler id + build type +
// flags; both are fixed per build tree, so the artifact stays byte-identical
// across runs of the same binary.
#ifndef METACLASS_BUILD_FLAGS
#define METACLASS_BUILD_FLAGS "unknown"
#endif

namespace mvc::bench {

inline void header(const char* experiment, const char* claim) {
    std::printf("\n================================================================\n");
    std::printf("%s\n", experiment);
    std::printf("claim: %s\n", claim);
    std::printf("================================================================\n");
}

inline void latency_row(const char* label, const math::SampleSeries& s) {
    std::printf("%-36s n=%7zu  mean=%8.2f  p50=%8.2f  p95=%8.2f  p99=%8.2f ms\n",
                label, s.count(), s.mean(), s.median(), s.p95(), s.p99());
}

inline std::string fmt_bytes(double bytes) {
    char buf[64];
    if (bytes >= 1e9) {
        std::snprintf(buf, sizeof buf, "%.2f GB", bytes / 1e9);
    } else if (bytes >= 1e6) {
        std::snprintf(buf, sizeof buf, "%.2f MB", bytes / 1e6);
    } else if (bytes >= 1e3) {
        std::snprintf(buf, sizeof buf, "%.2f kB", bytes / 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%.0f B", bytes);
    }
    return buf;
}

inline std::string fmt_rate(double bits_per_second) {
    char buf[64];
    if (bits_per_second >= 1e6) {
        std::snprintf(buf, sizeof buf, "%.2f Mbit/s", bits_per_second / 1e6);
    } else if (bits_per_second >= 1e3) {
        std::snprintf(buf, sizeof buf, "%.2f kbit/s", bits_per_second / 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%.0f bit/s", bits_per_second);
    }
    return buf;
}

/// One experiment run. Prints the banner on construction, accumulates every
/// reported figure in a MetricsRecorder, and writes BENCH_<id>.json (in the
/// working directory) when destroyed or on an explicit write(). The JSON is
/// MetricsRecorder::to_json() plus an "experiment" field, so two runs that
/// record identical metrics serialize to identical bytes.
class Session {
public:
    Session(std::string id, const char* title, const char* claim) : id_(std::move(id)) {
        header(title, claim);
        metrics_.count("experiment." + id_);  // never write an empty artifact
    }

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    ~Session() {
        try {
            write();
        } catch (...) {  // NOLINT(bugprone-empty-catch): best-effort in dtor
        }
    }

    [[nodiscard]] sim::MetricsRecorder& metrics() { return metrics_; }

    /// Stamp the scenario seed into the artifact ("seed" field). Benches call
    /// this right after picking their ClassroomConfig seed so a reader can
    /// reproduce the exact run from the JSON alone.
    void set_seed(std::uint64_t seed) { seed_ = seed; }

    /// Record a value under `name` (scalars land in a 1-sample series).
    void record(std::string_view name, double value) { metrics_.sample(name, value); }
    void count(std::string_view name, std::uint64_t delta = 1) {
        metrics_.count(name, delta);
    }
    /// Record a whole series (count/mean/min/max/percentiles survive export).
    void record(std::string_view name, const math::SampleSeries& s) {
        for (const double v : s.samples()) metrics_.sample(name, v);
    }

    /// Print the standard latency table row and capture it under `label`.
    void latency_row(const char* label, const math::SampleSeries& s) {
        bench::latency_row(label, s);
        record(label, s);
    }

    /// Write BENCH_<id>.json. Idempotent: later calls rewrite the file with
    /// the metrics recorded so far.
    void write() {
        common::Json root = metrics_.to_json();
        root["experiment"] = common::Json{id_};
        if (seed_) root["seed"] = common::Json{*seed_};
        root["build"] = common::Json{std::string{METACLASS_BUILD_FLAGS}};
        const std::string path = "BENCH_" + id_ + ".json";
        const std::string body = root.dump(2) + "\n";
        std::FILE* f = std::fopen(path.c_str(), "wb");
        if (f == nullptr) throw std::runtime_error("Session: cannot write " + path);
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        if (!wrote_banner_) {
            wrote_banner_ = true;
            std::printf("\nmetrics written to %s\n", path.c_str());
        }
    }

private:
    std::string id_;
    sim::MetricsRecorder metrics_;
    std::optional<std::uint64_t> seed_;
    bool wrote_banner_{false};
};

}  // namespace mvc::bench
