#pragma once
// Shared helpers for the experiment harnesses: fixed-width table printing
// and latency-series row formatting, so every bench emits the same shape of
// output that EXPERIMENTS.md records.

#include <cstdio>
#include <string>

#include "math/stats.hpp"

namespace mvc::bench {

inline void header(const char* experiment, const char* claim) {
    std::printf("\n================================================================\n");
    std::printf("%s\n", experiment);
    std::printf("claim: %s\n", claim);
    std::printf("================================================================\n");
}

inline void latency_row(const char* label, const math::SampleSeries& s) {
    std::printf("%-36s n=%7zu  mean=%8.2f  p50=%8.2f  p95=%8.2f  p99=%8.2f ms\n",
                label, s.count(), s.mean(), s.median(), s.p95(), s.p99());
}

inline std::string fmt_bytes(double bytes) {
    char buf[64];
    if (bytes >= 1e9) {
        std::snprintf(buf, sizeof buf, "%.2f GB", bytes / 1e9);
    } else if (bytes >= 1e6) {
        std::snprintf(buf, sizeof buf, "%.2f MB", bytes / 1e6);
    } else if (bytes >= 1e3) {
        std::snprintf(buf, sizeof buf, "%.2f kB", bytes / 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%.0f B", bytes);
    }
    return buf;
}

inline std::string fmt_rate(double bits_per_second) {
    char buf[64];
    if (bits_per_second >= 1e6) {
        std::snprintf(buf, sizeof buf, "%.2f Mbit/s", bits_per_second / 1e6);
    } else if (bits_per_second >= 1e3) {
        std::snprintf(buf, sizeof buf, "%.2f kbit/s", bits_per_second / 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%.0f bit/s", bits_per_second);
    }
    return buf;
}

}  // namespace mvc::bench
