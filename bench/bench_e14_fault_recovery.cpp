// E14: fault recovery — time-to-detect, time-to-failover, staleness during
// the outage, and post-recovery convergence for the CWB<->GZ deployment.
//
// The world and the fault timeline are declared in
// scenarios/fault_recovery.scenario.json (preset CWB/GZ rooms, 2 students
// each, 50/200 ms heartbeat, degradation ladder, a 10 s edge link outage at
// 10 s and a 35% loss burst at 26 s). This bench only attaches the
// domain-specific probes and evaluates the recovery gates:
//
//   [ 0s,  5s)  warm-up (ignored)
//   [ 5s, 10s)  baseline            — healthy direct edge peering
//   [10s, 20s)  outage              — heartbeats detect the dead peer and both
//                                     edges reroute avatar streams through the
//                                     cloud relay
//   [20s, 26s)  recovery            — failback to the direct path
//   [26s, 34s)  loss burst          — the degradation ladder sheds rate/LOD
//   [34s, 42s)  degradation recovery — fidelity steps back up
//
// "Staleness" is sampled every 20 ms at the GZ edge: simulated time since the
// last decoded network update for the CWB student. During the outage it climbs
// until the first cloud-relayed update lands; its peak IS the failover gap.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/harness.hpp"
#include "core/classroom.hpp"
#include "scenario/runner.hpp"

using namespace mvc;

namespace {

constexpr double kOutageStartS = 10.0;
constexpr double kOutageEndS = 20.0;
constexpr double kBurstStartS = 26.0;

struct Probe {
    // Staleness per phase.
    math::SampleSeries baseline_ms;
    math::SampleSeries outage_ms;
    math::SampleSeries recovery_ms;
    // Liveness transitions (absolute sim seconds; <0 = never observed).
    double detected_down_s{-1.0};
    double detected_up_s{-1.0};
    double converged_s{-1.0};
    int max_degradation{0};
};

}  // namespace

int main() {
    bench::Harness harness{"e14"};
    bench::Session& session = harness.session();

    const scenario::ScenarioSpec spec = scenario::load_spec_file(
        std::string{METACLASS_SCENARIO_DIR} + "/fault_recovery.scenario.json");
    session.set_seed(spec.seed);

    const std::unique_ptr<scenario::ScenarioWorld> world = scenario::build(spec);
    core::MetaverseClassroom& classroom = world->classroom();
    auto& sim = classroom.simulator();
    auto& edge_cwb = classroom.edge_server(0);
    auto& edge_gz = classroom.edge_server(1);
    const net::NodeId edge0 = edge_cwb.node();
    // Spec rooms enrol students in room order, so participant 1 sits in CWB.
    const ParticipantId cwb_student{1};
    const sim::Time hb_interval = sim::Time::ms(50);
    const sim::Time hb_timeout = sim::Time::ms(200);

    std::printf("\nfault schedule (%s):\n%s", spec.name.c_str(),
                world->plan()->to_string().c_str());

    Probe probe;
    std::uint64_t last_count = 0;
    sim::Time last_update = sim::Time::zero();
    double baseline_p95_ms = 0.0;
    sim.schedule_every(sim::Time::ms(20), [&] {
        const sim::Time now = sim.now();
        const double now_s = now.to_seconds();
        const std::uint64_t count = edge_gz.remote_update_count(cwb_student);
        if (count != last_count) {
            last_count = count;
            last_update = now;
        }
        const double staleness_ms = (now - last_update).to_ms();

        if (now_s >= 5.0 && now_s < kOutageStartS) {
            probe.baseline_ms.add(staleness_ms);
        } else if (now_s >= kOutageStartS && now_s < kOutageEndS) {
            probe.outage_ms.add(staleness_ms);
            if (probe.detected_down_s < 0.0 && !edge_gz.peer_alive(edge0)) {
                probe.detected_down_s = now_s;
            }
        } else if (now_s >= kOutageEndS && now_s < kBurstStartS) {
            probe.recovery_ms.add(staleness_ms);
            if (probe.detected_up_s < 0.0 && edge_gz.peer_alive(edge0)) {
                probe.detected_up_s = now_s;
            }
            if (baseline_p95_ms == 0.0) baseline_p95_ms = probe.baseline_ms.p95();
            if (probe.converged_s < 0.0 &&
                staleness_ms <= std::max(baseline_p95_ms, 1.0) * 1.5) {
                probe.converged_s = now_s;
            }
        }
        probe.max_degradation =
            std::max(probe.max_degradation, edge_cwb.degradation_level());
    });

    world->run();

    const double timeout_ms = hb_timeout.to_ms();
    const double detect_ms = (probe.detected_down_s - kOutageStartS) * 1e3;
    const double failover_ms = probe.outage_ms.max();
    const double failback_detect_ms = (probe.detected_up_s - kOutageEndS) * 1e3;
    const double convergence_ms = (probe.converged_s - kOutageEndS) * 1e3;
    const double post_p95 = probe.recovery_ms.p95();

    std::printf("\nrecovery metrics (heartbeat %.0f ms interval / %.0f ms timeout):\n",
                hb_interval.to_ms(), timeout_ms);
    std::printf("  %-34s %10.1f ms\n", "time-to-detect (peer dead)", detect_ms);
    std::printf("  %-34s %10.1f ms\n", "time-to-failover (staleness peak)", failover_ms);
    std::printf("  %-34s %10.1f ms\n", "time-to-detect (peer back)", failback_detect_ms);
    std::printf("  %-34s %10.1f ms\n", "post-recovery convergence", convergence_ms);
    std::printf("\nstaleness of the CWB avatar as seen from GZ:\n");
    session.latency_row("baseline staleness", probe.baseline_ms);
    session.latency_row("outage staleness", probe.outage_ms);
    session.latency_row("recovery staleness", probe.recovery_ms);
    std::printf("\nfailover path usage:\n");
    std::printf("  edge relayed_out=%llu  cloud relayed_for_failover=%llu  "
                "failovers=%llu  failbacks=%llu\n",
                static_cast<unsigned long long>(edge_cwb.relayed_out()),
                static_cast<unsigned long long>(classroom.cloud_server().relayed_for_failover()),
                static_cast<unsigned long long>(edge_gz.heartbeat()->failovers()),
                static_cast<unsigned long long>(edge_gz.heartbeat()->failbacks()));
    std::printf("\ndegradation under the %.0f%% loss burst: max level %d, final level %d\n",
                35.0, probe.max_degradation, edge_cwb.degradation_level());

    session.record("detect_ms", detect_ms);
    session.record("failover_ms", failover_ms);
    session.record("failback_detect_ms", failback_detect_ms);
    session.record("convergence_ms", convergence_ms);
    session.record("degradation_max_level", probe.max_degradation);
    session.record("degradation_final_level", edge_cwb.degradation_level());
    session.count("relayed_out", edge_cwb.relayed_out());
    session.count("relayed_for_failover",
                  classroom.cloud_server().relayed_for_failover());

    const bool detect_ok =
        probe.detected_down_s > 0.0 &&
        detect_ms <= timeout_ms + hb_interval.to_ms() + 50.0;
    const bool failover_ok = edge_cwb.relayed_out() > 0 &&
                             classroom.cloud_server().relayed_for_failover() > 0;
    const bool converge_ok =
        probe.converged_s > 0.0 && post_p95 <= std::max(baseline_p95_ms, 1.0) * 2.0 + 5.0;
    const bool degrade_ok =
        probe.max_degradation >= 1 && edge_cwb.degradation_level() == 0;
    std::printf("\nexpected shape: dead peer detected within heartbeat timeout -> %s "
                "(%.1f ms vs %.0f ms budget)\n",
                detect_ok ? "PASS" : "FAIL", detect_ms, timeout_ms + 100.0);
    std::printf("expected shape: avatars kept flowing via the cloud relay -> %s\n",
                failover_ok ? "PASS" : "FAIL");
    std::printf("expected shape: staleness back to baseline after failback -> %s "
                "(p95 %.1f ms vs baseline %.1f ms)\n",
                converge_ok ? "PASS" : "FAIL", post_p95, baseline_p95_ms);
    std::printf("expected shape: loss burst degrades then fully recovers -> %s "
                "(max level %d, final 0)\n",
                degrade_ok ? "PASS" : "FAIL", probe.max_degradation);

    world->stop();
    return detect_ok && failover_ok && converge_ok && degrade_ok ? 0 : 1;
}
