// E18 — session record & deterministic replay: what recording costs on the
// hot path, what replay gives back, and whether the determinism contract
// actually holds end to end.
//
// The binary replaces global operator new/delete with the E17 counting hook,
// so the headline recording cost is a measured allocation count:
//  - section A: the Channel -> Network -> Link send path with and without a
//    Recorder tap attached — allocations per send while recording must stay
//    within the E17 steady-state budget (the tap stages varints into a
//    capacity-retained buffer; only flow interning and buffer high-water
//    growth ever allocate, and both amortize to zero);
//  - section B: a blended two-campus lecture run twice with recording on and
//    once without — wall-clock overhead %, trace bytes per simulated second,
//    and the record->rerun divergence gate (per-epoch state hashes byte-equal
//    across independent runs of the same seed);
//  - section C: offline lecture playback from the trace alone — speedup vs
//    realtime (must beat 1x) and reconstruction counts;
//  - section D: checkpoint-indexed seek latency as a function of the
//    recovery checkpoint interval (denser keyframes -> shorter fast-forward);
//  - section E: the sharded multi-region world recorded at 1/2/4 worker
//    threads — the state-hash streams (and, as measured fact, the trace
//    bytes) must be identical for every thread count.
//
// Exit code gates the CI replay stage (tools/ci.sh --replay).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "cloud/relay.hpp"
#include "cloud/vr_client.hpp"
#include "core/classroom.hpp"
#include "core/sharded_world.hpp"
#include "net/channel.hpp"
#include "replay/divergence.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

// ---------------------------------------------------------------------------
// Counting allocator hook (same shape as bench_e17_hotpath: unaligned family
// only, so every allocation is freed by the family that produced it).
namespace {
std::atomic<std::uint64_t> g_allocations{0};

[[nodiscard]] std::uint64_t allocations() {
    return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) noexcept {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size == 0 ? 1 : size);
}
}  // namespace

void* operator new(std::size_t size) {
    if (void* p = counted_alloc(size)) return p;
    throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

using namespace mvc;

namespace {

constexpr std::uint64_t kSeed = 31;
/// Same steady-state budget the E17 hot-path gate uses.
constexpr double kAllocBudget = 0.01;

struct Measured {
    double ops_per_sec{0.0};
    double allocs_per_op{0.0};
    double wall_seconds{0.0};
};

template <class Fn>
Measured measure(std::size_t warmup, std::size_t ops, Fn&& op) {
    for (std::size_t i = 0; i < warmup; ++i) op(i);
    const std::uint64_t before = allocations();
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) op(warmup + i);
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    Measured m;
    m.wall_seconds = wall.count();
    m.ops_per_sec = wall.count() > 0.0 ? static_cast<double>(ops) / wall.count() : 0.0;
    m.allocs_per_op =
        static_cast<double>(allocations() - before) / static_cast<double>(ops);
    return m;
}

// --------------------------------------------------------------- B: lecture
struct LectureRun {
    double wall_seconds{0.0};           ///< run_for only (the recorded span)
    std::vector<std::uint8_t> trace;    ///< empty when not recording
    std::uint64_t wire_records{0};
    std::uint64_t avatar_updates{0};
};

/// The two-campus blended lecture both halves of the determinism gate run:
/// everything that shapes the event stream derives from (seed, duration,
/// checkpoint interval), so two calls are reruns of the same session.
LectureRun run_lecture(double sim_seconds, bool record, double checkpoint_s) {
    core::ClassroomConfig config;
    config.seed = kSeed;
    config.course = "bench-e18 lecture";
    config.recovery.enabled = true;
    config.recovery.checkpoint_interval = sim::Time::seconds(checkpoint_s);

    core::MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    for (int i = 0; i < 4; ++i) classroom.add_physical_student(0);
    for (int i = 0; i < 3; ++i) classroom.add_physical_student(1);
    classroom.add_remote_student(net::Region::Seoul);
    classroom.add_remote_student(net::Region::Boston);

    replay::MemorySink sink;
    std::optional<replay::Recorder> rec;
    if (record) {
        rec.emplace(sink, kSeed, "bench-e18 lecture", 0, replay::RecorderOptions{});
        classroom.enable_recording(*rec, sim::Time::ms(100));
    }
    classroom.start();
    const auto start = std::chrono::steady_clock::now();
    classroom.run_for(sim::Time::seconds(sim_seconds));
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    classroom.stop();

    LectureRun out;
    out.wall_seconds = wall.count();
    if (rec) {
        rec->finish();
        if (!rec->error().empty())
            throw std::runtime_error("recording failed: " + rec->error());
        out.wire_records = rec->wire_records();
        out.avatar_updates = rec->avatar_updates();
        out.trace = sink.take();
    }
    return out;
}

// --------------------------------------------------------------- E: sharded
constexpr net::Region kShardRegions[] = {net::Region::Seoul, net::Region::Tokyo,
                                         net::Region::London};

/// E16-style origin + 3 regional relays + lightweight VR clients, recorded
/// through the ShardSet epoch observer. Returns the trace bytes.
std::vector<std::uint8_t> run_sharded(std::size_t clients, std::size_t threads,
                                      double sim_seconds) {
    const std::size_t shard_count = 1 + std::size(kShardRegions);
    core::ShardedWorld world{shard_count, kSeed};
    net::WanTopology wan;

    cloud::CloudServerConfig cc;
    cc.room = ClassroomId{1};
    const core::GlobalNode cloud_node = world.add_node(0, "cloud", net::Region::HongKong);
    cloud::CloudServer origin{world.network(0), cloud_node.node, cc};

    std::vector<std::unique_ptr<cloud::RelayServer>> relays;
    std::vector<core::GlobalNode> relay_nodes;
    for (std::size_t r = 0; r < std::size(kShardRegions); ++r) {
        const std::size_t shard = r + 1;
        cloud::RelayConfig rc;
        rc.name = "relay-" + std::string{net::region_name(kShardRegions[r])};
        const core::GlobalNode node = world.add_node(shard, rc.name, kShardRegions[r]);
        auto relay = std::make_unique<cloud::RelayServer>(world.network(shard),
                                                          node.node, std::move(rc));
        world.connect_cross_wan(node, cloud_node, wan);
        relay->set_origin(world.proxy_in(shard, cloud_node));
        origin.add_relay(world.proxy_in(0, node));
        relays.push_back(std::move(relay));
        relay_nodes.push_back(node);
    }

    cloud::VrLayout layout;
    std::vector<std::unique_ptr<cloud::VrClient>> pool;
    pool.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
        const std::size_t r = i % std::size(kShardRegions);
        const std::size_t shard = r + 1;
        net::Network& net = world.network(shard);
        const ParticipantId who{static_cast<std::uint32_t>(i + 1)};
        const net::NodeId node = net.add_node("c" + std::to_string(i), kShardRegions[r]);
        net.connect_wan(node, relay_nodes[r].node, wan);

        cloud::VrClientConfig vc;
        vc.name = "c" + std::to_string(i);
        vc.room = ClassroomId{1};
        vc.lightweight = true;
        auto client = std::make_unique<cloud::VrClient>(net, node, who, vc);

        const math::Pose seat = layout.seat_pose(i);
        for (auto& relay : relays) relay->upsert_entity(who, seat.position);
        origin.place_entity(who);
        relays[r]->attach_client(node, who, seat.position);
        client->join(relay_nodes[r].node, seat);
        pool.push_back(std::move(client));
    }

    replay::MemorySink sink;
    replay::Recorder rec{sink, kSeed, "bench-e18 sharded", 0, replay::RecorderOptions{}};
    world.enable_recording(rec);
    world.run_until(sim::Time::seconds(sim_seconds), threads);
    rec.finish();
    if (!rec.error().empty())
        throw std::runtime_error("sharded recording failed: " + rec.error());
    return sink.take();
}

}  // namespace

int main() {
    bench::Harness harness{"e18"};
    bench::Session& session = harness.session();
    session.set_seed(kSeed);

    const bool quick = std::getenv("E18_QUICK") != nullptr;
    const std::size_t sends = quick ? 50'000 : 400'000;
    const double lecture_s = quick ? 6.0 : 20.0;
    const double sharded_s = quick ? 1.5 : 4.0;
    const std::size_t sharded_clients = quick ? 12 : 48;

    // ------------------------------------------------ A: tap on the send path
    std::printf("\nA. send path, recording tap off vs on (empty payloads)\n");
    sim::Simulator csim{kSeed};
    net::Network cnet{csim};
    const net::NodeId a = cnet.add_node("a", net::Region::HongKong);
    const net::NodeId b = cnet.add_node("b", net::Region::HongKong);
    net::LinkParams lp;
    lp.latency = sim::Time::us(200);
    lp.queue_bytes = 64 * 1024 * 1024;
    cnet.connect(a, b, lp);
    cnet.set_handler(b, [](net::Packet&&) {});
    net::Channel tx = cnet.open_channel({.src = a, .flow = "avatar"});
    const auto send_op = [&](std::size_t) {
        tx.send_to(b, 120, net::Payload{});
        if (csim.pending_events() > 256) csim.run_until(csim.now() + sim::Time::ms(1));
    };
    const Measured untapped = measure(2'000, sends, send_op);

    replay::MemorySink tap_sink;
    replay::Recorder tap_rec{tap_sink, kSeed, "bench-e18 sendpath", 0,
                             replay::RecorderOptions{}};
    tap_rec.attach(cnet, 0);
    const std::uint64_t tap_bytes_before = tap_rec.bytes_written();
    const Measured tapped = measure(2'000, sends, [&](std::size_t i) {
        send_op(i);
        // Epoch-observer stand-in: drain the staging buffer periodically so
        // the writer/chunk cost is part of the measured recording price.
        if ((i & 1023) == 0) tap_rec.drain(0);
    });
    tap_rec.drain(0);
    const double tap_mb_per_s =
        tapped.wall_seconds > 0.0
            ? static_cast<double>(tap_rec.bytes_written() - tap_bytes_before) /
                  tapped.wall_seconds / 1e6
            : 0.0;
    tap_rec.finish();
    const double send_overhead_pct =
        tapped.ops_per_sec > 0.0
            ? (untapped.ops_per_sec / tapped.ops_per_sec - 1.0) * 100.0
            : 0.0;
    std::printf("%-34s %14.0f sends/s %10.3f allocs/send\n", "tap off",
                untapped.ops_per_sec, untapped.allocs_per_op);
    std::printf("%-34s %14.0f sends/s %10.3f allocs/send  (%.1f%% slower, "
                "%.1f MB/s staged)\n",
                "tap on (recording)", tapped.ops_per_sec, tapped.allocs_per_op,
                send_overhead_pct, tap_mb_per_s);
    session.record("A untapped / sends_per_sec", untapped.ops_per_sec);
    session.record("A untapped / allocs_per_send", untapped.allocs_per_op);
    session.record("A tapped / sends_per_sec", tapped.ops_per_sec);
    session.record("A tapped / allocs_per_send", tapped.allocs_per_op);
    session.record("A tapped / overhead_pct", send_overhead_pct);
    session.record("A tapped / staged_mb_per_sec", tap_mb_per_s);

    // ------------------------------------------- B: end-to-end lecture + gate
    std::printf("\nB. blended lecture (%.0f sim s), recording off vs on\n", lecture_s);
    const LectureRun plain = run_lecture(lecture_s, false, 2.0);
    const LectureRun rec1 = run_lecture(lecture_s, true, 2.0);
    const LectureRun rec2 = run_lecture(lecture_s, true, 2.0);
    const double lecture_overhead_pct =
        plain.wall_seconds > 0.0
            ? (rec1.wall_seconds / plain.wall_seconds - 1.0) * 100.0
            : 0.0;
    std::printf("recording off: %.3f wall-s; on: %.3f wall-s (%.1f%% overhead)\n",
                plain.wall_seconds, rec1.wall_seconds, lecture_overhead_pct);
    std::printf("trace: %zu bytes (%.0f B per sim-s), %llu wire records, %llu "
                "avatar updates\n",
                rec1.trace.size(), static_cast<double>(rec1.trace.size()) / lecture_s,
                static_cast<unsigned long long>(rec1.wire_records),
                static_cast<unsigned long long>(rec1.avatar_updates));
    const replay::Trace trace1 = replay::Trace::parse(rec1.trace);
    const replay::Trace trace2 = replay::Trace::parse(rec2.trace);
    const replay::Divergence rerun_div = replay::diff_state_hashes(trace1, trace2);
    const bool rerun_bytes_equal = rec1.trace == rec2.trace;
    std::printf("record->rerun: %llu hashes compared, diverged=%s, "
                "trace bytes equal=%s\n",
                static_cast<unsigned long long>(rerun_div.compared),
                rerun_div.diverged ? "YES" : "no", rerun_bytes_equal ? "yes" : "NO");
    if (rerun_div.diverged) std::printf("  %s\n", rerun_div.detail.c_str());
    session.record("B recording_off / wall_seconds", plain.wall_seconds);
    session.record("B recording_on / wall_seconds", rec1.wall_seconds);
    session.record("B recording_on / overhead_pct", lecture_overhead_pct);
    session.record("B trace / bytes", static_cast<double>(rec1.trace.size()));
    session.record("B trace / bytes_per_sim_sec",
                   static_cast<double>(rec1.trace.size()) / lecture_s);
    session.record("B rerun / hashes_compared",
                   static_cast<double>(rerun_div.compared));
    session.count("B rerun / bytes_equal", rerun_bytes_equal ? 1 : 0);

    // ----------------------------------------------------- C: replay speedup
    std::printf("\nC. offline playback from the trace alone\n");
    replay::Replayer player{trace1};
    const auto replay_start = std::chrono::steady_clock::now();
    player.play_all(0.0);
    const std::chrono::duration<double> replay_wall =
        std::chrono::steady_clock::now() - replay_start;
    const double replay_speedup =
        replay_wall.count() > 0.0 ? lecture_s / replay_wall.count() : 0.0;
    std::printf("replayed %.0f sim s in %.3f wall-s (%.0fx realtime): %llu "
                "packets, %llu avatar updates, %zu participants\n",
                lecture_s, replay_wall.count(), replay_speedup,
                static_cast<unsigned long long>(player.stats().wire_packets),
                static_cast<unsigned long long>(player.stats().avatar_updates),
                player.participants().size());
    session.record("C replay / wall_seconds", replay_wall.count());
    session.record("C replay / speedup_vs_realtime", replay_speedup);
    session.count("C replay / participants", player.participants().size());

    // ------------------------------------- D: seek latency vs keyframe cadence
    std::printf("\nD. seek latency vs checkpoint interval (target: 75%% mark)\n");
    const double intervals_s[] = {1.0, 2.0, 4.0};
    for (const double interval : intervals_s) {
        const LectureRun run = run_lecture(lecture_s, true, interval);
        const replay::Trace t = replay::Trace::parse(run.trace);
        const sim::Time target = sim::Time::seconds(0.75 * lecture_s);
        // Mean of 3 cold seeks (fresh replayer each: no warm cursor to lean on).
        double total_ms = 0.0;
        for (int i = 0; i < 3; ++i) {
            replay::Replayer p{t};
            const auto s0 = std::chrono::steady_clock::now();
            p.seek(target);
            const std::chrono::duration<double> w =
                std::chrono::steady_clock::now() - s0;
            total_ms += w.count() * 1e3;
        }
        const double mean_ms = total_ms / 3.0;
        std::printf("  checkpoint every %.0f s: %zu keyframes, seek %.2f ms\n",
                    interval, t.checkpoint_index().size(), mean_ms);
        char label[64];
        std::snprintf(label, sizeof label, "D seek / interval_%.0fs_ms", interval);
        session.record(label, mean_ms);
    }

    // ---------------------------------------- E: sharded any-thread-count gate
    std::printf("\nE. sharded world recorded at 1/2/4 threads (%zu clients)\n",
                sharded_clients);
    const std::vector<std::uint8_t> sharded1 =
        run_sharded(sharded_clients, 1, sharded_s);
    const replay::Trace sharded_t1 = replay::Trace::parse(sharded1);
    bool sharded_ok = true;
    bool sharded_bytes_equal = true;
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        const std::vector<std::uint8_t> other =
            run_sharded(sharded_clients, threads, sharded_s);
        const replay::Divergence d =
            replay::diff_state_hashes(sharded_t1, replay::Trace::parse(other));
        sharded_ok = sharded_ok && !d.diverged;
        sharded_bytes_equal = sharded_bytes_equal && other == sharded1;
        std::printf("  %zu threads vs 1: %llu hashes, diverged=%s, bytes equal=%s\n",
                    threads, static_cast<unsigned long long>(d.compared),
                    d.diverged ? "YES" : "no",
                    other == sharded1 ? "yes" : "NO");
        if (d.diverged) std::printf("    %s\n", d.detail.c_str());
    }
    session.count("E sharded / hash_streams_identical", sharded_ok ? 1 : 0);
    session.count("E sharded / trace_bytes_identical", sharded_bytes_equal ? 1 : 0);

    // ------------------------------------------------------------------ gates
    const bool alloc_ok = tapped.allocs_per_op <= kAllocBudget;
    const bool rerun_ok = !rerun_div.diverged && rerun_div.compared > 0;
    const bool replay_ok = replay_speedup > 1.0;
    session.count("gate / alloc_budget_ok", alloc_ok ? 1 : 0);
    session.count("gate / rerun_divergence_free", rerun_ok ? 1 : 0);
    session.count("gate / replay_beats_realtime", replay_ok ? 1 : 0);
    session.count("gate / sharded_thread_invariant", sharded_ok ? 1 : 0);

    std::printf("\nexpected shape: recording allocs/send <= %.2f -> %s\n",
                kAllocBudget, alloc_ok ? "PASS" : "FAIL");
    std::printf("expected shape: record->rerun state hashes identical -> %s\n",
                rerun_ok ? "PASS" : "FAIL");
    std::printf("expected shape: replay faster than realtime -> %s\n",
                replay_ok ? "PASS" : "FAIL");
    std::printf("expected shape: sharded hashes identical for any thread count "
                "-> %s\n",
                sharded_ok ? "PASS" : "FAIL");
    return alloc_ok && rerun_ok && replay_ok && sharded_ok ? 0 : 1;
}
