// E4 — interest management for "synchronization of a large number of
// entities within a single digital space" (§3.3).
//
// The VR classroom hosts N attendees; the cloud either broadcasts every
// update to every client (naive) or filters through the AOI + distance-tier
// policy. We report per-client downstream rate and total server egress.
// Expected shape: naive egress grows ~quadratically in N; with interest
// management per-client load stays roughly flat as the classroom grows
// (far rings decay to billboard rates).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.hpp"
#include "cloud/cloud_server.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "cloud/vr_client.hpp"

using namespace mvc;

namespace {

struct Result {
    double egress_mbps{0.0};
    double per_client_kbps{0.0};
    double per_client_msgs_per_s{0.0};
    std::uint64_t suppressed_aoi{0};
    std::uint64_t suppressed_rate{0};
};

Result run(std::size_t clients, bool interest_enabled, double seconds) {
    sim::Simulator sim{23};
    net::Network net{sim};
    net::WanTopology wan;

    cloud::CloudServerConfig cc;
    cc.room = ClassroomId{1};
    cc.interest_enabled = interest_enabled;
    // Crowd-event policy: in a packed amphitheatre only immediate
    // neighbours deserve full rate; rows further out update progressively
    // slower (the default MR-room tiers are far too generous at N=200).
    cc.interest = sync::InterestPolicy{{
        {3.0, 30.0, avatar::LodLevel::High},
        {8.0, 10.0, avatar::LodLevel::Medium},
        {20.0, 3.0, avatar::LodLevel::Low},
        {80.0, 1.0, avatar::LodLevel::Billboard},
    }};
    const net::NodeId cloud_node = net.add_node("cloud", net::Region::HongKong);
    cloud::CloudServer origin{net, cloud_node, cc};

    std::vector<std::unique_ptr<cloud::VrClient>> pool;
    std::uint64_t received_before = 0;
    for (std::size_t i = 0; i < clients; ++i) {
        const ParticipantId who{static_cast<std::uint32_t>(i + 1)};
        const net::NodeId node = net.add_node("c" + std::to_string(i),
                                              net::Region::HongKong);
        net.connect_wan(node, cloud_node, wan);
        cloud::VrClientConfig vc;
        vc.name = "c" + std::to_string(i);
        vc.room = ClassroomId{1};
        vc.lightweight = true;
        vc.latency_metric = "e2e_ms";
        // Ungated 30 Hz motion streaming: the server-side interest policy,
        // not the sender, is the mechanism under test here.
        vc.replication.error_threshold = 0.0;
        vc.replication.tick_rate_hz = 30.0;
        auto client = std::make_unique<cloud::VrClient>(net, node, who, vc);
        client->join(cloud_node, *origin.attach_client(node, who));
        pool.push_back(std::move(client));
    }
    (void)received_before;
    sim.run_until(sim::Time::seconds(seconds));

    Result out;
    out.egress_mbps = static_cast<double>(origin.egress_bytes()) * 8.0 / seconds / 1e6;
    std::uint64_t received = 0;
    for (const auto& c : pool) received += c->updates_received();
    out.per_client_kbps = out.egress_mbps * 1000.0 / static_cast<double>(clients);
    out.per_client_msgs_per_s =
        static_cast<double>(received) / seconds / static_cast<double>(clients);
    out.suppressed_aoi = origin.fanout().suppressed_by_aoi();
    out.suppressed_rate = origin.fanout().suppressed_by_rate();
    return out;
}

}  // namespace

int main() {
    bench::Harness harness{"e4"};
    bench::Session& session = harness.session();
    session.set_seed(23);

    std::printf("\n%8s %-10s %12s %16s %14s %12s %12s\n", "clients", "mode",
                "egress Mb/s", "per-client kb/s", "msgs/s/client", "aoi-drops",
                "rate-drops");
    double naive_prev = 0.0;
    double aoi_prev = 0.0;
    std::size_t prev_n = 0;
    for (const std::size_t n : {24u, 48u, 96u, 192u}) {
        const Result naive = run(n, false, 6.0);
        const Result aoi = run(n, true, 6.0);
        session.record(std::to_string(n) + "/broadcast / egress_mbps", naive.egress_mbps);
        session.record(std::to_string(n) + "/interest / egress_mbps", aoi.egress_mbps);
        session.record(std::to_string(n) + "/interest / per_client_kbps",
                       aoi.per_client_kbps);
        std::printf("%8zu %-10s %12.2f %16.1f %14.1f %12s %12s\n", n, "broadcast",
                    naive.egress_mbps, naive.per_client_kbps, naive.per_client_msgs_per_s,
                    "-", "-");
        std::printf("%8zu %-10s %12.2f %16.1f %14.1f %12llu %12llu\n", n, "interest",
                    aoi.egress_mbps, aoi.per_client_kbps, aoi.per_client_msgs_per_s,
                    static_cast<unsigned long long>(aoi.suppressed_aoi),
                    static_cast<unsigned long long>(aoi.suppressed_rate));
        if (prev_n != 0) {
            std::printf("%8s growth x%.2f (broadcast) vs x%.2f (interest) for 2x clients\n",
                        "", naive.egress_mbps / naive_prev, aoi.egress_mbps / aoi_prev);
        }
        naive_prev = naive.egress_mbps;
        aoi_prev = aoi.egress_mbps;
        prev_n = n;
    }

    const Result naive = run(192, false, 6.0);
    const Result aoi = run(192, true, 6.0);
    std::printf("\nexpected shape: interest egress well below broadcast at 192 "
                "clients -> %s (%.1fx reduction)\n",
                aoi.egress_mbps < naive.egress_mbps / 2.0 ? "PASS" : "FAIL",
                naive.egress_mbps / aoi.egress_mbps);
    return 0;
}
