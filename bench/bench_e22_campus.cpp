// E22: campus-scale dense hot path. Builds a CampusWorld — B building
// shards, each sweeping its avatars through the SoA AvatarPool, the flat
// InterestGrid, and cell-delta aggregated egress — and sweeps worker
// threads at 100k+ avatars. Reports events/sec and client-bound bytes per
// avatar, byte-compares the merged metrics across thread counts (the E16
// determinism bar extended to the aggregated egress path), and runs the
// aggregation-off ablation the bytes/avatar claim is measured against.
//
// E22_QUICK=1 shrinks the campus and the sweep for CI smoke runs.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "core/campus.hpp"

namespace {

using namespace mvc;

constexpr std::uint64_t kSeed = 42;

struct RunResult {
    std::string metrics_json;
    std::size_t events{0};
    double wall_seconds{0.0};
    std::size_t avatars{0};
    std::uint64_t egress_bytes{0};
    std::uint64_t viewer_updates{0};
    std::uint64_t mirror_updates{0};
    std::uint64_t violations{0};
};

RunResult run(const core::CampusConfig& config, std::size_t threads, double seconds) {
    core::CampusWorld world{config};
    const auto start = std::chrono::steady_clock::now();
    const std::size_t events = world.run_until(sim::Time::seconds(seconds), threads);
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;

    RunResult out;
    out.metrics_json = world.metrics_json();
    out.events = events;
    out.wall_seconds = wall.count();
    out.avatars = world.avatar_count();
    out.egress_bytes = world.egress_bytes();
    out.viewer_updates = world.viewer_updates();
    out.mirror_updates = world.mirror_updates();
    out.violations = world.lookahead_violations();
    return out;
}

double bytes_per_avatar(const RunResult& r) {
    return r.avatars > 0 ? static_cast<double>(r.egress_bytes) /
                               static_cast<double>(r.avatars)
                         : 0.0;
}

}  // namespace

int main() {
    bench::Harness harness{"e22"};
    bench::Session& session = harness.session();
    session.set_seed(kSeed);

    const bool quick = std::getenv("E22_QUICK") != nullptr;
    const double seconds = quick ? 0.5 : 2.0;
    const std::vector<std::size_t> thread_counts =
        quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};

    // The headline campus: 8 buildings x 125 classrooms x 100 avatars = 100k.
    core::CampusConfig campus;
    campus.seed = kSeed;
    if (quick) {
        campus.buildings = 2;
        campus.classrooms_per_building = 10;
        campus.avatars_per_classroom = 50;
    } else {
        campus.buildings = 8;
        campus.classrooms_per_building = 125;
        campus.avatars_per_classroom = 100;
    }

    bool identical = true;
    bool violation_free = true;

    std::printf("\n%8s %8s %12s %10s %14s %12s %12s\n", "avatars", "threads", "events",
                "wall s", "sim events/s", "B/avatar", "deliveries");
    std::string baseline_json;
    double baseline_rate = 0.0;
    for (const std::size_t t : thread_counts) {
        const RunResult r = run(campus, t, seconds);
        const double rate =
            r.wall_seconds > 0.0 ? static_cast<double>(r.events) / r.wall_seconds : 0.0;
        if (t == thread_counts.front()) {
            baseline_json = r.metrics_json;
            baseline_rate = rate;
            session.count("campus / avatars", r.avatars);
            session.count("campus / events", r.events);
            session.count("campus / egress_bytes", r.egress_bytes);
            session.count("campus / viewer_updates", r.viewer_updates);
            session.count("campus / mirror_updates", r.mirror_updates);
            session.record("campus / bytes_per_avatar", bytes_per_avatar(r));
        } else if (r.metrics_json != baseline_json) {
            identical = false;
        }
        if (r.violations != 0) violation_free = false;
        std::printf("%8zu %8zu %12zu %10.3f %14.0f %12.1f %12llu\n", r.avatars, t,
                    r.events, r.wall_seconds, rate, bytes_per_avatar(r),
                    static_cast<unsigned long long>(r.viewer_updates));
    }
    session.record("campus / events_per_sec_best",
                   baseline_rate);  // 1-thread figure; sweep printed above

    // Aggregation ablation at a reduced size: identical campus, egress
    // aggregated vs per-update fan-out. The per-pair baseline is the
    // expensive thing being demonstrated, so it runs on the smaller world.
    core::CampusConfig small = campus;
    if (!quick) {
        small.buildings = 2;
        small.classrooms_per_building = 50;
        small.avatars_per_classroom = 100;
    }
    const double ablation_seconds = quick ? 0.5 : 1.0;
    core::CampusConfig baseline_cfg = small;
    baseline_cfg.aggregate = false;
    const RunResult aggregated = run(small, 1, ablation_seconds);
    const RunResult fanout = run(baseline_cfg, 1, ablation_seconds);
    const double agg_bpa = bytes_per_avatar(aggregated);
    const double fan_bpa = bytes_per_avatar(fanout);
    const bool reduces = agg_bpa < fan_bpa;
    session.count("ablation / avatars", aggregated.avatars);
    session.count("ablation / egress_bytes_aggregated", aggregated.egress_bytes);
    session.count("ablation / egress_bytes_fanout", fanout.egress_bytes);
    session.record("ablation / bytes_per_avatar_aggregated", agg_bpa);
    session.record("ablation / bytes_per_avatar_fanout", fan_bpa);
    std::printf("\naggregation at %zu avatars: client egress %.1f -> %.1f B/avatar "
                "(%.1fx fewer bytes)\n",
                aggregated.avatars, fan_bpa, agg_bpa,
                agg_bpa > 0.0 ? fan_bpa / agg_bpa : 0.0);

    session.count("determinism_identical_json", identical ? 1 : 0);
    session.count("lookahead_violation_free", violation_free ? 1 : 0);
    session.count("aggregation_reduces_bytes", reduces ? 1 : 0);

    std::printf("\nexpected shape: merged metrics byte-identical across thread "
                "counts -> %s; aggregated egress below fan-out baseline -> %s\n",
                identical ? "yes" : "NO", reduces ? "yes" : "NO");
    return identical && violation_free && reduces ? 0 : 1;
}
