// E5 — dead-reckoning send gating: the bandwidth/fidelity dial behind
// "users' actions need to be synchronized in real-time to enable seamless
// interaction" (§3.3).
//
// One publisher/replica pair over an ideal link. We sweep the error
// threshold and the tick rate and report (a) wire rate, (b) the receiver's
// actual display error against ground truth. Expected shape: a monotone
// bandwidth/error trade-off — looser thresholds cut traffic but the
// displayed avatar drifts further from the truth.

#include <cmath>
#include <cstdio>

#include "bench/harness.hpp"
#include "net/packet.hpp"
#include "sync/replication.hpp"
#include "sim/simulator.hpp"

using namespace mvc;

namespace {

avatar::AvatarState truth_at(double t) {
    // Student leaning/gesturing: sinusoids with mild harmonics; imperfectly
    // predictable by constant-velocity extrapolation.
    avatar::AvatarState s;
    s.participant = ParticipantId{1};
    s.captured_at = sim::Time::seconds(t);
    s.root.pose.position = {0.3 * std::sin(1.1 * t) + 0.1 * std::sin(2.9 * t), 0.0,
                            0.2 * std::sin(0.7 * t)};
    s.root.linear_velocity = {0.33 * std::cos(1.1 * t) + 0.29 * std::cos(2.9 * t), 0.0,
                              0.14 * std::cos(0.7 * t)};
    s.root.pose.orientation =
        math::Quat::from_axis_angle(math::Vec3::unit_y(), 0.6 * std::sin(0.5 * t));
    const math::Quat& q = s.root.pose.orientation;
    s.body.head = {s.root.pose.position + q.rotate({0, 0.65, 0}), q};
    s.body.left_hand = {s.root.pose.position + q.rotate({-0.25, 0.35, -0.2}), q};
    s.body.right_hand = {s.root.pose.position + q.rotate({0.25, 0.35, -0.2}), q};
    return s;
}

struct Row {
    double threshold;
    double tick_hz;
    double kbps;
    double mean_err_cm;
    double p95_err_cm;
    double updates_per_s;
};

Row run(double threshold, double tick_hz, double seconds = 120.0) {
    sim::Simulator sim{29};
    avatar::AvatarCodec codec;
    sync::ReplicationParams params;
    params.tick_rate_hz = tick_hz;
    params.error_threshold = threshold;
    params.keyframe_interval = sim::Time::seconds(1.0);

    sync::JitterBufferParams jb;
    jb.min_delay = sim::Time::ms(5);
    sync::AvatarReplica replica{codec, jb};
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    sync::AvatarPublisher pub{sim, codec, params,
                              [&](std::vector<std::uint8_t> b, bool kf, sim::Time) {
                                  bytes += b.size() + net::kHeaderBytes;
                                  ++packets;
                                  replica.ingest(b, kf, sim.now());
                              }};
    pub.set_provider([&]() -> std::optional<avatar::AvatarState> {
        return truth_at(sim.now().to_seconds());
    });
    pub.start();

    // Sample the displayed error at 90 Hz (a viewer's frame rate): what is
    // on screen versus where the person *actually is right now*. This is
    // the perceptual presence error; it includes the (small, intentional)
    // playout delay and grows when suppression lets the display go stale.
    math::SampleSeries err_cm;
    sim.schedule_every(sim::Time::ms(1000.0 / 90.0), [&] {
        const auto shown = replica.display(sim.now());
        if (!shown.has_value()) return;
        const avatar::AvatarState ideal = truth_at(sim.now().to_seconds());
        err_cm.add(avatar::avatar_error(*shown, ideal) * 100.0);
    });
    sim.run_until(sim::Time::seconds(seconds));

    return {threshold, tick_hz, static_cast<double>(bytes) * 8.0 / seconds / 1000.0,
            err_cm.mean(), err_cm.p95(),
            static_cast<double>(packets) / seconds};
}

}  // namespace

int main() {
    bench::Harness harness{"e5"};
    bench::Session& session = harness.session();
    session.set_seed(29);

    std::printf("\n%10s %8s %12s %12s %14s %14s\n", "threshold", "tick Hz", "kbit/s",
                "updates/s", "mean err (cm)", "p95 err (cm)");
    double prev_kbps = -1.0;
    bool monotone_bw = true;
    double err_tight = 0.0;
    double err_loose = 0.0;
    for (const double threshold : {0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}) {
        const Row r = run(threshold, 30.0);
        const std::string key = "threshold " + std::to_string(threshold);
        session.record(key + " / kbps", r.kbps);
        session.record(key + " / mean_err_cm", r.mean_err_cm);
        std::printf("%10.3f %8.0f %12.2f %12.1f %14.2f %14.2f\n", r.threshold, r.tick_hz,
                    r.kbps, r.updates_per_s, r.mean_err_cm, r.p95_err_cm);
        if (prev_kbps >= 0.0 && r.kbps > prev_kbps + 0.5) monotone_bw = false;
        prev_kbps = r.kbps;
        if (threshold == 0.0) err_tight = r.mean_err_cm;
        if (threshold == 0.2) err_loose = r.mean_err_cm;
    }

    std::printf("\ntick-rate sweep at threshold 0.02:\n");
    for (const double hz : {10.0, 20.0, 30.0, 60.0}) {
        const Row r = run(0.02, hz);
        std::printf("%10.3f %8.0f %12.2f %12.1f %14.2f %14.2f\n", r.threshold, r.tick_hz,
                    r.kbps, r.updates_per_s, r.mean_err_cm, r.p95_err_cm);
    }

    std::printf("\nexpected shape: bandwidth falls monotonically with threshold -> %s\n",
                monotone_bw ? "PASS" : "FAIL");
    // Near zero the error sits on the quantization/interpolation floor, so
    // compare the extremes rather than demanding strict monotonicity.
    std::printf("expected shape: loosest threshold errs >2x the tightest -> %s "
                "(%.2f vs %.2f cm)\n",
                err_loose > 2.0 * err_tight ? "PASS" : "FAIL", err_loose, err_tight);
    return 0;
}
