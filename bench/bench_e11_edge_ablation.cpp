// E11 (ablation) — why the architecture puts an edge server in every
// classroom (Figure 3): edge-peered direct exchange vs hair-pinning all
// avatar traffic through a cloud relay.
//
// Same two-campus class, two wirings, measured (not modelled):
//   edge-peered:    CWB edge <-> GZ edge directly
//   cloud-hairpin:  each edge talks only to the cloud, which mirrors
//                   streams to the other edge (mirror_all_streams)
// We run the hairpin against two cloud placements: Hong Kong (local region)
// and Frankfurt (the "no nearby datacenter" case). Expected shape: direct
// peering <= HK hairpin << Frankfurt hairpin; with a distant cloud the
// 100 ms budget is gone, which is exactly why Figure 3 pairs the campuses
// directly over their own link.

#include <cmath>
#include <cstdio>
#include <map>

#include "bench/harness.hpp"
#include "cloud/cloud_server.hpp"
#include "edge/edge_server.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

using namespace mvc;

namespace {

math::SampleSeries run(bool hairpin, net::Region cloud_region, double seconds) {
    sim::Simulator sim{59};
    net::Network net{sim};
    net::WanTopology wan;

    edge::EdgeServerConfig ca;
    ca.room = ClassroomId{1};
    ca.name = "cwb";
    edge::EdgeServerConfig cb;
    cb.room = ClassroomId{2};
    cb.name = "gz";
    const net::NodeId na = net.add_node("edge-cwb", net::Region::HongKong);
    const net::NodeId nb = net.add_node("edge-gz", net::Region::Guangzhou);
    edge::EdgeServer edge_a{net, na, ca, edge::SeatMap::grid(4, 4)};
    edge::EdgeServer edge_b{net, nb, cb, edge::SeatMap::grid(4, 4)};
    net.connect_wan(na, nb, wan);

    cloud::CloudServerConfig cc;
    cc.room = ClassroomId{3};
    cc.mirror_all_streams = hairpin;
    const net::NodeId nc = net.add_node("cloud", cloud_region);
    cloud::CloudServer cloud{net, nc, cc};
    net.connect_wan(na, nc, wan);
    net.connect_wan(nb, nc, wan);

    if (hairpin) {
        edge_a.add_peer(nc);
        edge_b.add_peer(nc);
        cloud.add_peer(na);
        cloud.add_peer(nb);
    } else {
        edge_a.add_peer(nb);
        edge_b.add_peer(na);
    }

    // Six tracked participants per room, lively circular motion.
    auto drive = [&](edge::EdgeServer& server, std::uint32_t base) {
        for (std::uint32_t i = 0; i < 6; ++i) {
            const ParticipantId who{base + i};
            server.add_local_participant(who, i);
            sim.schedule_every(sim::Time::ms(1000.0 / 90.0), [&server, who, &sim] {
                const double t = sim.now().to_seconds();
                const double phase = static_cast<double>(who.value());
                sensing::SensorSample s;
                s.participant = who;
                s.captured_at = sim.now();
                s.source = sensing::SensorSource::Headset;
                s.pose.position = {std::cos(t + phase) * 0.3, 1.2,
                                   2.0 + std::sin(t + phase) * 0.3};
                server.ingest_sample(std::move(s));
            });
        }
    };
    drive(edge_a, 1);
    drive(edge_b, 101);
    edge_a.start();
    edge_b.start();

    // Probe display latency of remote avatars in both rooms at 20 Hz,
    // sampling only when fresh updates were decoded (extrapolated frames
    // carry old capture timestamps by design).
    math::SampleSeries latency_ms;
    std::map<std::uint64_t, std::uint64_t> last_update;
    sim.schedule_every(sim::Time::ms(50), [&] {
        for (edge::EdgeServer* server : {&edge_a, &edge_b}) {
            for (const ParticipantId who : server->remote_participants()) {
                const std::uint64_t decoded = server->remote_update_count(who);
                std::uint64_t& prev =
                    last_update[(static_cast<std::uint64_t>(server->node()) << 32) |
                                who.value()];
                if (decoded <= prev) continue;
                prev = decoded;
                const auto shown = server->display_remote(who, sim.now());
                if (shown.has_value()) {
                    latency_ms.add((sim.now() - shown->captured_at).to_ms());
                }
            }
        }
    });
    sim.run_until(sim::Time::seconds(seconds));
    return latency_ms;
}

}  // namespace

int main() {
    bench::Harness harness{"e11"};
    bench::Session& session = harness.session();
    session.set_seed(59);

    const math::SampleSeries direct = run(false, net::Region::HongKong, 30.0);
    const math::SampleSeries hairpin_hk = run(true, net::Region::HongKong, 30.0);
    const math::SampleSeries hairpin_fra = run(true, net::Region::Frankfurt, 30.0);

    std::printf("\nCWB<->GZ avatar display latency:\n");
    session.latency_row("edge-peered (Figure 3)", direct);
    session.latency_row("hairpin via HK cloud", hairpin_hk);
    session.latency_row("hairpin via Frankfurt cloud", hairpin_fra);

    std::printf("\nexpected shape: direct <= HK hairpin < Frankfurt hairpin -> %s\n",
                direct.median() <= hairpin_hk.median() &&
                        hairpin_hk.median() < hairpin_fra.median()
                    ? "PASS"
                    : "FAIL");
    std::printf("expected shape: distant-cloud hairpin busts the 100 ms budget while "
                "direct peering holds it -> %s (%.1f vs %.1f ms p95)\n",
                hairpin_fra.p95() > 100.0 && direct.p95() < 100.0 ? "PASS" : "FAIL",
                hairpin_fra.p95(), direct.p95());
    return 0;
}
