// E13 (ablation) — why the receiver pipeline buffers before display.
// §3.3 lists latency as the primary challenge, which tempts a designer to
// render the freshest packet immediately. This ablation quantifies the
// trade: rendering replica.latest() (no buffer) versus the adaptive jitter
// buffer, over a WAN path with realistic jitter and reordering.
//
// Metrics at a 90 Hz display: smoothness (mean |frame-to-frame velocity
// change| — perceived stutter), displayed-pose error against ground truth,
// and the effective display latency. Expected shape: the buffer trades a
// bounded latency increase for a large smoothness win; without it, jitter
// shows up directly as avatar stutter.

#include <cmath>
#include <cstdio>

#include "bench/harness.hpp"
#include "net/transport.hpp"
#include "sync/replication.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

using namespace mvc;

namespace {

avatar::AvatarState truth_at(double t) {
    avatar::AvatarState s;
    s.participant = ParticipantId{1};
    s.captured_at = sim::Time::seconds(t);
    s.root.pose.position = {0.4 * std::sin(1.3 * t), 0.0, 0.3 * std::sin(0.9 * t)};
    s.root.linear_velocity = {0.52 * std::cos(1.3 * t), 0.0, 0.27 * std::cos(0.9 * t)};
    const math::Quat q = math::Quat::from_axis_angle(math::Vec3::unit_y(),
                                                     0.5 * std::sin(0.6 * t));
    s.root.pose.orientation = q;
    s.body.head = {s.root.pose.position + q.rotate({0, 0.65, 0}), q};
    s.body.left_hand = {s.root.pose.position + q.rotate({-0.25, 0.35, -0.2}), q};
    s.body.right_hand = {s.root.pose.position + q.rotate({0.25, 0.35, -0.2}), q};
    return s;
}

struct Row {
    const char* mode;
    double jitter_ms;
    double smoothness_mm;  // mean |Δv| per frame, in mm/frame
    double err_cm;
    double latency_ms;
};

struct Wire {
    std::vector<std::uint8_t> bytes;
    bool kf;
};

Row run(bool buffered, double jitter_ms, double seconds = 60.0) {
    sim::Simulator sim{67};
    net::Network net{sim};
    const net::NodeId a = net.add_node("src", net::Region::HongKong);
    const net::NodeId b = net.add_node("dst", net::Region::Boston);
    net::LinkParams link;
    link.latency = sim::Time::ms(50.0);
    link.jitter = sim::Time::ms(jitter_ms);
    link.spike_probability = jitter_ms > 0.0 ? 0.01 : 0.0;
    net.connect(a, b, link);
    net::PacketDemux demux_b{net, b};

    avatar::AvatarCodec codec;
    sync::ReplicationParams params;
    params.tick_rate_hz = 30.0;
    params.error_threshold = 0.01;
    sync::AvatarReplica replica{codec};

    sync::AvatarPublisher pub{sim, codec, params,
                              [&](std::vector<std::uint8_t> bytes, bool kf, sim::Time) {
                                  net.send(a, b, bytes.size(), "avatar",
                                           Wire{std::move(bytes), kf});
                              }};
    demux_b.on_flow("avatar", [&](net::Packet&& p) {
        const auto w = p.payload.take<Wire>();
        replica.ingest(w.bytes, w.kf, sim.now());
    });
    pub.set_provider([&]() -> std::optional<avatar::AvatarState> {
        return truth_at(sim.now().to_seconds());
    });
    pub.start();

    math::RunningStats jerk_mm;
    math::SampleSeries err_cm;
    math::SampleSeries latency_ms;
    bool have_prev = false;
    math::Vec3 prev_pos;
    math::Vec3 prev_vel;
    sim.schedule_every(sim::Time::ms(1000.0 / 90.0), [&] {
        const auto shown = buffered ? replica.display(sim.now()) : replica.latest();
        if (!shown.has_value()) return;
        const math::Vec3 pos = shown->root.pose.position;
        if (have_prev) {
            const math::Vec3 vel = pos - prev_pos;  // per-frame displacement
            jerk_mm.add((vel - prev_vel).norm() * 1000.0);
            prev_vel = vel;
        } else {
            prev_vel = math::Vec3::zero();
        }
        prev_pos = pos;
        have_prev = true;
        err_cm.add(shown->root.pose.position.distance_to(
                       truth_at(shown->captured_at.to_seconds()).root.pose.position) *
                   100.0);
        latency_ms.add((sim.now() - shown->captured_at).to_ms());
    });
    sim.run_until(sim::Time::seconds(seconds));

    return {buffered ? "buffered" : "latest", jitter_ms, jerk_mm.mean(), err_cm.mean(),
            latency_ms.mean()};
}

}  // namespace

int main() {
    bench::Harness harness{"e13"};
    bench::Session& session = harness.session();
    session.set_seed(67);

    std::printf("\n50 ms path, 30 Hz gated avatar stream, 90 Hz display:\n");
    std::printf("%-10s %10s %18s %12s %12s\n", "mode", "jitter", "stutter mm/frame",
                "err (cm)", "latency ms");
    double stutter_latest_hi = 0.0;
    double stutter_buffered_hi = 0.0;
    double latency_latest_hi = 0.0;
    double latency_buffered_hi = 0.0;
    for (const double jitter : {0.0, 3.0, 8.0}) {
        for (const bool buffered : {false, true}) {
            const Row r = run(buffered, jitter);
            const std::string key = std::string{r.mode} + " / jitter " +
                                    std::to_string(jitter);
            session.record(key + " / stutter_mm", r.smoothness_mm);
            session.record(key + " / latency_ms", r.latency_ms);
            std::printf("%-10s %8.1fms %18.2f %12.2f %12.1f\n", r.mode, r.jitter_ms,
                        r.smoothness_mm, r.err_cm, r.latency_ms);
            if (jitter == 8.0 && !buffered) {
                stutter_latest_hi = r.smoothness_mm;
                latency_latest_hi = r.latency_ms;
            }
            if (jitter == 8.0 && buffered) {
                stutter_buffered_hi = r.smoothness_mm;
                latency_buffered_hi = r.latency_ms;
            }
        }
    }

    std::printf("\nexpected shape: buffer cuts stutter by >2x under 8 ms jitter -> %s "
                "(%.2f -> %.2f mm/frame)\n",
                stutter_buffered_hi * 2.0 < stutter_latest_hi ? "PASS" : "FAIL",
                stutter_latest_hi, stutter_buffered_hi);
    std::printf("expected shape: the smoothness costs bounded extra latency (< 60 ms) "
                "-> %s (%+.1f ms)\n",
                latency_buffered_hi - latency_latest_hi < 60.0 ? "PASS" : "FAIL",
                latency_buffered_hi - latency_latest_hi);
    return 0;
}
