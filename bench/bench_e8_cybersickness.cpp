// E8 — cybersickness across individual profiles and system conditions.
// Claims (§3.3): latency / FOV / frame rate / navigation parameters drive
// cybersickness; susceptibility differs per individual (age, gaming
// experience, gender per [44]); the speed protector [43] adapts navigation
// speed to keep sessions comfortable.
//
// We simulate a 45-minute VR lab class with locomotion segments and report
// end-of-class SSQ-like scores. Expected shape: scores rise with speed,
// latency and low fps; vulnerable profiles sit strictly above habituated
// ones; the protector pulls everyone under its budget at modest cost in
// allowed speed.

#include <cstdio>

#include "bench/harness.hpp"
#include "comfort/cybersickness.hpp"

using namespace mvc;
using namespace mvc::comfort;

namespace {

struct Profile {
    const char* label;
    UserProfile user;
};

Profile profiles[] = {
    {"young expert gamer (22y, 20h/wk)", {22.0, Gender::Male, 20.0}},
    {"young casual (24y, 5h/wk)", {24.0, Gender::Female, 5.0}},
    {"mid-career novice (45y, 1h/wk)", {45.0, Gender::Male, 1.0}},
    {"senior novice (67y, 0h/wk)", {67.0, Gender::Female, 0.0}},
};

/// 45-minute class: alternating seated lecture (5 min) and lab locomotion
/// (5 min) segments.
double run_class(const UserProfile& user, double nav_speed, double latency_ms, double fps,
                 double fov_deg, bool protect, double* mean_allowed_speed = nullptr) {
    CybersicknessModel model{user, SicknessParams{}};
    SpeedProtectorParams pp;
    pp.score_budget = 15.0;
    pp.session_minutes = 45.0;
    SpeedProtector protector{model, pp};

    double speed_sum = 0.0;
    int speed_samples = 0;
    for (int sec = 0; sec < 45 * 60; ++sec) {
        const bool lab_segment = (sec / 300) % 2 == 1;
        // Within a lab segment students move in bursts (walk to a station,
        // stop, observe) — 10 s on / 10 s off.
        const bool locomoting = lab_segment && (sec % 20) < 10;
        ExposureConditions cond;
        cond.latency_ms = latency_ms;
        cond.fps = fps;
        cond.fov_deg = fov_deg;
        double v = locomoting ? nav_speed : 0.0;
        if (protect && locomoting) {
            v = protector.allowed_speed(v, cond, sec / 60.0);
        }
        if (locomoting) {
            speed_sum += v;
            ++speed_samples;
        }
        cond.nav_speed_mps = v;
        // Turning is part of locomotion (snap-turning toward stations).
        cond.rotation_rps = locomoting ? 0.15 * v : 0.02;
        model.advance(1.0, cond);
    }
    if (mean_allowed_speed != nullptr && speed_samples > 0) {
        *mean_allowed_speed = speed_sum / speed_samples;
    }
    return model.score();
}

}  // namespace

int main() {
    bench::Harness harness{"e8"};
    bench::Session& session = harness.session();

    std::printf("\n(a) profile x navigation speed (45-min class, 20 ms latency, 72 fps, "
                "100deg FOV):\n");
    std::printf("%-36s %10s %10s %10s\n", "profile", "2 m/s", "3.5 m/s", "5 m/s");
    double prev_profile_score = -1.0;
    bool profiles_ordered = true;
    for (const auto& p : profiles) {
        const double s2 = run_class(p.user, 2.0, 20.0, 72.0, 100.0, false);
        const double s35 = run_class(p.user, 3.5, 20.0, 72.0, 100.0, false);
        const double s5 = run_class(p.user, 5.0, 20.0, 72.0, 100.0, false);
        session.record(std::string{p.label} + " / score@3.5mps", s35);
        std::printf("%-36s %10.1f %10.1f %10.1f\n", p.label, s2, s35, s5);
        if (prev_profile_score >= 0.0 && s35 < prev_profile_score) profiles_ordered = false;
        prev_profile_score = s35;
    }

    std::printf("\n(b) system conditions (mid-career novice, 3.5 m/s):\n");
    struct Cond {
        const char* label;
        double latency, fps, fov;
    };
    const Cond conds[] = {
        {"ideal (20 ms, 90 fps, 100deg)", 20.0, 90.0, 100.0},
        {"high latency (120 ms)", 120.0, 90.0, 100.0},
        {"low frame rate (30 fps)", 20.0, 30.0, 100.0},
        {"fov restricted to 70deg", 20.0, 90.0, 70.0},
        {"everything bad (120 ms, 30 fps, 110deg)", 120.0, 30.0, 110.0},
    };
    const UserProfile novice = profiles[2].user;
    double ideal_score = 0.0;
    double worst_score = 0.0;
    for (const auto& c : conds) {
        const double s = run_class(novice, 3.5, c.latency, c.fps, c.fov, false);
        session.record(std::string{"condition / "} + c.label, s);
        std::printf("  %-42s %8.1f\n", c.label, s);
        if (c.latency == 20.0 && c.fps == 90.0 && c.fov == 100.0) ideal_score = s;
        if (c.latency == 120.0 && c.fps == 30.0) worst_score = s;
    }

    std::printf("\n(c) speed protector (budget 15, everyone requests 5 m/s):\n");
    std::printf("%-36s %12s %12s %14s\n", "profile", "unprotected", "protected",
                "mean speed");
    bool protector_works = true;
    for (const auto& p : profiles) {
        double allowed = 0.0;
        const double raw = run_class(p.user, 5.0, 20.0, 72.0, 100.0, false);
        const double prot = run_class(p.user, 5.0, 20.0, 72.0, 100.0, true, &allowed);
        std::printf("%-36s %12.1f %12.1f %11.2f m/s\n", p.label, raw, prot, allowed);
        if (prot > 15.6) protector_works = false;
    }

    std::printf("\nexpected shape: susceptibility ordered young-expert < ... < "
                "senior-novice -> %s\n",
                profiles_ordered ? "PASS" : "FAIL");
    std::printf("expected shape: degraded system conditions inflate symptoms -> %s "
                "(%.1f vs %.1f)\n",
                worst_score > ideal_score * 1.5 ? "PASS" : "FAIL", worst_score,
                ideal_score);
    std::printf("expected shape: protector keeps every profile within budget -> %s\n",
                protector_works ? "PASS" : "FAIL");
    return 0;
}
