// E1 — Figure 3 pipeline: motion-to-photon latency breakdown across the
// blended classroom, against the paper's "users start to notice latency
// above 100 ms" interactivity budget.
//
// Stages reported:
//   sensor->edge    headset sample over classroom WiFi into the edge server
//   edge->edge      avatar packet transit + remote edge queueing (per pair)
//   display         capture -> jitter-buffered displayable state (end to end)
//   +render         display plus the device frame pipeline (analytic)

#include <cstdio>

#include "bench/harness.hpp"
#include "core/classroom.hpp"
#include "render/split.hpp"

using namespace mvc;

namespace {

void run_case(bench::Session& session, const char* label, std::size_t students_per_room,
              double seconds) {
    core::ClassroomConfig config;
    config.seed = 11;
    core::MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    for (std::size_t i = 0; i < students_per_room; ++i) {
        classroom.add_physical_student(0);
        classroom.add_physical_student(1);
    }
    classroom.add_remote_student(net::Region::Seoul);
    classroom.add_remote_student(net::Region::Boston);
    classroom.add_remote_student(net::Region::London);
    classroom.start();
    classroom.run_for(sim::Time::seconds(seconds));

    const auto& m = classroom.network().metrics();
    std::printf("\n--- %s (%zu students/room, %d remote, %.0f s simulated) ---\n", label,
                students_per_room, 3, seconds);
    const auto row = [&](const char* name, const math::SampleSeries& s) {
        bench::latency_row(name, s);
        session.record(std::string{label} + " / " + name, s);
    };
    row("sensor->edge (cwb wifi+wire)", m.series("edge.cwb.sensor_ingest_ms"));
    row("sensor->edge (gz wifi+wire)", m.series("edge.gz.sensor_ingest_ms"));
    row("avatar wan transit (all flows)", m.series("net.latency_ms.avatar"));
    row("edge ingest+queue (cwb)", m.series("edge.cwb.ingest_ms"));
    row("edge ingest+queue (gz)", m.series("edge.gz.ingest_ms"));
    row("capture->display, cross-campus", m.series("mr.cross_campus_ms"));
    row("capture->display, remote-origin", m.series("mr.remote_origin_ms"));
    row("capture->display, VR clients", m.series("vr.e2e_ms"));

    // Add the analytic render stage for a standalone MR headset drawing the
    // whole room.
    render::Scene scene;
    scene.add_avatars(avatar::LodLevel::Medium,
                      static_cast<std::uint32_t>(2 * students_per_room + 4));
    const render::FrameStats fs =
        render::simulate_frame(render::standalone_hmd_profile(), scene);
    const double display_p95 = m.series("mr.cross_campus_ms").p95();
    std::printf("%-36s %8.2f ms (frame %.2f ms @ %.0f fps)\n", "+render (standalone HMD)",
                fs.motion_to_photon_ms, fs.frame_time_ms, fs.achieved_fps);
    const double motion_to_photon_p95 = display_p95 + fs.motion_to_photon_ms;
    session.record(std::string{label} + " / motion_to_photon_p95_ms",
                   motion_to_photon_p95);
    std::printf("%-36s %8.2f ms  -> budget(100ms): %s\n",
                "cross-campus motion-to-photon p95", motion_to_photon_p95,
                motion_to_photon_p95 < 100.0 ? "PASS" : "FAIL");
}

}  // namespace

int main() {
    bench::Harness harness{"e1"};
    bench::Session& session = harness.session();
    session.set_seed(11);
    run_case(session, "small class", 6, 30.0);
    run_case(session, "full classroom", 14, 30.0);
    return 0;
}
