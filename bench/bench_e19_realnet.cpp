// E19 — real transport behind the net seam: the same model code that runs
// inside the discrete-event Network runs over actual UDP sockets on
// loopback, and the run is held to the simulator's determinism contract.
//
//  - section A: loopback wire-rate sweep — datagrams/sec and payload MB/s
//    through encode_frame -> sendto -> poll -> decode_frame across payload
//    sizes, with the delivery ratio as a sanity floor (loopback should not
//    drop under paced bursts);
//  - section B: an unmodified classroom slice — RelayServer + VrClients,
//    the exact classes the simulation benches drive — joined over a
//    RealUdpBackend, publishing avatars through real sockets with interest
//    management and fan-out intact;
//  - section C: the correctness bridge — section B's run is recorded at the
//    ingress tap (Recorder + AvatarMirror with per-epoch state hashes) and
//    then re-driven through a fresh Simulator by replay_in_sim(); the
//    record->rerun hash streams must be bit-exact.
//
// Exit code gates the CI realnet stage (tools/ci.sh --realnet).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "cloud/relay.hpp"
#include "cloud/vr_client.hpp"
#include "cloud/vr_layout.hpp"
#include "core/wire_codecs.hpp"
#include "net/channel.hpp"
#include "net/real_udp.hpp"
#include "replay/recorder.hpp"
#include "replay/rerun.hpp"
#include "replay/trace.hpp"

using namespace mvc;

namespace {

constexpr std::uint64_t kSeed = 19;

double now_seconds() {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

struct SweepPoint {
    std::size_t payload_bytes{0};
    double dgrams_per_sec{0.0};
    double payload_mb_per_sec{0.0};
    double delivery_ratio{0.0};
};

// One wire-rate measurement: blast `total` datagrams of `payload_bytes`
// through a fresh backend in paced bursts (poll between bursts so the
// kernel's socket buffers never overflow), then report the sustained rate.
SweepPoint sweep_size(std::size_t payload_bytes, std::size_t total) {
    net::RealUdpBackend net{net::RealUdpBackend::Options{.seed = kSeed}};
    const net::NodeId a = net.add_node("a", net::Region::HongKong);
    const net::NodeId b = net.add_node("b", net::Region::HongKong);
    std::uint64_t delivered = 0;
    net.set_handler(b, [&](net::Packet&&) { ++delivered; });
    net::Channel tx = net.open_channel({.src = a, .dst = b, .flow = "bulk"});
    const std::string body(payload_bytes, 'x');

    // The kernel's receive buffer is the only queue on this path; cap the
    // bytes in flight well under its default so the sweep measures the wire
    // rate, not the overflow drop rate.
    const std::size_t window = std::max<std::size_t>(
        1, std::min<std::size_t>(64, (96 * 1024) / payload_bytes));
    const double t0 = now_seconds();
    std::size_t sent = 0;
    std::size_t lost = 0;  // gap conceded after a drain stall (dropped dgrams)
    while (sent < total) {
        tx.send(payload_bytes, net::Payload{body});
        ++sent;
        if (sent - delivered - lost >= window) {
            net.poll_once(sim::Time::zero());
            for (int spin = 0; spin < 50 && sent - delivered - lost >= window; ++spin)
                net.poll_once(sim::Time::ms(1));
            if (sent - delivered - lost >= window) lost = sent - delivered;
        }
    }
    // Grace drain: whatever is still queued in the kernel.
    for (int spin = 0; spin < 200 && delivered + lost < sent; ++spin)
        net.poll_once(sim::Time::ms(1));
    const double wall = now_seconds() - t0;

    SweepPoint p;
    p.payload_bytes = payload_bytes;
    p.dgrams_per_sec = static_cast<double>(delivered) / wall;
    p.payload_mb_per_sec =
        static_cast<double>(delivered * payload_bytes) / wall / (1024.0 * 1024.0);
    p.delivery_ratio = static_cast<double>(delivered) / static_cast<double>(sent);
    return p;
}

}  // namespace

int main() {
    bench::Harness harness{"e19"};
    bench::Session& session = harness.session();
    session.set_seed(kSeed);
    core::register_wire_codecs();

    const bool quick = std::getenv("E19_QUICK") != nullptr;
    const std::size_t sweep_dgrams = quick ? 4'000 : 40'000;
    const double classroom_wall_s = quick ? 1.5 : 4.0;
    const std::size_t clients_n = quick ? 6 : 12;

    // ------------------------------------------------- A: wire-rate sweep
    std::printf("\nA. loopback wire rate vs payload size (%zu datagrams each)\n",
                sweep_dgrams);
    bool sweep_ok = true;
    for (const std::size_t size : {std::size_t{64}, std::size_t{512},
                                   std::size_t{4096}, std::size_t{16384}}) {
        const SweepPoint p = sweep_size(size, sweep_dgrams);
        std::printf("  %6zu B: %9.0f dgram/s  %8.1f MiB/s  delivery %.4f\n",
                    p.payload_bytes, p.dgrams_per_sec, p.payload_mb_per_sec,
                    p.delivery_ratio);
        const std::string prefix = "A sweep " + std::to_string(size) + "B / ";
        session.record(prefix + "dgrams_per_sec", p.dgrams_per_sec);
        session.record(prefix + "payload_mb_per_sec", p.payload_mb_per_sec);
        session.record(prefix + "delivery_ratio", p.delivery_ratio);
        sweep_ok = sweep_ok && p.delivery_ratio > 0.99;
    }

    // ------------------------- B: classroom model over real UDP + C: record
    std::printf("\nB. RelayServer + %zu VrClients over UDP loopback (%.1f s wall)\n",
                clients_n, classroom_wall_s);
    net::RealUdpBackend net{net::RealUdpBackend::Options{.seed = kSeed}};
    const net::NodeId relay_node = net.add_node("relay", net::Region::HongKong);
    cloud::RelayServer relay{net, relay_node, cloud::RelayConfig{.name = "relay"}};

    replay::MemorySink sink;
    replay::Recorder rec{sink, kSeed, "bench-e19 realnet loopback", 0};
    rec.attach(net);
    replay::AvatarMirror mirror;  // install after the recorder: both tap
    mirror.install(net);

    cloud::VrLayout layout;
    std::vector<std::unique_ptr<cloud::VrClient>> clients;
    for (std::size_t i = 0; i < clients_n; ++i) {
        const ParticipantId who{static_cast<std::uint32_t>(i + 1)};
        const net::NodeId node =
            net.add_node("c" + std::to_string(i), net::Region::HongKong);
        cloud::VrClientConfig vc;
        vc.name = "c" + std::to_string(i);
        vc.room = ClassroomId{1};
        auto client = std::make_unique<cloud::VrClient>(net, node, who, vc);
        const math::Pose seat = layout.seat_pose(i);
        relay.upsert_entity(who, seat.position);
        relay.attach_client(node, who, seat.position);
        client->join(relay_node, seat);
        clients.push_back(std::move(client));
    }

    // Epoch hasher: every 100 ms of wall time, drain staged wire records
    // (file order must match arrival order) and snapshot the mirror.
    const std::uint32_t subject = rec.subject("mirror");
    std::uint64_t epoch = 0;
    net.wall_clock().schedule_every(sim::Time::ms(100), [&] {
        rec.drain_all();
        rec.record_hash(epoch++, subject, mirror.state_hash(), net.clock().now());
    });

    net.run_for(sim::Time::seconds(classroom_wall_s));
    rec.drain_all();
    rec.record_hash(epoch++, subject, mirror.state_hash(), net.clock().now());
    rec.finish();

    std::uint64_t client_rx = 0;
    std::uint64_t client_tx = 0;
    for (const auto& c : clients) {
        client_rx += c->updates_received();
        client_tx += c->updates_sent();
    }
    std::printf("  published %llu, fanned out %llu, relay in/out %llu/%llu\n",
                static_cast<unsigned long long>(client_tx),
                static_cast<unsigned long long>(client_rx),
                static_cast<unsigned long long>(relay.messages_in()),
                static_cast<unsigned long long>(relay.messages_out()));
    std::printf("  datagrams sent %llu received %llu, decode errors %llu\n",
                static_cast<unsigned long long>(net.datagrams_sent()),
                static_cast<unsigned long long>(net.datagrams_received()),
                static_cast<unsigned long long>(net.decode_errors()));
    session.record("B clients / updates_sent",
                   static_cast<double>(client_tx));
    session.record("B clients / updates_received",
                   static_cast<double>(client_rx));
    session.record("B relay / messages_in", static_cast<double>(relay.messages_in()));
    session.record("B relay / messages_out", static_cast<double>(relay.messages_out()));
    session.record("B wire / datagrams_sent",
                   static_cast<double>(net.datagrams_sent()));
    session.record("B wire / decode_errors", static_cast<double>(net.decode_errors()));

    std::printf("\nC. record on the real wire -> replay in the simulator\n");
    bool rerun_ok = false;
    replay::RerunResult rerun;
    if (rec.error().empty()) {
        const replay::Trace recorded = replay::Trace::parse(sink.take());
        rerun = replay::replay_in_sim(recorded);
        rerun_ok = !rerun.divergence.diverged && rerun.hash_records > 0 &&
                   rerun.avatar_updates > 0;
        std::printf("  %llu wire records, %llu avatar updates, %llu hashes: "
                    "diverged=%s (%llu compared)\n",
                    static_cast<unsigned long long>(rerun.wire_records),
                    static_cast<unsigned long long>(rerun.avatar_updates),
                    static_cast<unsigned long long>(rerun.hash_records),
                    rerun.divergence.diverged ? "YES" : "no",
                    static_cast<unsigned long long>(rerun.divergence.compared));
        if (rerun.divergence.diverged)
            std::printf("    %s\n", rerun.divergence.detail.c_str());
    } else {
        std::printf("  recording failed: %s\n", rec.error().c_str());
    }
    session.record("C rerun / hashes_compared",
                   static_cast<double>(rerun.divergence.compared));
    session.record("C rerun / avatar_updates",
                   static_cast<double>(rerun.avatar_updates));

    // ------------------------------------------------------------------ gates
    const bool traffic_ok = client_rx > 0 && net.decode_errors() == 0;
    session.count("gate / sweep_delivery_ok", sweep_ok ? 1 : 0);
    session.count("gate / classroom_traffic_ok", traffic_ok ? 1 : 0);
    session.count("gate / rerun_divergence_free", rerun_ok ? 1 : 0);

    std::printf("\nexpected shape: loopback delivery ratio > 0.99 at every size "
                "-> %s\n",
                sweep_ok ? "PASS" : "FAIL");
    std::printf("expected shape: classroom fan-out flows over real sockets with "
                "zero decode errors -> %s\n",
                traffic_ok ? "PASS" : "FAIL");
    std::printf("expected shape: real-wire trace replays bit-exact in the sim "
                "-> %s\n",
                rerun_ok ? "PASS" : "FAIL");
    return sweep_ok && traffic_ok && rerun_ok ? 0 : 1;
}
