// Two-process loopback demo of the real-transport backend: the same
// RelayServer and VrClient classes every simulation example drives, now in
// separate OS processes talking UDP.
//
//   terminal 1:  ./realnet_demo --role edge             # relay + instructor
//   terminal 2:  ./realnet_demo --role client           # remote student
//
// Both processes build the SAME node table in the SAME order — NodeIds are
// positional on the wire — declaring their own nodes with add_node (binds a
// socket at base_port + id - 1) and the other side's with add_peer (address
// book only):
//
//   id 1  relay       hosted by --role edge
//   id 2  instructor  hosted by --role edge
//   id 3  student     hosted by --role client
//
// The student publishes avatar updates to the relay, which fans them out to
// the instructor, and vice versa; after --seconds of wall time each side
// prints what crossed the wire. Start the edge first (the client sends
// straight away; anything arriving before the edge binds is just loss, which
// the avatar stream absorbs by design).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cloud/relay.hpp"
#include "cloud/vr_client.hpp"
#include "cloud/vr_layout.hpp"
#include "core/wire_codecs.hpp"
#include "net/real_udp.hpp"

using namespace mvc;

namespace {

struct Args {
    std::string role;
    std::uint16_t base_port{47600};
    double seconds{5.0};
};

Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--role" && has_next) {
            a.role = argv[++i];
        } else if (arg == "--port" && has_next) {
            a.base_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
        } else if (arg == "--seconds" && has_next) {
            a.seconds = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: realnet_demo --role edge|client "
                         "[--port N] [--seconds S]\n");
            std::exit(2);
        }
    }
    if (a.role != "edge" && a.role != "client") {
        std::fprintf(stderr, "realnet_demo: --role must be 'edge' or 'client'\n");
        std::exit(2);
    }
    return a;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args = parse(argc, argv);
    core::register_wire_codecs();

    net::RealUdpBackend::Options opt;
    opt.base_port = args.base_port;
    net::RealUdpBackend net{opt};
    const bool is_edge = args.role == "edge";
    const std::string host = "127.0.0.1";

    // The shared node table. Order matters; see the header comment.
    const auto declare = [&](const char* name, bool local,
                             std::uint16_t port) -> net::NodeId {
        if (local) return net.add_node(name, net::Region::HongKong);
        return net.add_peer(name, net::Region::HongKong, host, port);
    };
    const net::NodeId relay_node = declare("relay", is_edge, args.base_port);
    const net::NodeId instructor_node =
        declare("instructor", is_edge, args.base_port + 1);
    const net::NodeId student_node =
        declare("student", !is_edge, args.base_port + 2);

    const ParticipantId instructor_id{1};
    const ParticipantId student_id{2};
    cloud::VrLayout layout;
    const math::Pose instructor_seat = layout.seat_pose(0);
    const math::Pose student_seat = layout.seat_pose(1);

    std::printf("[%s] nodes relay=%u instructor=%u student=%u, ports %u..%u\n",
                args.role.c_str(), relay_node, instructor_node, student_node,
                args.base_port, static_cast<unsigned>(args.base_port + 2));

    if (is_edge) {
        cloud::RelayServer relay{net, relay_node, cloud::RelayConfig{.name = "relay"}};
        relay.upsert_entity(instructor_id, instructor_seat.position);
        relay.upsert_entity(student_id, student_seat.position);
        relay.attach_client(instructor_node, instructor_id, instructor_seat.position);
        relay.attach_client(student_node, student_id, student_seat.position);

        cloud::VrClientConfig vc;
        vc.name = "instructor";
        vc.room = ClassroomId{1};
        cloud::VrClient instructor{net, instructor_node, instructor_id, vc};
        instructor.join(relay_node, instructor_seat);

        net.run_for(sim::Time::seconds(args.seconds));

        std::printf("[edge] relay in/out %llu/%llu; instructor sent %llu, "
                    "received %llu (student visible: %s)\n",
                    static_cast<unsigned long long>(relay.messages_in()),
                    static_cast<unsigned long long>(relay.messages_out()),
                    static_cast<unsigned long long>(instructor.updates_sent()),
                    static_cast<unsigned long long>(instructor.updates_received()),
                    instructor.visible_peers() > 0 ? "yes" : "NO");
        std::printf("[edge] datagrams sent %llu received %llu, decode errors %llu\n",
                    static_cast<unsigned long long>(net.datagrams_sent()),
                    static_cast<unsigned long long>(net.datagrams_received()),
                    static_cast<unsigned long long>(net.decode_errors()));
        return instructor.updates_received() > 0 ? 0 : 1;
    }

    cloud::VrClientConfig vc;
    vc.name = "student";
    vc.room = ClassroomId{1};
    cloud::VrClient student{net, student_node, student_id, vc};
    student.join(relay_node, student_seat);

    net.run_for(sim::Time::seconds(args.seconds));

    std::printf("[client] student sent %llu, received %llu "
                "(instructor visible: %s)\n",
                static_cast<unsigned long long>(student.updates_sent()),
                static_cast<unsigned long long>(student.updates_received()),
                student.visible_peers() > 0 ? "yes" : "NO");
    std::printf("[client] datagrams sent %llu received %llu, decode errors %llu\n",
                static_cast<unsigned long long>(net.datagrams_sent()),
                static_cast<unsigned long long>(net.datagrams_received()),
                static_cast<unsigned long long>(net.decode_errors()));
    return student.updates_received() > 0 ? 0 : 1;
}
