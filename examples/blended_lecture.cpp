// blended_lecture — the paper's full unit case as a 75-minute class:
// two physical MR classrooms (HKUST CWB + GZ) linked through their edge
// servers, remote students attending the cloud VR classroom from the
// regions the paper names (KAIST, MIT, Cambridge), a guest speaker, and a
// realistic activity schedule (lecture -> Q&A -> mixed-campus breakout ->
// learner presentations).
//
// Prints a per-phase engagement/latency digest and the end-of-class report.

#include <cstdio>

#include "core/classroom.hpp"

using namespace mvc;

int main() {
    core::ClassroomConfig config;
    config.seed = 2022;
    config.course = "COMP4461: Human-Computer Interaction (blended)";
    // Size each room for locals + every remote avatar (the other campus
    // plus the VR attendees all take physical seats here).
    config.rooms = {core::cwb_room_config(), core::gz_room_config()};
    config.rooms[0].seat_rows = 7;
    config.rooms[0].seat_cols = 8;
    config.rooms[1].seat_rows = 7;
    config.rooms[1].seat_cols = 8;

    core::MetaverseClassroom classroom{config};

    // Roster. CWB hosts the instructor and 18 students; GZ hosts 14; ten
    // remote students join in VR; a guest speaker dials in from Seoul.
    classroom.add_instructor(0);
    for (int i = 0; i < 18; ++i) classroom.add_physical_student(0);
    for (int i = 0; i < 14; ++i) classroom.add_physical_student(1);
    const net::Region remote_regions[] = {
        net::Region::Seoul, net::Region::Seoul,  net::Region::Boston,
        net::Region::Boston, net::Region::London, net::Region::London,
        net::Region::Tokyo, net::Region::Singapore, net::Region::Sydney,
        net::Region::Frankfurt};
    for (const net::Region r : remote_regions) classroom.add_remote_student(r);

    // The CWB room teaches: its camera, slides and audio stream to GZ.
    classroom.enable_lecture_media(0);

    // 75-minute plan.
    auto& session = classroom.class_session();
    session.schedule().append(session::ActivityKind::Lecture, sim::Time::seconds(25 * 60));
    session.schedule().append(session::ActivityKind::Qa, sim::Time::seconds(10 * 60));
    session.schedule().append(session::ActivityKind::GamifiedBreakout,
                              sim::Time::seconds(25 * 60), /*team_size=*/5);
    session.schedule().append(session::ActivityKind::LearnerPresentation,
                              sim::Time::seconds(15 * 60));

    // Mixed-campus teams for the breakout: physical and remote students
    // dealt round-robin so every team spans campuses.
    std::vector<ParticipantId> students = session.ids_with_role(session::Role::Student);
    const auto teams = session::ActivitySchedule::form_teams(students, 5);
    std::printf("breakout teams (%zu teams, campuses mixed):\n", teams.size());
    for (std::size_t t = 0; t < teams.size(); ++t) {
        std::printf("  team %zu:", t + 1);
        for (const ParticipantId p : teams[t]) {
            const auto* participant = session.find(p);
            std::printf(" %s", participant ? participant->name.c_str() : "?");
        }
        std::printf("\n");
    }

    classroom.start();

    // Run phase by phase; contribute content during the breakout.
    const char* phases[] = {"lecture", "qa", "breakout", "presentations"};
    const double phase_minutes[] = {25, 10, 25, 15};
    sim::Rng rng = classroom.simulator().rng_stream("lecture-script");
    for (int phase = 0; phase < 4; ++phase) {
        // Only simulate a representative slice of each phase (2 min) to keep
        // the example fast; the schedule still advances by the full phase.
        classroom.run_for(sim::Time::seconds(120));

        if (phase == 2) {
            // Breakout: teams share annotations and a 3D artefact each.
            for (std::size_t t = 0; t < teams.size(); ++t) {
                session::ContentItem item;
                item.creator = teams[t][0];
                item.kind = t % 3 == 0 ? session::ContentKind::Model3d
                                       : session::ContentKind::Annotation;
                item.scope = session::AudienceScope::Team;
                item.title = "team-" + std::to_string(t + 1) + "-artifact";
                item.size_bytes = static_cast<std::size_t>(rng.uniform(10e3, 200e3));
                item.created_at = classroom.simulator().now();
                if (const auto id = session.contribute(item)) {
                    session.record_event(classroom.simulator().now(), teams[t][0],
                                         session::InteractionKind::ContentShare);
                }
            }
        }
        const core::ClassReport r = classroom.report();
        std::printf("\n[%s] cross-campus p95=%.1f ms, VR p95=%.1f ms, "
                    "hand-raises so far=%zu\n",
                    phases[phase], r.mr_cross_campus_ms.p95(),
                    r.vr_display_latency_ms.p95(),
                    session.event_count(session::InteractionKind::HandRaise));
        // Skip ahead to the end of the phase.
        const double skip = (phase_minutes[phase] - 2.0) * 60.0;
        classroom.run_for(sim::Time::seconds(skip > 0 ? skip : 0));
    }

    classroom.stop();

    std::printf("\n=== end of class ===\n%s", classroom.report().summary().c_str());
    std::printf("content items admitted: %zu (screened out: %llu)\n",
                session.ledger().size(),
                static_cast<unsigned long long>(session.privacy().blocked()));
    const auto board = session.ledger().leaderboard();
    if (!board.empty()) {
        std::printf("top contributor: participant %u with %.1f credits\n",
                    board.front().first.value(), board.front().second);
    }
    return 0;
}
