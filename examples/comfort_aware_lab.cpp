// comfort_aware_lab — a VR lab session ("access to limited/restricted
// equipment", §3.1: e.g. "testing Uranium in the Metaverse") where students
// physically navigate a virtual lab. Demonstrates the comfort stack: fuzzy
// per-student susceptibility, sickness accumulation under each student's
// actual exposure, and the speed protector adapting navigation speed per
// individual so nobody leaves class sick.

#include <cstdio>
#include <vector>

#include "comfort/cybersickness.hpp"
#include "sim/rng.hpp"

using namespace mvc;
using namespace mvc::comfort;

namespace {

struct Student {
    const char* name;
    UserProfile profile;
    CybersicknessModel model;
    SpeedProtector protector;
    double distance_walked{0.0};

    Student(const char* n, UserProfile p, const SpeedProtectorParams& pp)
        : name(n), profile(p), model(p, SicknessParams{}), protector(model, pp) {}
};

}  // namespace

int main() {
    std::printf("virtual radiochemistry lab, 60-minute session\n");
    std::printf("stations are 8 m apart; students want to move at 4 m/s\n\n");

    SpeedProtectorParams pp;
    pp.score_budget = 10.0;   // leave class comfortable
    pp.session_minutes = 60.0;
    pp.max_speed_mps = 4.0;

    std::vector<Student> cohort;
    cohort.emplace_back("amara (21, plays VR daily)",
                        UserProfile{21.0, Gender::Female, 18.0}, pp);
    cohort.emplace_back("ben (23, occasional gamer)",
                        UserProfile{23.0, Gender::Male, 4.0}, pp);
    cohort.emplace_back("prof. chen (52, first VR use)",
                        UserProfile{52.0, Gender::Female, 0.0}, pp);
    cohort.emplace_back("dimitri (68, auditor)", UserProfile{68.0, Gender::Male, 0.5}, pp);

    const SusceptibilityModel susceptibility;
    std::printf("%-32s %s\n", "student", "fuzzy susceptibility");
    for (const auto& s : cohort) {
        std::printf("%-32s %.2f\n", s.name, susceptibility.susceptibility(s.profile));
    }

    // 60 minutes, 1 Hz steps. Students alternate: walk to a station
    // (protected speed), work there for ~2 minutes, move on.
    sim::Rng rng{99};
    for (int sec = 0; sec < 60 * 60; ++sec) {
        for (auto& s : cohort) {
            const bool moving = (sec % 150) < 20;  // ~20 s of travel per station
            ExposureConditions cond;
            cond.latency_ms = 25.0;
            cond.fps = 72.0;
            cond.fov_deg = 100.0;
            double v = 0.0;
            if (moving) {
                v = s.protector.allowed_speed(4.0, cond, sec / 60.0);
                s.distance_walked += v;
            }
            cond.nav_speed_mps = v;
            cond.rotation_rps = moving ? 0.1 * v : 0.02;
            s.model.advance(1.0, cond);
        }
    }

    std::printf("\n%-32s %10s %12s %14s %12s\n", "student", "final SSQ", "interventions",
                "distance", "comfortable?");
    for (const auto& s : cohort) {
        std::printf("%-32s %10.1f %12llu %11.0f m %12s\n", s.name, s.model.score(),
                    static_cast<unsigned long long>(s.protector.interventions()),
                    s.distance_walked, s.model.concerning() ? "NO" : "yes");
    }
    std::printf("\nthe protector slows only those who need it: habituated students\n"
                "keep full speed while first-time users trade speed for comfort.\n");
    return 0;
}
