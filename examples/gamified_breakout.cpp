// gamified_breakout — "digital breakouts for teams of students" (§3.1):
// a puzzle hunt where mixed campus/remote teams race to unlock a virtual
// escape room by contributing solution artefacts. Demonstrates the session
// layer end to end: team formation, interaction events, the content ledger
// with credits, and privacy screening of player-generated overlays.

#include <cstdio>
#include <map>
#include <vector>

#include "session/session.hpp"
#include "sim/rng.hpp"

using namespace mvc;
using namespace mvc::session;

int main() {
    ClassSession session{"ENGG1010: Escape the Metaverse Lab"};

    // 12 students: 5 CWB, 4 GZ, 3 remote.
    std::vector<ParticipantId> students;
    for (int i = 0; i < 12; ++i) {
        Participant p;
        p.name = "s" + std::to_string(i + 1);
        if (i < 5) {
            p.attendance = PhysicalAttendance{ClassroomId{1}, static_cast<std::size_t>(i)};
        } else if (i < 9) {
            p.attendance = PhysicalAttendance{ClassroomId{2}, static_cast<std::size_t>(i - 5)};
        } else {
            p.attendance = RemoteAttendance{net::Region::Seoul};
        }
        students.push_back(session.enroll(std::move(p)));
    }

    const ActivityId breakout =
        session.schedule().append(ActivityKind::GamifiedBreakout,
                                  sim::Time::seconds(1200), /*team_size=*/4);
    const auto teams = ActivitySchedule::form_teams(students, 4);
    std::printf("%zu teams of 4 (campuses mixed by round-robin deal)\n\n", teams.size());

    // The hunt: each puzzle solved = one LabResult contribution + events.
    sim::Rng rng{7};
    std::map<std::size_t, int> puzzles_solved;
    const double solve_rate_per_min = 0.8;
    for (int sec = 0; sec < 1200; ++sec) {
        const sim::Time now = sim::Time::seconds(sec);
        for (std::size_t t = 0; t < teams.size(); ++t) {
            if (!rng.chance(solve_rate_per_min / 60.0)) continue;
            const ParticipantId solver = teams[t][rng.index(teams[t].size())];
            session.record_event(now, solver, InteractionKind::LabAction);

            ContentItem item;
            item.creator = solver;
            item.kind = ContentKind::LabResult;
            item.scope = AudienceScope::Team;
            item.title = "puzzle-key";
            item.size_bytes = 4096;
            item.created_at = now;
            if (session.contribute(item).has_value()) {
                ++puzzles_solved[t];
                session.record_event(now, solver, InteractionKind::ContentShare);
            }
        }
        // Occasional mischievous overlay pinned on a classmate: the privacy
        // filter catches the non-consenting ones.
        if (rng.chance(0.01)) {
            ContentItem prank;
            prank.creator = students[rng.index(students.size())];
            prank.kind = ContentKind::Annotation;
            prank.anchored_to_person = true;
            prank.anchor_person = students[rng.index(students.size())];
            prank.anchor_consent = rng.chance(0.3);
            prank.title = "sticker";
            prank.created_at = now;
            (void)session.contribute(prank);
        }
    }

    // Scoreboard.
    std::printf("%-8s %14s\n", "team", "puzzles solved");
    std::size_t winner = 0;
    for (std::size_t t = 0; t < teams.size(); ++t) {
        std::printf("team %-3zu %14d\n", t + 1, puzzles_solved[t]);
        if (puzzles_solved[t] > puzzles_solved[winner]) winner = t;
    }
    std::printf("\nwinner: team %zu 🎉 (escape unlocked)\n", winner + 1);

    std::printf("\ncredit leaderboard (the paper's incentive layer):\n");
    const auto board = session.ledger().leaderboard();
    for (std::size_t i = 0; i < std::min<std::size_t>(5, board.size()); ++i) {
        const auto* p = session.find(board[i].first);
        std::printf("  %-6s %6.1f credits\n", p ? p->name.c_str() : "?", board[i].second);
    }

    std::printf("\nengagement: %.0f%% of the class interacted during the breakout\n",
                session.participation_ratio() * 100.0);
    std::printf("privacy filter: %llu of %llu overlays screened out\n",
                static_cast<unsigned long long>(session.privacy().blocked()),
                static_cast<unsigned long long>(session.privacy().evaluated()));
    const std::size_t breakout_events = static_cast<std::size_t>(std::count_if(
        session.events().begin(), session.events().end(),
        [&](const InteractionEvent& e) { return e.during == breakout; }));
    std::printf("events tagged to the breakout activity: %zu\n", breakout_events);
    return 0;
}
