// recorded_lecture — record a short blended lecture, then play it back for
// an absent student. A CWB<->GZ class with two remote VR students runs for
// two simulated minutes with the session recorder tapping every network
// egress; recovery checkpoints double as the trace's seek keyframes. The
// recorded trace is then (1) verified, (2) re-run through the divergence
// checker to prove the capture is a faithful transcript of a deterministic
// run, and (3) replayed offline at 4x with a mid-session seek — no
// simulator, no network, just the trace bytes.
//
// The same workflow is scriptable from the command line via the
// metaclass_trace tool (record / verify / check / replay / dump).

#include <cstdio>

#include "core/classroom.hpp"
#include "replay/divergence.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"

using namespace mvc;

namespace {

replay::MemorySink run_and_record(double seconds) {
    core::ClassroomConfig config;
    config.seed = 2024;
    config.course = "COMP4971: Metaverse Systems (recorded)";
    config.recovery.enabled = true;  // checkpoints become seek keyframes
    config.recovery.checkpoint_interval = sim::Time::seconds(5.0);

    core::MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    for (int i = 0; i < 5; ++i) classroom.add_physical_student(0);
    for (int i = 0; i < 4; ++i) classroom.add_physical_student(1);
    classroom.add_remote_student(net::Region::Seoul);
    classroom.add_remote_student(net::Region::London);

    replay::MemorySink sink;
    replay::Recorder recorder{sink, config.seed, config.course, /*started_ns=*/0};
    classroom.enable_recording(recorder, sim::Time::ms(100));

    classroom.start();
    classroom.run_for(sim::Time::seconds(seconds));
    classroom.stop();
    recorder.finish();

    std::printf("recorded %.0f s of class: %llu wire records, %llu avatar updates,\n"
                "  %llu state hashes, %llu checkpoints -> %llu bytes in %llu chunks\n",
                seconds,
                static_cast<unsigned long long>(recorder.wire_records()),
                static_cast<unsigned long long>(recorder.avatar_updates()),
                static_cast<unsigned long long>(recorder.hashes()),
                static_cast<unsigned long long>(recorder.checkpoints()),
                static_cast<unsigned long long>(recorder.bytes_written()),
                static_cast<unsigned long long>(recorder.chunks_written()));
    return sink;
}

}  // namespace

int main() {
    const double lecture_seconds = 120.0;
    replay::MemorySink sink = run_and_record(lecture_seconds);

    // The trace is self-verifying: every byte sits under a CRC.
    const replay::TraceCheck check = replay::Trace::verify(sink.bytes());
    std::printf("verify: %s (%llu records in %zu chunks)\n",
                check.ok ? "ok" : check.error.c_str(),
                static_cast<unsigned long long>(check.records), check.chunks);

    const replay::Trace trace = replay::Trace::parse(sink.take());

    // Faithfulness: re-record the same seed and diff the per-epoch hashes.
    replay::MemorySink rerun_sink = run_and_record(lecture_seconds);
    const replay::Trace rerun = replay::Trace::parse(rerun_sink.take());
    const replay::Divergence d = replay::diff_state_hashes(trace, rerun);
    if (d.diverged) {
        std::printf("DIVERGED at epoch %llu (%s): %s\n",
                    static_cast<unsigned long long>(d.epoch), d.subject.c_str(),
                    d.detail.c_str());
        return 1;
    }
    std::printf("determinism: %llu state hashes identical across re-runs\n\n",
                static_cast<unsigned long long>(d.compared));

    // Playback for the absent student: skip the first half, watch the rest
    // at 4x. seek() restores the nearest checkpoint at or before the target
    // and fast-forwards the remainder.
    replay::Replayer player{trace};
    const sim::Time target = sim::Time::seconds(lecture_seconds / 2);
    const sim::Time landed = player.seek(target);
    std::printf("seek to %.1f s landed at %.1f s (%llu checkpoints applied)\n",
                target.to_ms() / 1000.0, landed.to_ms() / 1000.0,
                static_cast<unsigned long long>(player.stats().checkpoints_applied));

    player.play_all(/*speed=*/4.0);

    const replay::PlaybackStats& stats = player.stats();
    std::printf("played %.1f -> %.1f s at 4x (%.2f wall-s pacing):\n",
                landed.to_ms() / 1000.0, player.position().to_ms() / 1000.0,
                stats.paced_wall_seconds);
    std::printf("  %llu packets (%llu bytes), %llu avatar updates "
                "(%llu keyframes), %zu participants on stage\n",
                static_cast<unsigned long long>(stats.wire_packets),
                static_cast<unsigned long long>(stats.wire_bytes),
                static_cast<unsigned long long>(stats.avatar_updates),
                static_cast<unsigned long long>(stats.keyframes),
                player.participants().size());
    return 0;
}
