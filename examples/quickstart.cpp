// Quickstart: the paper's unit case in ~40 lines. Two physical MR
// classrooms (HKUST CWB + GZ) and the cloud VR classroom; students and an
// instructor on each campus, a handful of remote attendees; run five
// minutes of class and print the latency/traffic report.

#include <cstdio>

#include "core/classroom.hpp"

int main() {
    using namespace mvc;

    core::ClassroomConfig config;
    config.seed = 7;

    core::MetaverseClassroom classroom{config};

    // Campus CWB: instructor + 8 students.
    classroom.add_instructor(0);
    for (int i = 0; i < 8; ++i) classroom.add_physical_student(0);
    // Campus GZ: 6 students.
    for (int i = 0; i < 6; ++i) classroom.add_physical_student(1);
    // Remote attendees from the regions the paper names (KAIST, MIT,
    // Cambridge) joining the VR classroom.
    classroom.add_remote_student(net::Region::Seoul);
    classroom.add_remote_student(net::Region::Seoul);
    classroom.add_remote_student(net::Region::Boston);
    classroom.add_remote_student(net::Region::London);

    // A 5-minute mini-session: lecture, then a mixed-campus breakout.
    auto& schedule = classroom.class_session().schedule();
    schedule.append(session::ActivityKind::Lecture, sim::Time::seconds(180));
    schedule.append(session::ActivityKind::GamifiedBreakout, sim::Time::seconds(120),
                    /*team_size=*/4);

    classroom.start();
    classroom.run_for(sim::Time::seconds(300));

    const core::ClassReport report = classroom.report();
    std::puts("=== Metaverse classroom quickstart ===");
    std::fputs(report.summary().c_str(), stdout);

    // The paper's headline requirement: interaction latency under 100 ms.
    const double p95 = report.mr_cross_campus_ms.p95();
    std::printf("cross-campus p95 within 100 ms interactivity budget: %s\n",
                p95 > 0.0 && p95 < 100.0 ? "YES" : "NO");
    return 0;
}
