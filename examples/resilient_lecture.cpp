// resilient_lecture — a blended CWB<->GZ lecture that survives a rough WAN.
// Heartbeat liveness, graceful degradation and crash recovery are switched
// on, then a randomized FaultPlan (link flaps, loss bursts, latency spikes,
// edge process crashes) batters the campus-to-campus link, both edge
// uplinks, and the edge processes themselves for the whole class. While the
// direct edge peering is dead, each campus reroutes its avatar streams
// through the cloud relay; under sustained loss the publishers shed send
// rate and LOD instead of stalling the room; a crashed edge restores seats,
// membership, content and avatar replicas from its latest checkpoint and
// resyncs from live peers in one round trip.
//
// Prints the fault schedule, a per-minute resilience digest, and the
// end-of-class report.

#include <cstdio>
#include <utility>
#include <vector>

#include "core/classroom.hpp"
#include "fault/fault_plan.hpp"

using namespace mvc;

int main() {
    core::ClassroomConfig config;
    config.seed = 77;
    config.course = "COMP4971: Metaverse Systems (storm day)";
    config.heartbeat.enabled = true;
    config.heartbeat.interval = sim::Time::ms(100);
    config.heartbeat.timeout = sim::Time::ms(350);
    config.degradation.enter_loss = 0.10;
    config.degradation.exit_loss = 0.03;
    config.recovery.enabled = true;
    config.recovery.checkpoint_interval = sim::Time::seconds(2.0);
    config.admission.enabled = true;

    core::MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    for (int i = 0; i < 8; ++i) classroom.add_physical_student(0);
    for (int i = 0; i < 6; ++i) classroom.add_physical_student(1);
    classroom.add_remote_student(net::Region::Seoul);
    classroom.add_remote_student(net::Region::London);

    auto& net = classroom.network();
    auto& edge_cwb = classroom.edge_server(0);
    auto& edge_gz = classroom.edge_server(1);
    const net::NodeId cloud = classroom.cloud_server().node();

    // A stormy ten minutes: flaps and bursts on the campus peering link and
    // both edge->cloud uplinks, drawn deterministically from seed 77.
    fault::FaultModel model;
    model.link_flaps_per_min = 0.8;
    model.mean_outage = sim::Time::seconds(8.0);
    model.loss_bursts_per_min = 1.5;
    model.mean_burst = sim::Time::seconds(6.0);
    model.burst_loss = 0.30;
    model.latency_spikes_per_min = 1.0;
    model.spike_extra_latency = sim::Time::ms(80);
    model.node_crashes_per_min = 0.25;
    model.mean_downtime = sim::Time::seconds(5.0);
    const std::vector<std::pair<net::NodeId, net::NodeId>> links = {
        {edge_cwb.node(), edge_gz.node()},
        {edge_cwb.node(), cloud},
        {edge_gz.node(), cloud},
    };
    const std::vector<net::NodeId> crashable = {edge_cwb.node(), edge_gz.node()};
    fault::FaultPlan plan{net};
    plan.randomize(model, links, crashable, sim::Time::seconds(30.0),
                   sim::Time::seconds(9.5 * 60.0));
    plan.arm();
    std::printf("fault schedule (%zu events):\n%s\n", plan.events().size(),
                plan.to_string().c_str());

    classroom.start();
    for (int minute = 1; minute <= 10; ++minute) {
        classroom.run_for(sim::Time::seconds(60.0));
        std::printf(
            "minute %2d: peer %-5s degrade L%d/L%d  relayed=%llu  "
            "failovers=%llu/%llu  failbacks=%llu/%llu\n",
            minute, edge_cwb.peer_alive(edge_gz.node()) ? "alive" : "DEAD",
            edge_cwb.degradation_level(), edge_gz.degradation_level(),
            static_cast<unsigned long long>(edge_cwb.relayed_out() +
                                            edge_gz.relayed_out()),
            static_cast<unsigned long long>(edge_cwb.heartbeat()->failovers()),
            static_cast<unsigned long long>(edge_gz.heartbeat()->failovers()),
            static_cast<unsigned long long>(edge_cwb.heartbeat()->failbacks()),
            static_cast<unsigned long long>(edge_gz.heartbeat()->failbacks()));
    }
    classroom.stop();

    std::printf("\nfaults injected: %zu of %zu scheduled\n", plan.injected(),
                plan.events().size());
    std::printf("cloud relayed %llu avatar updates during edge-link outages\n",
                static_cast<unsigned long long>(
                    classroom.cloud_server().relayed_for_failover()));
    for (auto* e : {&edge_cwb, &edge_gz}) {
        std::printf(
            "%s: %llu checkpoint restores, %llu cold starts, last recovery "
            "gap %.0f ms, %llu late-join updates shed\n",
            net.name_of(e->node()).c_str(),
            static_cast<unsigned long long>(e->restores()),
            static_cast<unsigned long long>(e->cold_starts()),
            e->last_recovery_gap_ms(),
            static_cast<unsigned long long>(e->shed_streams()));
    }
    std::printf("checkpoints taken: %llu\n",
                static_cast<unsigned long long>(
                    classroom.checkpoint_store().total_puts()));

    const auto report = classroom.report();
    std::printf("\n%s\n", report.summary().c_str());
    return 0;
}
