// resilient_lecture — a blended CWB<->GZ lecture that survives a rough WAN.
// Heartbeat liveness and graceful degradation are switched on, then a
// randomized FaultPlan (link flaps, loss bursts, latency spikes) batters the
// campus-to-campus link and both edge uplinks for the whole class. While the
// direct edge peering is dead, each campus reroutes its avatar streams
// through the cloud relay; under sustained loss the publishers shed send
// rate and LOD instead of stalling the room.
//
// Prints the fault schedule, a per-minute resilience digest, and the
// end-of-class report.

#include <cstdio>
#include <utility>
#include <vector>

#include "core/classroom.hpp"
#include "fault/fault_plan.hpp"

using namespace mvc;

int main() {
    core::ClassroomConfig config;
    config.seed = 77;
    config.course = "COMP4971: Metaverse Systems (storm day)";
    config.heartbeat.enabled = true;
    config.heartbeat.interval = sim::Time::ms(100);
    config.heartbeat.timeout = sim::Time::ms(350);
    config.degradation.enter_loss = 0.10;
    config.degradation.exit_loss = 0.03;

    core::MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    for (int i = 0; i < 8; ++i) classroom.add_physical_student(0);
    for (int i = 0; i < 6; ++i) classroom.add_physical_student(1);
    classroom.add_remote_student(net::Region::Seoul);
    classroom.add_remote_student(net::Region::London);

    auto& net = classroom.network();
    auto& edge_cwb = classroom.edge_server(0);
    auto& edge_gz = classroom.edge_server(1);
    const net::NodeId cloud = classroom.cloud_server().node();

    // A stormy ten minutes: flaps and bursts on the campus peering link and
    // both edge->cloud uplinks, drawn deterministically from seed 77.
    fault::FaultModel model;
    model.link_flaps_per_min = 0.8;
    model.mean_outage = sim::Time::seconds(8.0);
    model.loss_bursts_per_min = 1.5;
    model.mean_burst = sim::Time::seconds(6.0);
    model.burst_loss = 0.30;
    model.latency_spikes_per_min = 1.0;
    model.spike_extra_latency = sim::Time::ms(80);
    const std::vector<std::pair<net::NodeId, net::NodeId>> links = {
        {edge_cwb.node(), edge_gz.node()},
        {edge_cwb.node(), cloud},
        {edge_gz.node(), cloud},
    };
    fault::FaultPlan plan{net};
    plan.randomize(model, links, {}, sim::Time::seconds(30.0),
                   sim::Time::seconds(9.5 * 60.0));
    plan.arm();
    std::printf("fault schedule (%zu events):\n%s\n", plan.events().size(),
                plan.to_string().c_str());

    classroom.start();
    for (int minute = 1; minute <= 10; ++minute) {
        classroom.run_for(sim::Time::seconds(60.0));
        std::printf(
            "minute %2d: peer %-5s degrade L%d/L%d  relayed=%llu  "
            "failovers=%llu/%llu  failbacks=%llu/%llu\n",
            minute, edge_cwb.peer_alive(edge_gz.node()) ? "alive" : "DEAD",
            edge_cwb.degradation_level(), edge_gz.degradation_level(),
            static_cast<unsigned long long>(edge_cwb.relayed_out() +
                                            edge_gz.relayed_out()),
            static_cast<unsigned long long>(edge_cwb.heartbeat()->failovers()),
            static_cast<unsigned long long>(edge_gz.heartbeat()->failovers()),
            static_cast<unsigned long long>(edge_cwb.heartbeat()->failbacks()),
            static_cast<unsigned long long>(edge_gz.heartbeat()->failbacks()));
    }
    classroom.stop();

    std::printf("\nfaults injected: %zu of %zu scheduled\n", plan.injected(),
                plan.events().size());
    std::printf("cloud relayed %llu avatar updates during edge-link outages\n",
                static_cast<unsigned long long>(
                    classroom.cloud_server().relayed_for_failover()));

    const auto report = classroom.report();
    std::printf("\n%s\n", report.summary().c_str());
    return 0;
}
