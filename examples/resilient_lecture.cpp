// resilient_lecture — a blended CWB<->GZ lecture that survives a rough WAN.
//
// The whole deployment is declared in scenarios/storm_lecture.scenario.json:
// heartbeat liveness, graceful degradation, crash recovery and admission
// control switched on, plus a randomized fault timeline (link flaps, loss
// bursts, latency spikes, edge process crashes) battering the campus peering
// link, the GZ uplink, and the edge processes themselves. While the direct
// edge peering is dead, each campus reroutes its avatar streams through the
// cloud relay; under sustained loss the publishers shed send rate and LOD
// instead of stalling the room; a crashed edge restores seats, membership,
// content and avatar replicas from its latest checkpoint and resyncs from
// live peers in one round trip.
//
// Pass a different `.scenario.json` path as argv[1] to storm a different
// classroom. Prints the fault schedule, a rolling resilience digest, and the
// end-of-class report.

#include <cstdio>
#include <string>

#include "core/classroom.hpp"
#include "fault/fault_plan.hpp"
#include "scenario/runner.hpp"

using namespace mvc;

int main(int argc, char** argv) {
    const std::string path = argc > 1
                                 ? argv[1]
                                 : std::string{METACLASS_SCENARIO_DIR} +
                                       "/storm_lecture.scenario.json";
    scenario::ScenarioSpec spec;
    try {
        spec = scenario::load_spec_file(path);
    } catch (const scenario::SpecError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    const auto world = scenario::build(spec);
    core::MetaverseClassroom& classroom = world->classroom();
    auto& net = classroom.network();
    auto& edge_cwb = classroom.edge_server(0);
    auto& edge_gz = classroom.edge_server(1);

    const fault::FaultPlan& plan = *world->plan();
    std::printf("%s: %s\n", spec.name.c_str(), spec.classroom.course.c_str());
    std::printf("fault schedule (%zu events):\n%s\n", plan.events().size(),
                plan.to_string().c_str());

    // Rolling digest every tenth of the class, printed from inside the run.
    auto& sim = classroom.simulator();
    const sim::Time tick = sim::Time::seconds(spec.duration.to_seconds() / 10.0);
    int slice = 0;
    sim.schedule_every(tick, [&] {
        std::printf(
            "t=%4.0fs: peer %-5s degrade L%d/L%d  relayed=%llu  "
            "failovers=%llu/%llu  failbacks=%llu/%llu\n",
            sim.now().to_seconds(),
            edge_cwb.peer_alive(edge_gz.node()) ? "alive" : "DEAD",
            edge_cwb.degradation_level(), edge_gz.degradation_level(),
            static_cast<unsigned long long>(edge_cwb.relayed_out() +
                                            edge_gz.relayed_out()),
            static_cast<unsigned long long>(edge_cwb.heartbeat()->failovers()),
            static_cast<unsigned long long>(edge_gz.heartbeat()->failovers()),
            static_cast<unsigned long long>(edge_cwb.heartbeat()->failbacks()),
            static_cast<unsigned long long>(edge_gz.heartbeat()->failbacks()));
        ++slice;
    });

    world->run();

    std::printf("\nfaults injected: %zu of %zu scheduled\n", plan.injected(),
                plan.events().size());
    std::printf("cloud relayed %llu avatar updates during edge-link outages\n",
                static_cast<unsigned long long>(
                    classroom.cloud_server().relayed_for_failover()));
    for (auto* e : {&edge_cwb, &edge_gz}) {
        std::printf(
            "%s: %llu checkpoint restores, %llu cold starts, last recovery "
            "gap %.0f ms, %llu late-join updates shed\n",
            net.name_of(e->node()).c_str(),
            static_cast<unsigned long long>(e->restores()),
            static_cast<unsigned long long>(e->cold_starts()),
            e->last_recovery_gap_ms(),
            static_cast<unsigned long long>(e->shed_streams()));
    }
    std::printf("checkpoints taken: %llu\n",
                static_cast<unsigned long long>(
                    classroom.checkpoint_store().total_puts()));

    const auto report = classroom.report();
    std::printf("\n%s\n", report.summary().c_str());
    world->stop();
    return 0;
}
