// global_seminar — "sharing the real-time course with thousands of remote
// users scattered worldwide" (§3.3), scaled-down live: a guest lecture
// broadcast from HKUST CWB to a large remote audience across six regions,
// comparing the single-cloud deployment against the regional-server mesh
// the paper points to, inside one program.
//
// Demonstrates: regional_mesh config, lightweight remote clients, per-region
// latency reporting, and the WanTopology helper that picks relay regions.

#include <array>
#include <cstdio>
#include <map>

#include "avatar/ik.hpp"
#include "core/classroom.hpp"
#include "media/spatial.hpp"

using namespace mvc;

namespace {

constexpr std::array<net::Region, 6> kAudienceRegions = {
    net::Region::Seoul,  net::Region::Boston,    net::Region::London,
    net::Region::Tokyo,  net::Region::Singapore, net::Region::Sydney};

struct Outcome {
    double p50;
    double p95;
    double p99;
};

Outcome run(bool regional_mesh, int audience_per_region) {
    core::ClassroomConfig config;
    config.seed = 31337;
    config.course = "Distinguished Lecture: The Metaverse Classroom";
    config.rooms = {core::cwb_room_config()};  // one physical venue
    config.regional_mesh = regional_mesh;
    config.lightweight_remote_clients = true;

    core::MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    for (int i = 0; i < 10; ++i) classroom.add_physical_student(0);
    // The invited speaker joins from London and presents from the virtual
    // stage (full avatar reconstruction, not a lightweight client). Admitted
    // before the audience so the physical venue still has a seat to project
    // them onto (the room has 30 seats; the VR audience is far larger).
    const ParticipantId speaker =
        classroom.add_guest_speaker(net::Region::London, "keynote-speaker");
    for (const net::Region region : kAudienceRegions) {
        for (int i = 0; i < audience_per_region; ++i) {
            classroom.add_remote_student(region);
        }
    }

    classroom.class_session().schedule().append(session::ActivityKind::Lecture,
                                                sim::Time::seconds(3600));
    classroom.start();
    classroom.run_for(sim::Time::seconds(20));

    if (!regional_mesh) {
        // Rendering-side demo: take the speaker's avatar as displayed in the
        // physical venue, rebuild the full skeleton from the three tracked
        // points, and check where their voice lands for a front-row listener.
        auto& venue = classroom.edge_server(0);
        const auto shown = venue.display_remote(speaker, classroom.simulator().now());
        if (shown.has_value()) {
            const avatar::Skeleton skeleton = avatar::Skeleton::classroom_humanoid();
            const avatar::ReconstructedBody body =
                avatar::reconstruct_body(skeleton, *shown);
            std::printf("\nspeaker avatar in the venue: %zu joints reconstructed, "
                        "right hand at (%.2f, %.2f, %.2f)\n",
                        body.joints.size(),
                        shown->body.right_hand.position.x,
                        shown->body.right_hand.position.y,
                        shown->body.right_hand.position.z);

            const math::Pose listener = venue.seats().seat(0).pose;
            const media::SpatialMixer mixer;
            const std::vector<media::ActiveSpeaker> voices{
                {speaker, shown->root.pose.position, 1.0}};
            const auto mixed = mixer.mix(listener, voices);
            if (!mixed.empty()) {
                std::printf("front-row listener hears the speaker at gain %.2f, "
                            "pan %+.2f (L %.2f / R %.2f)\n",
                            mixed[0].gain, mixed[0].pan, mixed[0].left_gain,
                            mixed[0].right_gain);
            }
        }
    }

    const core::ClassReport report = classroom.report();
    return {report.vr_display_latency_ms.median(), report.vr_display_latency_ms.p95(),
            report.vr_display_latency_ms.p99()};
}

}  // namespace

int main() {
    constexpr int kPerRegion = 15;  // 90 remote attendees total

    std::printf("guest lecture, %d remote attendees across %zu regions\n",
                kPerRegion * static_cast<int>(kAudienceRegions.size()),
                kAudienceRegions.size());

    // Where should relays go? The topology helper answers from the audience
    // distribution.
    net::WanTopology wan;
    std::array<std::size_t, net::kRegionCount> histogram{};
    for (const net::Region r : kAudienceRegions) {
        histogram[static_cast<std::size_t>(r)] = kPerRegion;
    }
    std::printf("best single-server region for this audience: %s\n",
                std::string{net::region_name(wan.best_region_for(histogram))}.c_str());

    const Outcome single = run(false, kPerRegion);
    const Outcome mesh = run(true, kPerRegion);

    std::printf("\n%-22s %8s %8s %8s\n", "deployment", "p50", "p95", "p99");
    std::printf("%-22s %7.1fms %7.1fms %7.1fms\n", "single cloud (HK)", single.p50,
                single.p95, single.p99);
    std::printf("%-22s %7.1fms %7.1fms %7.1fms\n", "regional mesh", mesh.p50, mesh.p95,
                mesh.p99);
    std::printf("\nsame-region pairs now exchange updates through their local relay;\n"
                "cross-region pairs still pay the geographic floor. Attendance can\n"
                "scale by adding relays, not by growing one server (see E3).\n");
    return 0;
}
