// Tests for the record/replay subsystem: trace codec round-trips, writer
// chunking and the checkpoint seek index, corruption detection (truncation
// and single-bit flips anywhere in the file), salvage truncation, recorder
// error stickiness, the divergence checker, checkpoint-indexed seek, and the
// end-to-end determinism contract (record -> rerun hash-identical, sharded
// traces byte-identical for any worker-thread count).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloud/relay.hpp"
#include "cloud/vr_client.hpp"
#include "core/classroom.hpp"
#include "core/sharded_world.hpp"
#include "replay/divergence.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"
#include "replay/trace.hpp"
#include "sim/rng.hpp"

#include "avatar/codec.hpp"
#include "core/wire_codecs.hpp"
#include "net/real_udp.hpp"
#include "replay/rerun.hpp"
#include "sync/wire.hpp"

namespace mvc::replay {
namespace {

// Mirrors the writer's fixed chunk header layout (magic + payload_len +
// records + first_t + flags + crc); used to compute cut boundaries.
constexpr std::size_t kChunkHeaderBytes = 4 + 4 + 4 + 8 + 1 + 4;

std::vector<std::uint8_t> write_records(const std::vector<Record>& records,
                                        std::size_t chunk_bytes = 64 * 1024,
                                        std::uint64_t seed = 11,
                                        const std::string& stamp = "test stamp") {
    MemorySink sink;
    TraceWriter writer{sink, seed, stamp, 123, TraceWriterOptions{chunk_bytes}};
    std::vector<std::uint8_t> scratch;
    for (const Record& r : records) {
        scratch.clear();
        encode_record(scratch, r);
        std::int64_t t = 0;
        if (const auto* w = std::get_if<WireRecord>(&r)) t = w->t_ns;
        if (const auto* h = std::get_if<HashRecord>(&r)) t = h->t_ns;
        if (const auto* c = std::get_if<CheckpointRecord>(&r)) t = c->t_ns;
        writer.append(scratch, 1, t, std::holds_alternative<CheckpointRecord>(r));
    }
    writer.finish();
    return sink.take();
}

// ---------------------------------------------------------------- codec

TEST(TraceCodecTest, RoundTripsEveryRecordKind) {
    WireRecord wire;
    wire.t_ns = 5'000'000;
    wire.shard = 2;
    wire.flow = (2u << 16) | 1u;
    wire.src = 3;
    wire.dst = 9;
    wire.size_bytes = 512;
    wire.priority = 1;
    AvatarUpdate up;
    up.participant = 42;
    up.room = 1;
    up.keyframe = true;
    up.captured_ns = 4'900'000;
    up.bytes = {0xDE, 0xAD, 0xBE, 0xEF};
    wire.avatars.push_back(up);
    up.keyframe = false;
    up.captured_ns = 4'950'000;
    up.bytes = {0x01};
    wire.avatars.push_back(up);

    const std::vector<Record> in{
        FlowDef{7, "avatar/keyframe"},
        NodeDef{2, 5, "edge-cwb"},
        SubjectDef{3, "shard/2"},
        wire,
        HashRecord{6'000'000, 60, 3, 0xABCDEF0123456789ull},
        CheckpointRecord{7'000'000, "edge-cwb", {1, 2, 3, 4, 5}},
    };
    const std::vector<std::uint8_t> bytes = write_records(in);
    const Trace trace = Trace::parse(bytes);
    EXPECT_EQ(trace.seed(), 11u);
    EXPECT_EQ(trace.stamp(), "test stamp");
    EXPECT_EQ(trace.started_ns(), 123);
    EXPECT_EQ(trace.record_count(), in.size());
    EXPECT_EQ(trace.last_t_ns(), 7'000'000);

    std::vector<Record> out;
    Trace::Cursor c = trace.cursor();
    Record rec;
    while (c.next(rec)) out.push_back(rec);
    ASSERT_EQ(out.size(), in.size());

    const auto& f = std::get<FlowDef>(out[0]);
    EXPECT_EQ(f.id, 7u);
    EXPECT_EQ(f.name, "avatar/keyframe");
    const auto& n = std::get<NodeDef>(out[1]);
    EXPECT_EQ(n.shard, 2u);
    EXPECT_EQ(n.node, 5u);
    EXPECT_EQ(n.name, "edge-cwb");
    const auto& s = std::get<SubjectDef>(out[2]);
    EXPECT_EQ(s.id, 3u);
    EXPECT_EQ(s.name, "shard/2");
    const auto& w = std::get<WireRecord>(out[3]);
    EXPECT_EQ(w.t_ns, wire.t_ns);
    EXPECT_EQ(w.shard, wire.shard);
    EXPECT_EQ(w.flow, wire.flow);
    EXPECT_EQ(w.src, wire.src);
    EXPECT_EQ(w.dst, wire.dst);
    EXPECT_EQ(w.size_bytes, wire.size_bytes);
    EXPECT_EQ(w.priority, wire.priority);
    ASSERT_EQ(w.avatars.size(), 2u);
    EXPECT_EQ(w.avatars[0].participant, 42u);
    EXPECT_TRUE(w.avatars[0].keyframe);
    EXPECT_EQ(w.avatars[0].captured_ns, 4'900'000);
    EXPECT_EQ(w.avatars[0].bytes, (std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
    EXPECT_FALSE(w.avatars[1].keyframe);
    const auto& h = std::get<HashRecord>(out[4]);
    EXPECT_EQ(h.t_ns, 6'000'000);
    EXPECT_EQ(h.epoch, 60u);
    EXPECT_EQ(h.subject, 3u);
    EXPECT_EQ(h.hash, 0xABCDEF0123456789ull);
    const auto& cp = std::get<CheckpointRecord>(out[5]);
    EXPECT_EQ(cp.t_ns, 7'000'000);
    EXPECT_EQ(cp.owner, "edge-cwb");
    EXPECT_EQ(cp.bytes, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));

    // Name tables were collected during the scan.
    EXPECT_EQ(trace.flow_name(7), "avatar/keyframe");
    EXPECT_EQ(trace.subject_name(3), "shard/2");
    EXPECT_EQ(trace.node_name(2, 5), "edge-cwb");
    EXPECT_EQ(trace.flow_name(9999), "?");
}

TEST(TraceCodecTest, SmallChunksSplitAndCheckpointIndexPointsAtFlaggedChunks) {
    std::vector<Record> records;
    for (int i = 0; i < 40; ++i) {
        WireRecord w;
        w.t_ns = i * 1'000'000;
        w.flow = 1;
        w.src = 1;
        w.dst = 2;
        w.size_bytes = 100;
        records.push_back(w);
        if (i == 10 || i == 30)
            records.push_back(CheckpointRecord{w.t_ns, "cwb", {9, 9, 9}});
    }
    const std::vector<std::uint8_t> bytes = write_records(records, /*chunk_bytes=*/128);
    const Trace trace = Trace::parse(bytes);
    EXPECT_GT(trace.chunks().size(), 2u);
    ASSERT_EQ(trace.checkpoint_index().size(), 2u);
    EXPECT_EQ(trace.checkpoint_index()[0].t_ns, 10'000'000);
    EXPECT_EQ(trace.checkpoint_index()[1].t_ns, 30'000'000);
    for (const CheckpointRef& ref : trace.checkpoint_index()) {
        ASSERT_LT(ref.chunk, trace.chunks().size());
        EXPECT_NE(trace.chunks()[ref.chunk].flags & kChunkHasCheckpoint, 0);
        // The flagged chunk really contains the checkpoint record.
        bool found = false;
        trace.each_record(ref.chunk, [&](const Record& r) {
            if (const auto* c = std::get_if<CheckpointRecord>(&r))
                found = found || c->t_ns == ref.t_ns;
        });
        EXPECT_TRUE(found);
    }
}

// ----------------------------------------------------------- corruption

std::vector<std::uint8_t> small_trace() {
    std::vector<Record> records;
    records.push_back(FlowDef{1, "flow"});
    for (int i = 0; i < 24; ++i) {
        WireRecord w;
        w.t_ns = i * 500'000;
        w.flow = 1;
        w.src = 1;
        w.dst = 2;
        w.size_bytes = 64;
        records.push_back(w);
    }
    records.push_back(CheckpointRecord{6'000'000, "cwb", {1, 2, 3}});
    records.push_back(HashRecord{12'000'000, 12, 1, 77});
    return write_records(records, /*chunk_bytes=*/96);
}

TEST(TraceCorruptionTest, EveryTruncationDetectedOrLandsOnAChunkBoundary) {
    const std::vector<std::uint8_t> bytes = small_trace();
    const Trace trace = Trace::parse(bytes);
    ASSERT_GT(trace.chunks().size(), 2u);

    // Cuts at the end of the header or of a whole chunk are legitimately
    // indistinguishable from a shorter trace; everything else must fail.
    std::set<std::size_t> boundaries;
    boundaries.insert(trace.chunks()[0].payload_offset - kChunkHeaderBytes);
    for (const ChunkInfo& c : trace.chunks())
        boundaries.insert(c.payload_offset + c.payload_len);

    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const TraceCheck check =
            Trace::verify(std::span<const std::uint8_t>{bytes.data(), cut});
        if (boundaries.contains(cut)) {
            EXPECT_TRUE(check.ok) << "boundary cut at " << cut << ": " << check.error;
        } else {
            EXPECT_FALSE(check.ok) << "undetected truncation at " << cut;
        }
        // Salvage contract: the reported valid prefix always parses clean.
        EXPECT_LE(check.valid_bytes, cut);
        if (check.valid_bytes > 0) {
            std::vector<std::uint8_t> prefix(bytes.begin(),
                                             bytes.begin() + check.valid_bytes);
            EXPECT_NO_THROW((void)Trace::parse(std::move(prefix)))
                << "salvage prefix failed at cut " << cut;
        }
    }
}

TEST(TraceCorruptionTest, EverySingleBitFlipDetected) {
    const std::vector<std::uint8_t> bytes = small_trace();
    ASSERT_TRUE(Trace::verify(bytes).ok);

    // Exhaustive: one flipped bit per byte position, anywhere in the file —
    // header, chunk headers, CRC fields, payloads.
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::vector<std::uint8_t> mutated = bytes;
        mutated[i] ^= 0x40;
        EXPECT_FALSE(Trace::verify(mutated).ok) << "undetected flip at byte " << i;
    }
    // And seeded random flips of arbitrary bits, recovery_test-style.
    sim::Rng rng{2024};
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> mutated = bytes;
        mutated[rng.index(mutated.size())] ^= static_cast<std::uint8_t>(
            1u << rng.index(8));
        EXPECT_FALSE(Trace::verify(mutated).ok) << "undetected flip, trial " << trial;
    }
}

TEST(TraceCorruptionTest, TruncateTraceKeepsReplayablePrefix) {
    const std::vector<std::uint8_t> bytes = small_trace();
    const Trace full = Trace::parse(bytes);
    const std::vector<std::uint8_t> cut = truncate_trace(full, 6'000'000);
    const Trace prefix = Trace::parse(cut);
    EXPECT_EQ(prefix.seed(), full.seed());
    EXPECT_EQ(prefix.stamp(), full.stamp());
    EXPECT_LE(prefix.last_t_ns(), 6'000'000);
    EXPECT_LT(prefix.record_count(), full.record_count());
    // Definition records survive (they carry no timestamp).
    EXPECT_EQ(prefix.flow_name(1), "flow");
    // The kept checkpoint is still indexed.
    ASSERT_EQ(prefix.checkpoint_index().size(), 1u);
    EXPECT_EQ(prefix.checkpoint_index()[0].t_ns, 6'000'000);
}

// ------------------------------------------------------------- recorder

/// Sink that starts failing after a byte budget — models a full disk.
class FailingSink final : public TraceSink {
public:
    explicit FailingSink(std::size_t budget) : budget_(budget) {}
    void write(const void* /*data*/, std::size_t n) override {
        if (written_ + n > budget_) throw TraceError("disk full");
        written_ += n;
    }

private:
    std::size_t budget_;
    std::size_t written_{0};
};

TEST(RecorderTest, SinkFailureIsStickyAndNeverPropagates) {
    FailingSink sink{512};
    RecorderOptions opts;
    opts.chunk_bytes = 64;  // force frequent chunk emission
    Recorder rec{sink, 1, "stamp", 0, opts};
    const std::uint32_t subject = rec.subject("sim");
    for (int i = 0; i < 200; ++i)
        rec.record_hash(i, subject, 42, sim::Time::ms(i));
    EXPECT_FALSE(rec.error().empty());
    const std::uint64_t hashes_at_failure = rec.hashes();
    // Disabled: further records are dropped, no throw.
    rec.record_hash(999, subject, 42, sim::Time::seconds(1));
    EXPECT_EQ(rec.hashes(), hashes_at_failure);
    EXPECT_NO_THROW(rec.finish());
}

// ----------------------------------------------------------- divergence

TEST(DivergenceTest, LocatesFirstDifferingEpochAndSubject) {
    const auto make = [](std::uint64_t epoch3_hash) {
        std::vector<Record> records;
        records.push_back(SubjectDef{1, "sim"});
        records.push_back(SubjectDef{2, "edge/cwb"});
        for (std::uint64_t e = 1; e <= 5; ++e) {
            records.push_back(HashRecord{static_cast<std::int64_t>(e) * 1'000'000, e, 1,
                                         e == 3 ? epoch3_hash : 100 + e});
            records.push_back(
                HashRecord{static_cast<std::int64_t>(e) * 1'000'000, e, 2, 200 + e});
        }
        return Trace::parse(write_records(records));
    };
    const Trace a = make(103);
    const Trace b = make(104);

    const Divergence same = diff_state_hashes(a, make(103));
    EXPECT_FALSE(same.diverged);
    EXPECT_EQ(same.compared, 10u);

    const Divergence diff = diff_state_hashes(a, b);
    ASSERT_TRUE(diff.diverged);
    EXPECT_EQ(diff.epoch, 3u);
    EXPECT_EQ(diff.subject, "sim");
    EXPECT_EQ(diff.compared, 4u);  // epochs 1-2 on both subjects matched
    EXPECT_EQ(diff.recorded_hash, 103u);
    EXPECT_EQ(diff.rerun_hash, 104u);
}

TEST(DivergenceTest, SeedMismatchReportedStructurallyNotAsEpochZero) {
    std::vector<Record> records{SubjectDef{1, "sim"}, HashRecord{0, 1, 1, 5}};
    const Trace a = Trace::parse(write_records(records, 64 * 1024, /*seed=*/1));
    const Trace b = Trace::parse(write_records(records, 64 * 1024, /*seed=*/2));
    const Divergence d = diff_state_hashes(a, b);
    EXPECT_TRUE(d.diverged);
    EXPECT_NE(d.detail.find("seed"), std::string::npos);
}

// ------------------------------------------------------------ end to end

constexpr std::uint64_t kSeed = 90125;

std::vector<std::uint8_t> record_lecture(std::uint64_t seed, double sim_seconds) {
    core::ClassroomConfig config;
    config.seed = seed;
    config.course = "replay-test lecture";
    config.recovery.enabled = true;
    config.recovery.checkpoint_interval = sim::Time::seconds(1);

    core::MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    classroom.add_physical_student(0);
    classroom.add_physical_student(0);
    classroom.add_physical_student(1);
    classroom.add_remote_student(net::Region::Seoul);

    MemorySink sink;
    Recorder rec{sink, seed, "replay-test lecture", 0, RecorderOptions{}};
    classroom.enable_recording(rec, sim::Time::ms(100));
    classroom.start();
    classroom.run_for(sim::Time::seconds(sim_seconds));
    classroom.stop();
    rec.finish();
    EXPECT_EQ(rec.error(), "");
    EXPECT_GT(rec.wire_records(), 0u);
    EXPECT_GT(rec.hashes(), 0u);
    EXPECT_GT(rec.checkpoints(), 0u);
    return sink.take();
}

TEST(RecordReplayE2ETest, RerunOfSameSeedIsHashIdenticalAndByteIdentical) {
    const std::vector<std::uint8_t> first = record_lecture(kSeed, 4.0);
    const std::vector<std::uint8_t> second = record_lecture(kSeed, 4.0);
    const Trace a = Trace::parse(first);
    const Trace b = Trace::parse(second);
    const Divergence d = diff_state_hashes(a, b);
    EXPECT_FALSE(d.diverged) << d.detail;
    EXPECT_GT(d.compared, 0u);
    EXPECT_EQ(first, second);
}

TEST(RecordReplayE2ETest, DifferentSeedsDiverge) {
    const Trace a = Trace::parse(record_lecture(kSeed, 2.0));
    const Trace b = Trace::parse(record_lecture(kSeed + 1, 2.0));
    EXPECT_TRUE(diff_state_hashes(a, b).diverged);
}

TEST(RecordReplayE2ETest, PlaybackReconstructsEveryParticipant) {
    const Trace trace = Trace::parse(record_lecture(kSeed, 4.0));
    Replayer player{trace};
    player.play_all();
    EXPECT_EQ(player.position(), player.end());
    // Instructor + 3 physical + 1 remote all published avatar state.
    EXPECT_EQ(player.participants().size(), 5u);
    EXPECT_GT(player.stats().avatar_updates, 0u);
    EXPECT_GT(player.stats().keyframes, 0u);
    for (const ParticipantId p : player.participants())
        EXPECT_TRUE(player.latest(p).has_value());
}

TEST(RecordReplayE2ETest, SeekConvergesToStraightPlayState) {
    const Trace trace = Trace::parse(record_lecture(kSeed, 4.0));
    ASSERT_FALSE(trace.checkpoint_index().empty());

    Replayer straight{trace};
    straight.play_all();

    Replayer seeker{trace};
    seeker.seek(sim::Time::seconds(2));
    EXPECT_EQ(seeker.stats().seeks, 1u);
    EXPECT_GT(seeker.stats().checkpoints_applied, 0u);
    seeker.play_all();

    ASSERT_EQ(seeker.participants().size(), straight.participants().size());
    for (const ParticipantId p : straight.participants()) {
        const auto a = straight.latest(p);
        const auto b = seeker.latest(p);
        ASSERT_TRUE(a.has_value());
        ASSERT_TRUE(b.has_value());
        EXPECT_EQ(a->captured_at.nanos(), b->captured_at.nanos());
        EXPECT_DOUBLE_EQ(a->root.pose.position.x, b->root.pose.position.x);
        EXPECT_DOUBLE_EQ(a->root.pose.position.y, b->root.pose.position.y);
        EXPECT_DOUBLE_EQ(a->root.pose.position.z, b->root.pose.position.z);
    }
}

// ------------------------------------------------------ sharded e2e

/// Slim version of the E18 sharded scenario: cloud origin on shard 0, one
/// relay per region shard, a few lightweight VR clients.
std::vector<std::uint8_t> record_sharded(std::size_t threads, double sim_seconds) {
    constexpr net::Region kRegions[] = {net::Region::Seoul, net::Region::London};
    core::ShardedWorld world{1 + std::size(kRegions), kSeed};
    net::WanTopology wan;

    cloud::CloudServerConfig cc;
    cc.room = ClassroomId{1};
    const core::GlobalNode cloud_node = world.add_node(0, "cloud", net::Region::HongKong);
    cloud::CloudServer origin{world.network(0), cloud_node.node, cc};

    std::vector<std::unique_ptr<cloud::RelayServer>> relays;
    std::vector<core::GlobalNode> relay_nodes;
    for (std::size_t r = 0; r < std::size(kRegions); ++r) {
        const std::size_t shard = r + 1;
        cloud::RelayConfig rc;
        rc.name = "relay-" + std::string{net::region_name(kRegions[r])};
        const core::GlobalNode node = world.add_node(shard, rc.name, kRegions[r]);
        auto relay = std::make_unique<cloud::RelayServer>(world.network(shard),
                                                          node.node, std::move(rc));
        world.connect_cross_wan(node, cloud_node, wan);
        relay->set_origin(world.proxy_in(shard, cloud_node));
        origin.add_relay(world.proxy_in(0, node));
        relays.push_back(std::move(relay));
        relay_nodes.push_back(node);
    }

    cloud::VrLayout layout;
    std::vector<std::unique_ptr<cloud::VrClient>> pool;
    for (std::size_t i = 0; i < 6; ++i) {
        const std::size_t r = i % std::size(kRegions);
        const std::size_t shard = r + 1;
        net::Network& net = world.network(shard);
        const ParticipantId who{static_cast<std::uint32_t>(i + 1)};
        const net::NodeId node = net.add_node("c" + std::to_string(i), kRegions[r]);
        net.connect_wan(node, relay_nodes[r].node, wan);

        cloud::VrClientConfig vc;
        vc.name = "c" + std::to_string(i);
        vc.room = ClassroomId{1};
        vc.lightweight = true;
        auto client = std::make_unique<cloud::VrClient>(net, node, who, vc);
        const math::Pose seat = layout.seat_pose(i);
        for (auto& relay : relays) relay->upsert_entity(who, seat.position);
        origin.place_entity(who);
        relays[r]->attach_client(node, who, seat.position);
        client->join(relay_nodes[r].node, seat);
        pool.push_back(std::move(client));
    }

    MemorySink sink;
    Recorder rec{sink, kSeed, "replay-test sharded", 0, RecorderOptions{}};
    world.enable_recording(rec);
    world.run_until(sim::Time::seconds(sim_seconds), threads);
    rec.finish();
    EXPECT_EQ(rec.error(), "");
    return sink.take();
}

TEST(RecordReplayE2ETest, ShardedTraceIdenticalForAnyThreadCount) {
    const std::vector<std::uint8_t> one = record_sharded(1, 1.0);
    const std::vector<std::uint8_t> two = record_sharded(2, 1.0);
    const std::vector<std::uint8_t> four = record_sharded(4, 1.0);
    const Trace base = Trace::parse(one);
    EXPECT_GT(base.record_count(), 0u);
    for (const auto* other : {&two, &four}) {
        const Divergence d = diff_state_hashes(base, Trace::parse(*other));
        EXPECT_FALSE(d.diverged) << d.detail;
        EXPECT_EQ(one, *other);
    }
}

// ---------------------------------------------- real-backend rerun bridge

avatar::AvatarState mirror_state(std::uint32_t id, double t_ms, double x) {
    avatar::AvatarState s;
    s.participant = ParticipantId{id};
    s.captured_at = sim::Time::ms(t_ms);
    s.root.pose.position = {x, 0.0, -1.0};
    s.root.linear_velocity = {0.4, 0.0, 0.0};
    s.body.head.position = {x, 0.65, 0.0};
    s.expression.assign(avatar::kExpressionChannels, 0.5);
    s.viseme = static_cast<std::uint8_t>(id % 7);
    return s;
}

// The acceptance gate for the real transport: traffic recorded at a
// RealUdpBackend's ingress tap must replay bit-exact through a fresh
// Simulator. Divergence here means the wire format, the recorder, or the
// avatar codec loses information between wall-clock and virtual time.
TEST(RealNetRerunTest, RecordOnRealBackendReplaysBitExactInSim) {
    core::register_wire_codecs();
    net::RealUdpBackend net;
    const net::NodeId client = net.add_node("client", net::Region::HongKong);
    const net::NodeId edge = net.add_node("edge", net::Region::HongKong);
    std::size_t delivered = 0;
    net.set_handler(edge, [&](net::Packet&&) { ++delivered; });
    net::Channel tx = net.open_channel({.src = client, .dst = edge, .flow = "avatar"});

    MemorySink sink;
    Recorder rec{sink, 0xC0FFEE, "realnet roundtrip", 0};
    rec.attach(net);
    AvatarMirror live;          // installs after the recorder, chains to it
    live.install(net);

    const avatar::AvatarCodec codec;
    const std::uint32_t subject = rec.subject("mirror");
    constexpr int kEpochs = 5;
    constexpr int kParticipants = 3;
    std::uint64_t expected = 0;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
        for (std::uint32_t p = 1; p <= kParticipants; ++p) {
            const avatar::AvatarState prev =
                mirror_state(p, epoch * 50.0, epoch * 0.1 + p);
            const avatar::AvatarState next =
                mirror_state(p, epoch * 50.0 + 25.0, epoch * 0.1 + p + 0.05);
            sync::AvatarWire w;
            w.participant = ParticipantId{p};
            w.source_room = ClassroomId{1};
            w.captured_at = prev.captured_at;
            // Alternate keyframes and deltas so the replica's reference
            // state machine is exercised on both paths.
            if (epoch % 2 == 0) {
                w.keyframe = true;
                w.bytes = codec.encode_full(prev);
            } else {
                w.keyframe = false;
                w.bytes = codec.encode_delta(prev, next);
            }
            ASSERT_TRUE(tx.send(w.bytes.size() + 64, net::Payload{std::move(w)}));
            ++expected;
        }
        // Pump the loopback until this epoch's datagrams all arrived.
        for (int spin = 0; spin < 2000 && live.updates() < expected; ++spin)
            net.poll_once(sim::Time::ms(1));
        ASSERT_EQ(live.updates(), expected);
        // Drain staged wire records before the hash so file order matches
        // arrival order — the re-run schedules records in file order.
        rec.drain_all();
        rec.record_hash(static_cast<std::uint64_t>(epoch), subject, live.state_hash(),
                        net.clock().now());
    }
    rec.finish();
    ASSERT_TRUE(rec.error().empty()) << rec.error();
    EXPECT_EQ(delivered, expected);

    const Trace recorded = Trace::parse(sink.take());
    const RerunResult rerun = replay_in_sim(recorded);
    EXPECT_FALSE(rerun.divergence.diverged) << rerun.divergence.detail;
    EXPECT_EQ(rerun.wire_records, expected);
    EXPECT_EQ(rerun.avatar_updates, expected);
    EXPECT_EQ(rerun.hash_records, static_cast<std::uint64_t>(kEpochs));
}

}  // namespace
}  // namespace mvc::replay
