// Campus-scale hot path (E22): the SoA AvatarPool's handle/packing
// contract and wire round-trip, the flat InterestGrid's incremental
// rebuild and allocation-free query overloads, cell-delta aggregated
// egress semantics, and CampusWorld's thread-count determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/avatar_pool.hpp"
#include "core/campus.hpp"
#include "math/vec3.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "sync/aggregator.hpp"
#include "sync/interest.hpp"
#include "sync/wire.hpp"

namespace mvc::core {
namespace {

// ------------------------------------------------------------ AvatarPool

TEST(AvatarPoolTest, HandlesStayStableAcrossSwapRemove) {
    AvatarPool pool;
    const AvatarHandle a = pool.add(EntityId{10}, {1, 0, 0});
    const AvatarHandle b = pool.add(EntityId{20}, {2, 0, 0});
    const AvatarHandle c = pool.add(EntityId{30}, {3, 0, 0});
    ASSERT_EQ(pool.size(), 3u);

    // Removing the middle row swaps the last row into its place; a and c
    // must still resolve, and c's data must follow it to the new row.
    EXPECT_TRUE(pool.remove(b));
    ASSERT_EQ(pool.size(), 2u);
    EXPECT_TRUE(pool.alive(a));
    EXPECT_FALSE(pool.alive(b));
    EXPECT_TRUE(pool.alive(c));
    const std::uint32_t ci = pool.index_of(c);
    ASSERT_NE(ci, AvatarPool::kNoIndex);
    EXPECT_EQ(pool.ids()[ci], EntityId{30});
    EXPECT_DOUBLE_EQ(pool.positions()[ci].x, 3.0);
    EXPECT_EQ(pool.handle_at(ci), c);
}

TEST(AvatarPoolTest, FreeListReuseBumpsGeneration) {
    AvatarPool pool;
    const AvatarHandle first = pool.add(EntityId{1}, {0, 0, 0});
    ASSERT_TRUE(pool.remove(first));
    EXPECT_EQ(pool.free_slots(), 1u);

    const AvatarHandle second = pool.add(EntityId{2}, {0, 0, 0});
    EXPECT_EQ(pool.free_slots(), 0u);
    // Same slot, new generation: the stale handle must not alias the new
    // occupant.
    EXPECT_EQ(second.slot, first.slot);
    EXPECT_NE(second.generation, first.generation);
    EXPECT_FALSE(pool.alive(first));
    EXPECT_EQ(pool.index_of(first), AvatarPool::kNoIndex);
    EXPECT_FALSE(pool.remove(first));
    EXPECT_TRUE(pool.alive(second));
}

TEST(AvatarPoolTest, AddSetsDirtyAndClearDirtyResets) {
    AvatarPool pool;
    pool.add(EntityId{1}, {0, 0, 0});
    pool.add(EntityId{2}, {1, 0, 0});
    EXPECT_EQ(pool.dirty()[0], 1u);
    EXPECT_EQ(pool.dirty()[1], 1u);
    pool.clear_dirty();
    EXPECT_EQ(pool.dirty()[0], 0u);
    EXPECT_EQ(pool.dirty()[1], 0u);
}

TEST(AvatarPoolTest, RecordRoundTripsThroughWireBytes) {
    AvatarPool pool;
    const AvatarHandle h = pool.add(EntityId{77}, {1.5, -2.25, 3.125},
                                    {0.5, 0.0, -0.75});
    const std::uint32_t i = pool.index_of(h);
    pool.seqs()[i] = 9001;
    pool.lods()[i] = 3;

    std::vector<std::uint8_t> bytes;
    pool.encode_record(i, bytes);
    ASSERT_EQ(bytes.size(), AvatarPool::kRecordBytes);

    const AvatarPool::Record r = AvatarPool::decode_record(bytes.data());
    EXPECT_EQ(r.id, EntityId{77});
    EXPECT_EQ(r.seq, 9001u);
    EXPECT_EQ(r.lod, 3u);
    // Values chosen exactly representable in f32, so the round trip is exact.
    EXPECT_DOUBLE_EQ(r.position.x, 1.5);
    EXPECT_DOUBLE_EQ(r.position.y, -2.25);
    EXPECT_DOUBLE_EQ(r.position.z, 3.125);
    EXPECT_DOUBLE_EQ(r.velocity.x, 0.5);
    EXPECT_DOUBLE_EQ(r.velocity.z, -0.75);
}

// ---------------------------------------------------------- InterestGrid

TEST(FlatGridTest, IncrementalRebuildMatchesFromScratch) {
    sync::InterestGrid incremental{4.0};
    // Seed a population, commit, then move a small fraction across cells —
    // the incremental (sort movers + merge) path.
    for (std::uint32_t i = 1; i <= 300; ++i) {
        incremental.update(EntityId{i},
                           {static_cast<double>(i % 17), 0.0,
                            static_cast<double>(i % 23)});
    }
    incremental.rebuild();
    for (std::uint32_t i = 1; i <= 300; i += 25) {
        incremental.update(EntityId{i},
                           {static_cast<double>(i % 13) + 40.0, 0.0,
                            static_cast<double>(i % 7) - 40.0});
    }
    incremental.rebuild();
    EXPECT_GT(incremental.incremental_rebuilds(), 0u);

    // A grid fed the same final positions from scratch must answer every
    // query identically.
    sync::InterestGrid scratch{4.0};
    for (std::uint32_t i = 1; i <= 300; ++i) {
        const math::Vec3* p = incremental.position_of(EntityId{i});
        ASSERT_NE(p, nullptr);
        scratch.update(EntityId{i}, *p);
    }
    for (const math::Vec3 center :
         {math::Vec3{0, 0, 0}, math::Vec3{8, 0, 8}, math::Vec3{42, 0, -38}}) {
        for (const double radius : {3.0, 9.0, 25.0}) {
            EXPECT_EQ(incremental.query_radius(center, radius),
                      scratch.query_radius(center, radius));
        }
    }
}

TEST(FlatGridTest, QueryIntoOverloadsMatchAllocatingQueries) {
    sync::InterestGrid grid{3.0};
    for (std::uint32_t i = 1; i <= 120; ++i) {
        grid.update(EntityId{i}, {static_cast<double>(i % 11) * 2.0, 0.0,
                                  static_cast<double>(i % 9) * 2.0});
    }
    std::vector<EntityId> out;
    for (const double radius : {2.0, 7.0, 50.0}) {
        grid.query_radius_into({5, 0, 5}, radius, out);
        EXPECT_EQ(out, grid.query_radius({5, 0, 5}, radius));
        grid.query_nearest_into({5, 0, 5}, radius, 10, out);
        EXPECT_EQ(out, grid.query_nearest({5, 0, 5}, radius, 10));
    }
    // The buffer is reused, not grown per call: results are cleared first.
    grid.query_radius_into({1000, 0, 1000}, 1.0, out);
    EXPECT_TRUE(out.empty());
}

TEST(FlatGridTest, RemoveAfterCommitForcesConsistentFullRebuild) {
    sync::InterestGrid grid{2.0};
    for (std::uint32_t i = 1; i <= 50; ++i)
        grid.update(EntityId{i}, {static_cast<double>(i), 0.0, 0.0});
    grid.rebuild();
    grid.remove(EntityId{25});
    std::vector<EntityId> out;
    grid.query_radius_into({25.0, 0, 0}, 0.5, out);
    EXPECT_TRUE(out.empty());
    grid.query_radius_into({24.0, 0, 0}, 0.5, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], EntityId{24});
}

// --------------------------------------------------- CellDeltaAggregator

class AggregatorTest : public ::testing::Test {
protected:
    AggregatorTest() : net_(sim_) {
        src_ = net_.add_node("gw", net::Region::HongKong);
        near_ = net_.add_node("near", net::Region::HongKong);
        far_ = net_.add_node("far", net::Region::HongKong);
        const net::LinkParams link{.latency = sim::Time::ms(1)};
        net_.connect(src_, near_, link);
        net_.connect(src_, far_, link);
    }

    sync::AvatarWire wire(std::uint32_t participant, std::uint32_t seq) {
        sync::AvatarWire w{ParticipantId{participant}, ClassroomId{1}, false,
                           std::vector<std::uint8_t>(16, 0xAB), sim_.now(), {}};
        w.seq = seq;
        return w;
    }

    sim::Simulator sim_;
    net::Network net_;
    net::NodeId src_{};
    net::NodeId near_{};
    net::NodeId far_{};
};

TEST_F(AggregatorTest, ShipsToInterestedViewerSuppressesOutOfRange) {
    sync::CellDeltaAggregator agg{net_, src_, sim::Time::ms(10), 8.0};
    agg.add_viewer(near_, ParticipantId{100}, {0, 0, 0});
    // Default policy's horizon is 80 m; park the far viewer well beyond it.
    agg.add_viewer(far_, ParticipantId{200}, {500, 0, 0});

    std::uint64_t near_updates = 0;
    std::uint64_t far_updates = 0;
    net::PacketDemux near_demux{net_, near_};
    net::PacketDemux far_demux{net_, far_};
    near_demux.on_flow(std::string{sync::kAvatarBatchFlow}, [&](net::Packet&& p) {
        near_updates += p.payload.take<sync::AvatarBatchWire>().updates.size();
    });
    far_demux.on_flow(std::string{sync::kAvatarBatchFlow}, [&](net::Packet&& p) {
        far_updates += p.payload.take<sync::AvatarBatchWire>().updates.size();
    });

    agg.enqueue({1, 0, 0}, wire(1, 1));
    agg.enqueue({2, 0, 0}, wire(2, 1));
    sim_.run_until(sim::Time::ms(50));

    EXPECT_EQ(near_updates, 2u);
    EXPECT_EQ(far_updates, 0u);
    EXPECT_EQ(agg.updates_enqueued(), 2u);
    EXPECT_EQ(agg.updates_shipped(), 2u);
    EXPECT_GT(agg.suppressed_by_aoi(), 0u);
}

TEST_F(AggregatorTest, ViewerOwnUpdateIsNotEchoed) {
    sync::CellDeltaAggregator agg{net_, src_, sim::Time::ms(10), 8.0};
    agg.add_viewer(near_, ParticipantId{1}, {0, 0, 0});

    std::uint64_t got = 0;
    net::PacketDemux demux{net_, near_};
    demux.on_flow(std::string{sync::kAvatarBatchFlow}, [&](net::Packet&& p) {
        got += p.payload.take<sync::AvatarBatchWire>().updates.size();
    });

    agg.enqueue({1, 0, 0}, wire(1, 1));  // the viewer's own avatar
    agg.enqueue({1, 0, 0}, wire(2, 1));  // someone else in the same cell
    sim_.run_until(sim::Time::ms(50));
    EXPECT_EQ(got, 1u);
}

TEST_F(AggregatorTest, PerTierRateClockThrottlesRepeatFlushes) {
    sync::CellDeltaAggregator agg{net_, src_, sim::Time::ms(10), 8.0};
    // One far-but-in-range viewer: the matching tier refreshes at 5 Hz,
    // far slower than the 100 Hz enqueue cadence.
    agg.add_viewer(near_, ParticipantId{100}, {60, 0, 0});

    for (int burst = 0; burst < 20; ++burst) {
        sim_.schedule_at(sim::Time::ms(10 * burst), [this, &agg, burst] {
            agg.enqueue({1, 0, 0}, wire(1, static_cast<std::uint32_t>(burst + 1)));
        });
    }
    sim_.run_until(sim::Time::ms(400));
    EXPECT_GT(agg.suppressed_by_rate(), 0u);
    EXPECT_LT(agg.updates_shipped(), 20u);
    EXPECT_GT(agg.updates_shipped(), 0u);
}

TEST_F(AggregatorTest, TierRadiusBoundaryIsInclusiveAndDeterministic) {
    // Two tiers with exact radii. Entity at {1,0,0} lands in cell [0,8)^3;
    // its AABB's nearest point to a viewer on the +x axis is (8,0,0). A
    // viewer at x=20 sits at distance 12.0 exactly — on the outer tier's
    // radius — and must be admitted (distance <= max_distance_m), not
    // dropped to a float-comparison coin toss.
    const sync::InterestPolicy policy{std::vector<sync::InterestTier>{
        {5.0, 20.0, avatar::LodLevel::High},
        {12.0, 5.0, avatar::LodLevel::Low},
    }};
    EXPECT_EQ(policy.tier_index_for(5.0), 0);   // inner boundary: inner tier
    EXPECT_EQ(policy.tier_index_for(12.0), 1);  // outer boundary: still in
    EXPECT_EQ(policy.tier_index_for(12.0 + 1e-9), -1);

    for (int run = 0; run < 2; ++run) {
        sim::Simulator sim;
        net::Network net{sim};
        const net::NodeId src = net.add_node("gw", net::Region::HongKong);
        const net::NodeId on_edge = net.add_node("edge", net::Region::HongKong);
        const net::NodeId beyond = net.add_node("beyond", net::Region::HongKong);
        const net::LinkParams link{.latency = sim::Time::ms(1)};
        net.connect(src, on_edge, link);
        net.connect(src, beyond, link);

        sync::CellDeltaAggregator agg{net, src, sim::Time::ms(10), 8.0, policy};
        agg.add_viewer(on_edge, ParticipantId{100}, {20.0, 0.0, 0.0});
        agg.add_viewer(beyond, ParticipantId{200}, {20.001, 0.0, 0.0});

        sync::AvatarWire w{ParticipantId{1}, ClassroomId{1}, false,
                           std::vector<std::uint8_t>(16, 0xAB), sim.now(), {}};
        w.seq = 1;
        agg.enqueue({1.0, 0.0, 0.0}, std::move(w));
        sim.run_until(sim::Time::ms(50));

        EXPECT_EQ(agg.updates_shipped(), 1u) << "run " << run;
        EXPECT_EQ(agg.suppressed_by_aoi(), 1u) << "run " << run;
    }
}

TEST_F(AggregatorTest, ViewerOnCellCornerGetsNearestTier) {
    // The viewer stands exactly on the corner shared by the entity's cell:
    // the nearest-AABB-point distance is 0.0, which must resolve to tier 0
    // (the hottest rate clock), not fall between tiers.
    sync::CellDeltaAggregator agg{net_, src_, sim::Time::ms(10), 8.0};
    agg.add_viewer(near_, ParticipantId{100}, {8.0, 0.0, 8.0});

    std::uint64_t got = 0;
    net::PacketDemux demux{net_, near_};
    demux.on_flow(std::string{sync::kAvatarBatchFlow}, [&](net::Packet&& p) {
        got += p.payload.take<sync::AvatarBatchWire>().updates.size();
    });

    agg.enqueue({1.0, 0.0, 1.0}, wire(1, 1));  // cell [0,8)^3, corner (8,0,8)
    sim_.run_until(sim::Time::ms(50));
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(agg.updates_shipped(), 1u);
    EXPECT_EQ(agg.suppressed_by_aoi(), 0u);
}

// ------------------------------------------------------------ CampusWorld

CampusConfig small_campus() {
    CampusConfig c;
    c.buildings = 2;
    c.classrooms_per_building = 4;
    c.avatars_per_classroom = 12;
    c.viewers_per_building = 3;
    c.mirror_stride = 8;
    return c;
}

TEST(CampusWorldTest, AggregatedEgressIsByteIdenticalAcrossThreadCounts) {
    std::string baseline;
    for (const std::size_t threads : {1u, 2u, 4u}) {
        CampusWorld world{small_campus()};
        world.run_until(sim::Time::seconds(0.5), threads);
        const std::string json = world.metrics_json();
        if (baseline.empty()) {
            baseline = json;
        } else {
            EXPECT_EQ(json, baseline) << "thread count " << threads << " diverged";
        }
    }
    EXPECT_FALSE(baseline.empty());
}

TEST(CampusWorldTest, AggregationShipsFewerBytesThanFanout) {
    CampusConfig aggregated = small_campus();
    CampusConfig fanout = small_campus();
    fanout.aggregate = false;

    CampusWorld agg_world{aggregated};
    agg_world.run_until(sim::Time::seconds(0.5));
    CampusWorld fan_world{fanout};
    fan_world.run_until(sim::Time::seconds(0.5));

    EXPECT_GT(fan_world.egress_bytes(), 0u);
    EXPECT_GT(agg_world.egress_bytes(), 0u);
    EXPECT_LT(agg_world.egress_bytes(), fan_world.egress_bytes());
    // Both modes deliver the same avatars to the same viewers.
    EXPECT_GT(agg_world.viewer_updates(), 0u);
    EXPECT_GT(fan_world.viewer_updates(), 0u);
}

TEST(CampusWorldTest, MirrorReachesOriginAcrossShards) {
    CampusWorld world{small_campus()};
    world.run_until(sim::Time::seconds(0.5));
    EXPECT_GT(world.mirror_updates(), 0u);
    EXPECT_NE(world.state_digest(), 0u);
    EXPECT_EQ(world.lookahead_violations(), 0u);
    EXPECT_EQ(world.avatar_count(), 2u * 4u * 12u);
}

}  // namespace
}  // namespace mvc::core
