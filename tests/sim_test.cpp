// Tests for the discrete-event engine: ordering, cancellation, periodic
// chains, determinism of the RNG streams, and the metrics recorder.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace mvc::sim {
namespace {

TEST(TimeTest, ConversionsRoundTrip) {
    EXPECT_EQ(Time::ms(1.5).nanos(), 1'500'000);
    EXPECT_DOUBLE_EQ(Time::seconds(2.0).to_ms(), 2000.0);
    EXPECT_DOUBLE_EQ(Time::us(500).to_ms(), 0.5);
    EXPECT_EQ(Time::zero().nanos(), 0);
}

TEST(TimeTest, Arithmetic) {
    const Time a = Time::ms(10);
    const Time b = Time::ms(3);
    EXPECT_EQ((a + b).to_ms(), 13.0);
    EXPECT_EQ((a - b).to_ms(), 7.0);
    EXPECT_EQ((a * 3).to_ms(), 30.0);
    EXPECT_EQ((a / 2).to_ms(), 5.0);
    EXPECT_LT(b, a);
    EXPECT_LE(a, a);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(Time::ms(30), [&] { order.push_back(3); });
    sim.schedule_at(Time::ms(10), [&] { order.push_back(1); });
    sim.schedule_at(Time::ms(20), [&] { order.push_back(2); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, TiesAreFifo) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_at(Time::ms(5), [&order, i] { order.push_back(i); });
    }
    sim.run_all();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
    Simulator sim;
    Time seen;
    sim.schedule_at(Time::ms(42), [&] { seen = sim.now(); });
    sim.run_all();
    EXPECT_EQ(seen, Time::ms(42));
}

TEST(SimulatorTest, RunUntilStopsAtHorizonAndAdvancesClock) {
    Simulator sim;
    int fired = 0;
    sim.schedule_at(Time::ms(10), [&] { ++fired; });
    sim.schedule_at(Time::ms(50), [&] { ++fired; });
    const std::size_t n = sim.run_until(Time::ms(20));
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), Time::ms(20));
    sim.run_until(Time::ms(100));
    EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtHorizonRuns) {
    Simulator sim;
    bool fired = false;
    sim.schedule_at(Time::ms(20), [&] { fired = true; });
    sim.run_until(Time::ms(20));
    EXPECT_TRUE(fired);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
    Simulator sim;
    Time fired_at;
    sim.schedule_at(Time::ms(10), [&] {
        sim.schedule_after(Time::ms(5), [&] { fired_at = sim.now(); });
    });
    sim.run_all();
    EXPECT_EQ(fired_at, Time::ms(15));
}

TEST(SimulatorTest, PastSchedulingThrows) {
    Simulator sim;
    sim.schedule_at(Time::ms(10), [] {});
    sim.run_all();
    EXPECT_THROW(sim.schedule_at(Time::ms(5), [] {}), std::invalid_argument);
    EXPECT_THROW(sim.schedule_after(Time::ms(-1), [] {}), std::invalid_argument);
}

TEST(SimulatorTest, CancelPreventsExecution) {
    Simulator sim;
    bool fired = false;
    const EventHandle h = sim.schedule_at(Time::ms(10), [&] { fired = true; });
    sim.cancel(h);
    sim.run_all();
    EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelInvalidHandleIsNoop) {
    Simulator sim;
    sim.cancel(EventHandle{});
    EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, PeriodicFiresRepeatedly) {
    Simulator sim;
    int count = 0;
    sim.schedule_every(Time::ms(10), [&] { ++count; });
    sim.run_until(Time::ms(100));
    EXPECT_EQ(count, 10);  // fires at 10,20,...,100
}

TEST(SimulatorTest, PeriodicWithPhase) {
    Simulator sim;
    std::vector<double> times;
    sim.schedule_every(Time::ms(10), Time::ms(3), [&] { times.push_back(sim.now().to_ms()); });
    sim.run_until(Time::ms(35));
    ASSERT_EQ(times.size(), 4u);
    EXPECT_DOUBLE_EQ(times[0], 3.0);
    EXPECT_DOUBLE_EQ(times[3], 33.0);
}

TEST(SimulatorTest, PeriodicCancelStopsChain) {
    Simulator sim;
    int count = 0;
    const EventHandle h = sim.schedule_every(Time::ms(10), [&] { ++count; });
    sim.schedule_at(Time::ms(35), [&] { sim.cancel(h); });
    sim.run_until(Time::seconds(1));
    EXPECT_EQ(count, 3);
    EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, InvalidPeriodThrows) {
    Simulator sim;
    EXPECT_THROW(sim.schedule_every(Time::zero(), [] {}), std::invalid_argument);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
    Simulator sim;
    EXPECT_FALSE(sim.step());
    sim.schedule_at(Time::ms(1), [] {});
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
    EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5) sim.schedule_after(Time::ms(1), recurse);
    };
    sim.schedule_at(Time::ms(1), recurse);
    sim.run_all();
    EXPECT_EQ(depth, 5);
}

// ----------------------------------------------------------------------- rng

TEST(RngTest, SameSeedSameSequence) {
    Rng a{123};
    Rng b{123};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.raw(), b.raw());
}

TEST(RngTest, NamedStreamsAreIndependentAndStable) {
    const Rng root{42};
    Rng s1 = root.stream("link/a");
    Rng s1_again = root.stream("link/a");
    Rng s2 = root.stream("link/b");
    EXPECT_EQ(s1.raw(), s1_again.raw());
    EXPECT_NE(s1.raw(), s2.raw());  // overwhelmingly likely
}

TEST(RngTest, DeriveSeedIsDeterministicAcrossCalls) {
    EXPECT_EQ(derive_seed(7, "x"), derive_seed(7, "x"));
    EXPECT_NE(derive_seed(7, "x"), derive_seed(8, "x"));
    EXPECT_NE(derive_seed(7, "x"), derive_seed(7, "y"));
}

TEST(RngTest, UniformInRange) {
    Rng r{5};
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const double v = r.uniform(-3.0, 9.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 9.0);
    }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
    Rng r{6};
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.uniform_int(1, 6);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 6);
        saw_lo |= v == 1;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMatchesMoments) {
    Rng r{7};
    math::RunningStats s;
    for (int i = 0; i < 20000; ++i) s.add(r.normal(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(RngTest, NormalZeroStddevIsMean) {
    Rng r{8};
    EXPECT_DOUBLE_EQ(r.normal(4.0, 0.0), 4.0);
    EXPECT_DOUBLE_EQ(r.normal(4.0, -1.0), 4.0);
}

TEST(RngTest, ExponentialMeanMatches) {
    Rng r{9};
    math::RunningStats s;
    for (int i = 0; i < 20000; ++i) s.add(r.exponential(5.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.2);
    EXPECT_DOUBLE_EQ(Rng{1}.exponential(0.0), 0.0);
}

TEST(RngTest, ChanceEdgesAndFrequency) {
    Rng r{10};
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i) hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ParetoBoundedBelowByScale) {
    Rng r{11};
    for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, IndexWithinBounds) {
    Rng r{12};
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.index(7), 7u);
}

TEST(SimulatorTest, RngStreamsTiedToSeed) {
    Simulator a{99};
    Simulator b{99};
    Simulator c{100};
    EXPECT_EQ(a.rng_stream("m").raw(), b.rng_stream("m").raw());
    EXPECT_NE(a.rng_stream("m").raw(), c.rng_stream("m").raw());
}

// ------------------------------------------------------------------- metrics

TEST(MetricsTest, CountersAccumulate) {
    MetricsRecorder m;
    m.count("a");
    m.count("a", 4);
    EXPECT_EQ(m.counter("a"), 5u);
    EXPECT_EQ(m.counter("missing"), 0u);
}

TEST(MetricsTest, SeriesCollectSamples) {
    MetricsRecorder m;
    m.sample("lat", 1.0);
    m.sample("lat", 3.0);
    EXPECT_EQ(m.series("lat").count(), 2u);
    EXPECT_DOUBLE_EQ(m.series("lat").mean(), 2.0);
    EXPECT_TRUE(m.has_series("lat"));
    EXPECT_FALSE(m.has_series("other"));
    EXPECT_TRUE(m.series("other").empty());
}

TEST(MetricsTest, ResetClearsEverything) {
    MetricsRecorder m;
    m.count("a");
    m.sample("s", 1.0);
    m.reset();
    EXPECT_EQ(m.counter("a"), 0u);
    EXPECT_FALSE(m.has_series("s"));
}

TEST(MetricsTest, ToStringContainsNames) {
    MetricsRecorder m;
    m.count("packets", 3);
    m.sample("latency", 10.0);
    const std::string s = m.to_string();
    EXPECT_NE(s.find("packets"), std::string::npos);
    EXPECT_NE(s.find("latency"), std::string::npos);
}

TEST(MetricsTest, LabeledMetricsFlattenToCanonicalKeys) {
    MetricsRecorder m;
    m.count("drops", {{"flow", "avatar"}, {"reason", "down"}}, 2);
    m.count("drops", {{"flow", "avatar"}, {"reason", "down"}});
    m.sample("latency_ms", {{"room", "cwb"}}, 12.5);

    EXPECT_EQ(MetricsRecorder::keyed("drops", {{"flow", "avatar"}, {"reason", "down"}}),
              "drops{flow=avatar,reason=down}");
    EXPECT_EQ(m.counter("drops", {{"flow", "avatar"}, {"reason", "down"}}), 3u);
    EXPECT_EQ(m.counter("drops{flow=avatar,reason=down}"), 3u);
    EXPECT_EQ(m.series("latency_ms", {{"room", "cwb"}}).count(), 1u);
    // Different label values are distinct metrics.
    EXPECT_EQ(m.counter("drops", {{"flow", "hb"}, {"reason", "down"}}), 0u);
}

TEST(MetricsTest, KeyedCanonicalizesLabelOrder) {
    // Call sites may list labels in any order; the flattened key always
    // sorts by label key, so differently-written sites share one metric.
    const std::string canonical =
        MetricsRecorder::keyed("drops", {{"flow", "avatar"}, {"reason", "down"}});
    EXPECT_EQ(MetricsRecorder::keyed("drops", {{"reason", "down"}, {"flow", "avatar"}}),
              canonical);
    MetricsRecorder m;
    m.count("drops", {{"reason", "down"}, {"flow", "avatar"}}, 2);
    m.count("drops", {{"flow", "avatar"}, {"reason", "down"}}, 3);
    EXPECT_EQ(m.counter(canonical), 5u);
}

TEST(MetricsTest, MergeAddsCountersAndAppendsSeries) {
    MetricsRecorder a;
    a.count("pkts", 2);
    a.count("only_a", 1);
    a.sample("lat_ms", 10.0);
    MetricsRecorder b;
    b.count("pkts", 5);
    b.count("only_b", 7);
    b.sample("lat_ms", 30.0);
    b.sample("rtt_ms", 3.0);

    a.merge(b);
    EXPECT_EQ(a.counter("pkts"), 7u);
    EXPECT_EQ(a.counter("only_a"), 1u);
    EXPECT_EQ(a.counter("only_b"), 7u);
    EXPECT_EQ(a.series("lat_ms").count(), 2u);
    EXPECT_DOUBLE_EQ(a.series("lat_ms").mean(), 20.0);
    EXPECT_EQ(a.series("rtt_ms").count(), 1u);
    EXPECT_EQ(b.counter("pkts"), 5u);  // source unchanged
}

TEST(MetricsTest, ToJsonIsDeterministicAndComplete) {
    const auto build = [] {
        MetricsRecorder m;
        m.count("b.count", 2);
        m.count("a.count", 1);
        m.sample("lat_ms", 10.0);
        m.sample("lat_ms", 20.0);
        m.sample("lat_ms", 30.0);
        return m.to_json().dump(2);
    };
    const std::string json = build();
    EXPECT_EQ(json, build());  // byte-identical for identical metrics
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"series\""), std::string::npos);
    EXPECT_NE(json.find("\"a.count\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"mean\": 20"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
}

TEST(MetricsTest, ScopedTimerSamplesSimulatedTime) {
    Simulator sim{1};
    MetricsRecorder m;
    sim.schedule_at(Time::ms(5), [] {});
    {
        ScopedTimer timer{m, "section_ms", sim};
        sim.run_until(Time::ms(5));
    }
    ASSERT_TRUE(m.has_series("section_ms"));
    EXPECT_DOUBLE_EQ(m.series("section_ms").mean(), 5.0);
}

TEST(MetricsTest, HandleAndStringPathsAreInterchangeable) {
    MetricsRecorder m;
    const MetricId pkts = m.counter_id("pkts");
    const MetricId lat = m.series_id("lat_ms");
    m.count(pkts, 2);
    m.count("pkts", 3);  // same slot via the string path
    m.sample(lat, 10.0);
    m.sample("lat_ms", 30.0);
    EXPECT_EQ(m.counter("pkts"), 5u);
    EXPECT_EQ(m.series("lat_ms").count(), 2u);
    EXPECT_DOUBLE_EQ(m.series("lat_ms").mean(), 20.0);
}

TEST(MetricsTest, LabeledHandleResolvesCanonicalKey) {
    MetricsRecorder m;
    const MetricId id = m.counter_id("bytes", {{"flow", "avatar"}, {"priority", "rt"}});
    m.count(id, 7);
    // Call-site label order must not matter: same canonical slot.
    EXPECT_EQ(m.counter("bytes", {{"priority", "rt"}, {"flow", "avatar"}}), 7u);
    EXPECT_EQ(m.counter("bytes{flow=avatar,priority=rt}"), 7u);
}

TEST(MetricsTest, HandleAndStringPathsExportIdenticalJson) {
    // Record the same traffic once through handles, once through the labeled
    // string API; the serialized export must be byte-identical.
    MetricsRecorder via_handles;
    {
        const MetricId tx = via_handles.counter_id("net.tx", {{"flow", "avatar"}});
        const MetricId lat = via_handles.series_id("lat_ms", {{"flow", "avatar"}});
        for (int i = 0; i < 10; ++i) {
            via_handles.count(tx);
            via_handles.sample(lat, static_cast<double>(i));
        }
    }
    MetricsRecorder via_strings;
    for (int i = 0; i < 10; ++i) {
        via_strings.count("net.tx", {{"flow", "avatar"}});
        via_strings.sample("lat_ms", {{"flow", "avatar"}}, static_cast<double>(i));
    }
    EXPECT_EQ(via_handles.to_json().dump(2), via_strings.to_json().dump(2));
}

TEST(MetricsTest, MergedShardExportsIdenticalAcrossRecordingPaths) {
    // Two shard recorders folded into a root must serialize identically
    // whether each shard recorded through handles or strings — the invariant
    // the sharded-engine determinism check relies on.
    const auto merged = [](bool use_handles) {
        MetricsRecorder shard0;
        MetricsRecorder shard1;
        const auto record = [use_handles](MetricsRecorder& r, std::uint64_t n) {
            if (use_handles) {
                const MetricId tx = r.counter_id("net.tx", {{"flow", "avatar"}});
                const MetricId lat = r.series_id("lat_ms");
                r.count(tx, n);
                r.sample(lat, static_cast<double>(n));
            } else {
                r.count("net.tx", {{"flow", "avatar"}}, n);
                r.sample("lat_ms", static_cast<double>(n));
            }
        };
        record(shard0, 3);
        record(shard1, 9);
        MetricsRecorder root;
        root.merge(shard0);
        root.merge(shard1);
        return root.to_json().dump(2);
    };
    const std::string h = merged(true);
    EXPECT_EQ(h, merged(false));
    EXPECT_NE(h.find("\"net.tx{flow=avatar}\": 12"), std::string::npos);
}

TEST(MetricsTest, StaleHandleAfterResetIsInertNoOp) {
    MetricsRecorder m;
    const MetricId id = m.counter_id("a");
    m.count(id, 5);
    m.reset();
    m.count(id, 5);       // stale: slot no longer exists; must not crash
    m.sample(MetricId{}, 1.0);  // default handle is inert
    EXPECT_EQ(m.counter("a"), 0u);
    EXPECT_FALSE(m.has_series("a"));
}

TEST(SimulatorTest, EventPoolRecyclesOversizedCaptures) {
    Simulator sim{1};
    // Captures bigger than EventFn's inline buffer overflow into the pool;
    // after the first few events the free list must serve every allocation.
    struct Big {
        std::array<std::uint64_t, 12> payload{};
    };
    int fired = 0;
    for (int round = 0; round < 50; ++round) {
        Big big;
        big.payload[0] = static_cast<std::uint64_t>(round);
        sim.schedule_at(Time::ms(round + 1), [big, &fired] {
            fired += big.payload[0] < 50u ? 1 : 0;
        });
        sim.run_until(Time::ms(round + 1));
    }
    EXPECT_EQ(fired, 50);
    ASSERT_GT(sim.event_pool().fresh_blocks(), 0u);   // pool path exercised
    EXPECT_LE(sim.event_pool().fresh_blocks(), 2u);   // warmup only
    EXPECT_GE(sim.event_pool().reused_blocks(), 48u); // steady state recycles
}

TEST(SimulatorTest, MoveOnlyCapturesSchedule) {
    Simulator sim{1};
    auto owned = std::make_unique<int>(41);
    int got = 0;
    sim.schedule_at(Time::ms(1), [owned = std::move(owned), &got] { got = *owned + 1; });
    sim.run_until(Time::ms(1));
    EXPECT_EQ(got, 42);
}

TEST(SimulatorTest, CancelledBacklogDrainsWhenOneShotPops) {
    Simulator sim{1};
    std::vector<EventHandle> handles;
    for (int i = 0; i < 100; ++i) {
        handles.push_back(sim.schedule_at(Time::ms(1 + i), [] {}));
    }
    for (const auto& h : handles) sim.cancel(h);
    EXPECT_EQ(sim.cancelled_backlog(), 100u);
    sim.run_until(Time::ms(500));
    EXPECT_EQ(sim.cancelled_backlog(), 0u);
}

TEST(SimulatorTest, CancelledPeriodicChainLeavesNoTombstone) {
    Simulator sim{1};
    // A periodic chain's id never pops off the queue (each tick re-arms under
    // the same id), so cancelling one must not leave a permanent tombstone.
    for (int i = 0; i < 50; ++i) {
        const EventHandle h = sim.schedule_every(Time::ms(10), [] {});
        sim.run_until(sim.now() + Time::ms(35));
        sim.cancel(h);
    }
    sim.run_until(sim.now() + Time::seconds(1.0));
    EXPECT_EQ(sim.cancelled_backlog(), 0u);
}

TEST(SimulatorTest, CancelAfterFireIsNotRecorded) {
    Simulator sim{1};
    const EventHandle h = sim.schedule_at(Time::ms(1), [] {});
    sim.run_until(Time::ms(10));
    // The event already executed; cancelling its stale handle must be a
    // no-op, not a permanently-retained tombstone.
    sim.cancel(h);
    sim.cancel(h);
    EXPECT_EQ(sim.cancelled_backlog(), 0u);
}

TEST(SimulatorTest, CancelledPeriodicBeforeFirstTickNeverFires) {
    Simulator sim{1};
    int fired = 0;
    const EventHandle h = sim.schedule_every(Time::ms(10), [&] { ++fired; });
    sim.cancel(h);
    sim.run_until(Time::ms(100));
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(sim.cancelled_backlog(), 0u);
}

TEST(RngStreamTest, CreationOrderDoesNotPerturbSiblingStreams) {
    // The rng_stream contract (sim/rng.hpp, point 1): a stream is a pure
    // function of (seed, name). Creating the same streams in another order,
    // or creating extra streams and drawing from them, must never change a
    // sibling stream's draw sequence. This is what lets replay tooling (and
    // any new model) add its own streams without perturbing a recorded run.
    const Simulator a{42};
    const Simulator b{42};

    Rng a_net = a.rng_stream("net");
    Rng a_motion = a.rng_stream("motion");

    Rng b_motion = b.rng_stream("motion");        // opposite creation order
    Rng extra = b.rng_stream("extra");            // extra sibling...
    (void)extra.uniform();                        // ...that actually draws
    (void)b.rng_stream("net").raw();              // a drained re-derivation
    Rng b_net = b.rng_stream("net");              // must still start fresh

    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(a_net.raw(), b_net.raw());
        EXPECT_EQ(a_motion.raw(), b_motion.raw());
    }
}

TEST(RngStreamTest, DerivingChildrenConsumesNoParentRandomness) {
    // Point 1's other half: Rng::stream() keys the child off the parent's
    // base seed, so derivation never advances the parent's engine.
    Rng parent{7};
    Rng untouched{7};
    (void)parent.stream("child-a");
    (void)parent.stream("child-b").uniform();
    for (int i = 0; i < 16; ++i) EXPECT_EQ(parent.raw(), untouched.raw());
}

}  // namespace
}  // namespace mvc::sim
