// Fault-injection and resilience tests: FaultPlan scheduling/determinism,
// administrative link & node state, bounded ARQ retransmission, heartbeat
// failover/failback, the graceful-degradation hysteresis ladder, and the
// end-to-end edge failover path through the cloud relay.

#include <gtest/gtest.h>

#include <array>
#include <utility>
#include <vector>

#include "core/classroom.hpp"
#include "fault/degradation.hpp"
#include "fault/fault_plan.hpp"
#include "fault/heartbeat.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"

namespace mvc::fault {
namespace {

struct TwoNodes {
    sim::Simulator sim;
    net::Network net{sim};
    net::NodeId a{};
    net::NodeId b{};

    explicit TwoNodes(std::uint64_t seed = 1, net::LinkParams params = {}) : sim(seed) {
        a = net.add_node("a", net::Region::HongKong);
        b = net.add_node("b", net::Region::HongKong);
        net.connect(a, b, params);
    }
};

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlanTest, RandomizeIsDeterministicForSeed) {
    const auto build = [](std::uint64_t seed) {
        TwoNodes t{seed};
        FaultPlan plan{t.net};
        const std::array<std::pair<net::NodeId, net::NodeId>, 1> links{{{t.a, t.b}}};
        const std::array<net::NodeId, 2> nodes{t.a, t.b};
        FaultModel model;
        model.node_crashes_per_min = 0.5;
        plan.randomize(model, links, nodes, sim::Time::zero(),
                       sim::Time::seconds(600.0));
        return plan.to_string();
    };
    const std::string first = build(99);
    const std::string second = build(99);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    // A different seed draws a different schedule.
    EXPECT_NE(first, build(100));
}

TEST(FaultPlanTest, LinkOutageTakesLinkDownAndRestoresIt) {
    TwoNodes t;
    FaultPlan plan{t.net};
    plan.link_outage(t.a, t.b, sim::Time::seconds(1.0), sim::Time::seconds(2.0));
    plan.arm();

    t.sim.run_until(sim::Time::seconds(0.5));
    EXPECT_TRUE(t.net.link_up(t.a, t.b));
    t.sim.run_until(sim::Time::seconds(1.5));
    EXPECT_FALSE(t.net.link_up(t.a, t.b));
    EXPECT_FALSE(t.net.send(t.a, t.b, 100, "x", 1));
    t.sim.run_until(sim::Time::seconds(3.5));
    EXPECT_TRUE(t.net.link_up(t.a, t.b));
    EXPECT_TRUE(t.net.send(t.a, t.b, 100, "x", 1));
    EXPECT_EQ(plan.injected(), 2u);
}

TEST(FaultPlanTest, OverlappingBurstAndSpikeRestoreIndependently) {
    net::LinkParams base;
    base.latency = sim::Time::ms(10);
    base.loss = 0.01;
    TwoNodes t{1, base};

    FaultPlan plan{t.net};
    // Burst [1, 5), spike [2, 3): the spike ends while the burst is active.
    plan.loss_burst(t.a, t.b, sim::Time::seconds(1.0), sim::Time::seconds(4.0), 0.5);
    plan.latency_spike(t.a, t.b, sim::Time::seconds(2.0), sim::Time::seconds(1.0),
                       sim::Time::ms(100));
    plan.arm();

    t.sim.run_until(sim::Time::seconds(2.5));
    EXPECT_DOUBLE_EQ(t.net.link(t.a, t.b)->params().loss, 0.5);
    EXPECT_EQ(t.net.link(t.a, t.b)->params().latency, sim::Time::ms(110));
    t.sim.run_until(sim::Time::seconds(3.5));
    // Spike over: latency restored, burst loss still in force.
    EXPECT_EQ(t.net.link(t.a, t.b)->params().latency, sim::Time::ms(10));
    EXPECT_DOUBLE_EQ(t.net.link(t.a, t.b)->params().loss, 0.5);
    t.sim.run_until(sim::Time::seconds(5.5));
    EXPECT_DOUBLE_EQ(t.net.link(t.a, t.b)->params().loss, 0.01);
    EXPECT_EQ(t.net.link(t.a, t.b)->params().latency, sim::Time::ms(10));
}

TEST(FaultPlanTest, NodeCrashDropsTrafficBothWays) {
    TwoNodes t;
    FaultPlan plan{t.net};
    plan.node_outage(t.b, sim::Time::seconds(1.0), sim::Time::seconds(1.0));
    plan.arm();

    int received = 0;
    t.net.set_handler(t.b, [&](net::Packet&&) { ++received; });

    t.sim.run_until(sim::Time::seconds(1.5));
    EXPECT_FALSE(t.net.node_up(t.b));
    EXPECT_FALSE(t.net.send(t.a, t.b, 64, "x", 1));
    EXPECT_FALSE(t.net.send(t.b, t.a, 64, "x", 1));
    t.sim.run_until(sim::Time::seconds(2.5));
    EXPECT_TRUE(t.net.node_up(t.b));
    EXPECT_TRUE(t.net.send(t.a, t.b, 64, "x", 1));
    t.sim.run_until(sim::Time::seconds(3.0));
    EXPECT_EQ(received, 1);
}

TEST(FaultPlanTest, ArmTwiceThrows) {
    TwoNodes t;
    FaultPlan plan{t.net};
    plan.link_outage(t.a, t.b, sim::Time::seconds(1.0), sim::Time::seconds(1.0));
    plan.arm();
    EXPECT_THROW(plan.arm(), std::logic_error);
}

// ------------------------------------------------------------- bounded ARQ

TEST(ReliableChannelTest, GivesUpAfterMaxTransmissions) {
    TwoNodes t;
    net::PacketDemux src{t.net, t.a};
    net::PacketDemux dst{t.net, t.b};
    net::ReliableOptions opt;
    opt.rto_initial = sim::Time::ms(50);
    opt.rto_min = sim::Time::ms(50);
    opt.rto_max = sim::Time::ms(200);
    opt.max_transmissions = 4;
    net::ReliableChannel ch{t.net, src, dst, "data", opt};

    int delivered = 0;
    int failed_tx = 0;
    int failed_payload = 0;
    ch.on_delivered([&](net::Payload, sim::Time, int) { ++delivered; });
    ch.on_failed([&](net::Payload payload, sim::Time, int tx) {
        failed_tx = tx;
        failed_payload = payload.take<int>();
    });

    t.net.set_link_up(t.a, t.b, false);
    ch.send(256, 77);
    t.sim.run_until(sim::Time::seconds(10.0));

    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(ch.failed_count(), 1u);
    EXPECT_EQ(failed_tx, 4);
    EXPECT_EQ(failed_payload, 77);
    EXPECT_EQ(ch.in_flight(), 0u);
    EXPECT_EQ(t.net.metrics().counter("arq.failed", {{"flow", "data"}}), 1u);
}

TEST(ReliableChannelTest, BackoffIsCappedByRtoMax) {
    TwoNodes t;
    net::PacketDemux src{t.net, t.a};
    net::PacketDemux dst{t.net, t.b};
    net::ReliableOptions opt;
    opt.rto_initial = sim::Time::ms(100);
    opt.rto_min = sim::Time::ms(100);
    opt.rto_max = sim::Time::ms(200);
    opt.max_transmissions = 6;
    net::ReliableChannel ch{t.net, src, dst, "data", opt};

    sim::Time failed_at = sim::Time::zero();
    ch.on_failed([&](net::Payload, sim::Time, int) { failed_at = t.sim.now(); });

    t.net.set_link_up(t.a, t.b, false);
    ch.send(256, 1);
    t.sim.run_until(sim::Time::seconds(60.0));

    // Without the cap the exponential schedule would reach 100ms * 2^5 =
    // 3.2 s for the last wait alone; capped at 200 ms the five waits total
    // at most 1 s.
    EXPECT_GT(failed_at, sim::Time::zero());
    EXPECT_LE(failed_at, sim::Time::seconds(1.1));
}

TEST(ReliableChannelTest, RecoversWhenLinkComesBack) {
    TwoNodes t;
    net::PacketDemux src{t.net, t.a};
    net::PacketDemux dst{t.net, t.b};
    net::ReliableOptions opt;
    opt.rto_initial = sim::Time::ms(100);
    opt.rto_min = sim::Time::ms(50);
    net::ReliableChannel ch{t.net, src, dst, "data", opt};

    std::vector<int> got;
    ch.on_delivered([&](net::Payload p, sim::Time, int) { got.push_back(p.take<int>()); });

    t.net.set_link_up(t.a, t.b, false);
    ch.send(256, 5);
    t.sim.run_until(sim::Time::ms(300));
    t.net.set_link_up(t.a, t.b, true);
    t.sim.run_until(sim::Time::seconds(5.0));

    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 5);
    EXPECT_EQ(ch.failed_count(), 0u);
}

// --------------------------------------------------------------- heartbeat

struct HeartbeatPair {
    TwoNodes t;
    net::PacketDemux demux_a;
    net::PacketDemux demux_b;
    HeartbeatMonitor mon_a;
    HeartbeatMonitor mon_b;

    explicit HeartbeatPair(HeartbeatParams params, net::LinkParams link = {})
        : t{1, link},
          demux_a{t.net, t.a},
          demux_b{t.net, t.b},
          mon_a{t.net, demux_a, params, "a"},
          mon_b{t.net, demux_b, params, "b"} {
        mon_a.watch(t.b);
        mon_b.watch(t.a);
        mon_a.start();
        mon_b.start();
    }
};

HeartbeatParams fast_heartbeat() {
    HeartbeatParams p;
    p.enabled = true;
    p.interval = sim::Time::ms(50);
    p.timeout = sim::Time::ms(200);
    return p;
}

TEST(HeartbeatTest, PeersStayAliveOnHealthyLink) {
    HeartbeatPair hb{fast_heartbeat()};
    hb.t.sim.run_until(sim::Time::seconds(5.0));
    EXPECT_TRUE(hb.mon_a.alive(hb.t.b));
    EXPECT_TRUE(hb.mon_b.alive(hb.t.a));
    EXPECT_EQ(hb.mon_a.failovers(), 0u);
    EXPECT_EQ(hb.mon_b.failovers(), 0u);
}

TEST(HeartbeatTest, FailoverWithinTimeoutAndFailbackOnRecovery) {
    HeartbeatPair hb{fast_heartbeat()};
    std::vector<std::pair<net::NodeId, bool>> transitions;
    hb.mon_a.on_peer_state([&](net::NodeId peer, bool alive) {
        transitions.emplace_back(peer, alive);
    });

    hb.t.sim.run_until(sim::Time::seconds(2.0));
    hb.t.net.set_link_up(hb.t.a, hb.t.b, false);
    // Detection takes at most timeout + one sweep interval.
    hb.t.sim.run_until(sim::Time::seconds(2.0) + hb.mon_a.params().timeout +
                       2 * hb.mon_a.params().interval);
    EXPECT_FALSE(hb.mon_a.alive(hb.t.b));
    EXPECT_FALSE(hb.mon_b.alive(hb.t.a));
    EXPECT_EQ(hb.mon_a.failovers(), 1u);
    ASSERT_EQ(transitions.size(), 1u);
    EXPECT_EQ(transitions[0], (std::pair<net::NodeId, bool>{hb.t.b, false}));
    // Dead peers do not pollute the congestion signal.
    EXPECT_DOUBLE_EQ(hb.mon_a.worst_loss(), 0.0);

    hb.t.net.set_link_up(hb.t.a, hb.t.b, true);
    hb.t.sim.run_until(hb.t.sim.now() + sim::Time::seconds(1.0));
    EXPECT_TRUE(hb.mon_a.alive(hb.t.b));
    EXPECT_EQ(hb.mon_a.failbacks(), 1u);
    ASSERT_EQ(transitions.size(), 2u);
    EXPECT_EQ(transitions[1], (std::pair<net::NodeId, bool>{hb.t.b, true}));
}

TEST(HeartbeatTest, SequenceGapsEstimateLinkLoss) {
    net::LinkParams lossy;
    lossy.loss = 0.3;
    HeartbeatParams params = fast_heartbeat();
    params.timeout = sim::Time::seconds(1.0);  // survive loss runs
    HeartbeatPair hb{params, lossy};
    hb.t.sim.run_until(sim::Time::seconds(30.0));
    EXPECT_TRUE(hb.mon_a.alive(hb.t.b));
    EXPECT_GT(hb.mon_a.loss_estimate(hb.t.b), 0.1);
    EXPECT_LT(hb.mon_a.loss_estimate(hb.t.b), 0.5);
    EXPECT_GT(hb.mon_a.worst_loss(), 0.1);
}

// ------------------------------------------------------------- degradation

TEST(DegradationTest, StepsDownAfterHoldAndBackUpOnRecovery) {
    DegradationParams p;
    p.enter_loss = 0.10;
    p.exit_loss = 0.02;
    p.hold = sim::Time::seconds(1.0);
    DegradationPolicy policy{p};

    // Loss above enter but not yet held long enough: no change.
    EXPECT_FALSE(policy.update(0.2, sim::Time::seconds(0.0)));
    EXPECT_FALSE(policy.update(0.2, sim::Time::seconds(0.5)));
    EXPECT_EQ(policy.level(), 0);
    // Hold elapsed: one step down.
    EXPECT_TRUE(policy.update(0.2, sim::Time::seconds(1.0)));
    EXPECT_EQ(policy.level(), 1);
    EXPECT_DOUBLE_EQ(policy.rate_scale(), 0.5);
    EXPECT_DOUBLE_EQ(policy.threshold_scale(), 2.0);
    // Each further step needs its own hold.
    EXPECT_FALSE(policy.update(0.2, sim::Time::seconds(1.5)));
    EXPECT_TRUE(policy.update(0.2, sim::Time::seconds(2.0)));
    EXPECT_EQ(policy.level(), 2);

    // In-band loss resets both clocks; nothing happens.
    EXPECT_FALSE(policy.update(0.05, sim::Time::seconds(2.5)));
    EXPECT_FALSE(policy.update(0.05, sim::Time::seconds(9.0)));
    EXPECT_EQ(policy.level(), 2);

    // Sustained recovery steps back up one level per hold.
    EXPECT_FALSE(policy.update(0.0, sim::Time::seconds(10.0)));
    EXPECT_TRUE(policy.update(0.0, sim::Time::seconds(11.0)));
    EXPECT_EQ(policy.level(), 1);
    EXPECT_TRUE(policy.update(0.0, sim::Time::seconds(12.0)));
    EXPECT_EQ(policy.level(), 0);
    EXPECT_FALSE(policy.update(0.0, sim::Time::seconds(13.0)));
    EXPECT_EQ(policy.level(), 0);
}

TEST(DegradationTest, ZeroEnterRttDisablesDelayCriterion) {
    DegradationParams p;
    p.enter_loss = 0.10;
    p.exit_loss = 0.02;
    p.enter_rtt_ms = 0.0;  // delay-ignored mode
    p.exit_rtt_ms = 0.0;
    p.hold = sim::Time::seconds(1.0);
    DegradationPolicy policy{p};

    // Pathological delay with clean loss: the disabled criterion must never
    // fire, no matter how long it persists.
    for (int s = 0; s <= 10; ++s)
        EXPECT_FALSE(policy.update(0.0, 5000.0, sim::Time::seconds(s)));
    EXPECT_EQ(policy.level(), 0);

    // The nonzero loss threshold still degrades on its own...
    EXPECT_FALSE(policy.update(0.2, 5000.0, sim::Time::seconds(11.0)));
    EXPECT_TRUE(policy.update(0.2, 5000.0, sim::Time::seconds(12.0)));
    EXPECT_EQ(policy.level(), 1);

    // ...and recovery only consults loss: huge delay does not hold the
    // level down once loss is back under exit_loss.
    EXPECT_FALSE(policy.update(0.0, 5000.0, sim::Time::seconds(13.0)));
    EXPECT_TRUE(policy.update(0.0, 5000.0, sim::Time::seconds(14.0)));
    EXPECT_EQ(policy.level(), 0);
}

TEST(DegradationTest, LevelIsCappedAndLodFollows) {
    DegradationParams p;
    p.hold = sim::Time::zero();
    p.max_level = 2;
    DegradationPolicy policy{p};
    EXPECT_EQ(policy.lod(), avatar::LodLevel::High);
    policy.update(0.5, sim::Time::seconds(1.0));
    policy.update(0.5, sim::Time::seconds(2.0));
    policy.update(0.5, sim::Time::seconds(3.0));
    EXPECT_EQ(policy.level(), 2);
    EXPECT_EQ(policy.lod(), avatar::coarser(avatar::coarser(avatar::LodLevel::High)));
}

// --------------------------------------------- end-to-end failover routing

TEST(FailoverIntegrationTest, EdgeStreamsSurviveLinkOutageViaCloudRelay) {
    core::ClassroomConfig config;
    config.seed = 11;
    config.heartbeat.enabled = true;
    config.heartbeat.interval = sim::Time::ms(50);
    config.heartbeat.timeout = sim::Time::ms(200);
    core::MetaverseClassroom classroom{config};
    const auto cwb = classroom.add_physical_student(0);
    classroom.add_physical_student(1);
    classroom.start();
    classroom.run_for(sim::Time::seconds(5.0));

    auto& net = classroom.network();
    auto& edge_gz = classroom.edge_server(1);
    const net::NodeId edge0 = classroom.edge_server(0).node();
    const net::NodeId edge1 = edge_gz.node();
    ASSERT_TRUE(edge_gz.peer_alive(edge0));
    const std::uint64_t before = edge_gz.remote_update_count(cwb);
    ASSERT_GT(before, 0u);

    // Cut the direct edge-edge link for 5 s.
    net.set_link_up(edge0, edge1, false);
    classroom.run_for(sim::Time::seconds(5.0));

    // Both edges detected the outage, and the CWB student's stream kept
    // flowing into GZ through the cloud relay.
    EXPECT_FALSE(edge_gz.peer_alive(edge0));
    EXPECT_FALSE(classroom.edge_server(0).peer_alive(edge1));
    const std::uint64_t during = edge_gz.remote_update_count(cwb);
    EXPECT_GT(during, before);
    EXPECT_GT(classroom.edge_server(0).relayed_out(), 0u);
    EXPECT_GT(classroom.cloud_server().relayed_for_failover(), 0u);

    // Restore: direct path resumes, relay traffic stops growing.
    net.set_link_up(edge0, edge1, true);
    classroom.run_for(sim::Time::seconds(2.0));
    EXPECT_TRUE(edge_gz.peer_alive(edge0));
    ASSERT_NE(classroom.edge_server(0).heartbeat(), nullptr);
    EXPECT_GE(classroom.edge_server(0).heartbeat()->failbacks(), 1u);
    const std::uint64_t relayed_at_restore = classroom.edge_server(0).relayed_out();
    classroom.run_for(sim::Time::seconds(2.0));
    EXPECT_GT(edge_gz.remote_update_count(cwb), during);
    EXPECT_EQ(classroom.edge_server(0).relayed_out(), relayed_at_restore);
    classroom.stop();
}

TEST(FailoverIntegrationTest, HeartbeatsOffByDefaultCostNothing) {
    core::ClassroomConfig config;
    config.seed = 3;
    core::MetaverseClassroom classroom{config};
    classroom.add_physical_student(0);
    classroom.start();
    classroom.run_for(sim::Time::seconds(2.0));
    EXPECT_EQ(classroom.edge_server(0).heartbeat(), nullptr);
    EXPECT_EQ(classroom.network().metrics().counter("net.tx_bytes.hb"), 0u);
    classroom.stop();
}

}  // namespace
}  // namespace mvc::fault
