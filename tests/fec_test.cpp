// Tests for the FEC stack: GF(256) field algebra, the Reed-Solomon erasure
// codec (property: any k of k+r shards reconstruct), adaptive redundancy,
// and the packet-level FecStream over a lossy simulated link.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "net/fec.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mvc::net {
namespace {

// --------------------------------------------------------------------- gf256

TEST(Gf256Test, MulByZeroAndOne) {
    for (int a = 0; a < 256; ++a) {
        const auto x = static_cast<std::uint8_t>(a);
        EXPECT_EQ(gf256::mul(x, 0), 0);
        EXPECT_EQ(gf256::mul(0, x), 0);
        EXPECT_EQ(gf256::mul(x, 1), x);
    }
}

TEST(Gf256Test, MulCommutativeSampled) {
    std::mt19937 gen{1};
    for (int i = 0; i < 2000; ++i) {
        const auto a = static_cast<std::uint8_t>(gen());
        const auto b = static_cast<std::uint8_t>(gen());
        EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
    }
}

TEST(Gf256Test, MulAssociativeSampled) {
    std::mt19937 gen{2};
    for (int i = 0; i < 2000; ++i) {
        const auto a = static_cast<std::uint8_t>(gen());
        const auto b = static_cast<std::uint8_t>(gen());
        const auto c = static_cast<std::uint8_t>(gen());
        EXPECT_EQ(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
    }
}

TEST(Gf256Test, EveryNonzeroHasInverse) {
    for (int a = 1; a < 256; ++a) {
        const auto x = static_cast<std::uint8_t>(a);
        EXPECT_EQ(gf256::mul(x, gf256::inv(x)), 1) << "a=" << a;
    }
}

TEST(Gf256Test, DivisionInvertsMultiplication) {
    std::mt19937 gen{3};
    for (int i = 0; i < 2000; ++i) {
        const auto a = static_cast<std::uint8_t>(gen());
        const auto b = static_cast<std::uint8_t>(gen() | 1);  // nonzero-ish
        if (b == 0) continue;
        EXPECT_EQ(gf256::div(gf256::mul(a, b), b), a);
    }
}

TEST(Gf256Test, DivideByZeroThrows) {
    EXPECT_THROW((void)gf256::div(5, 0), std::domain_error);
}

TEST(Gf256Test, ExpIsPeriodic255) {
    for (int e = 0; e < 255; ++e) {
        EXPECT_EQ(gf256::exp(e), gf256::exp(e + 255));
    }
    EXPECT_EQ(gf256::exp(0), 1);
}

// --------------------------------------------------------------- ReedSolomon

std::vector<std::vector<std::uint8_t>> random_shards(std::size_t k, std::size_t len,
                                                     std::uint32_t seed) {
    std::mt19937 gen{seed};
    std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(len));
    for (auto& shard : data) {
        for (auto& b : shard) b = static_cast<std::uint8_t>(gen());
    }
    return data;
}

struct RsParam {
    std::size_t k;
    std::size_t r;
};

class ReedSolomonParamTest : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonParamTest, AnyKOfNReconstructs) {
    const auto [k, r] = GetParam();
    const ReedSolomon rs{k, r};
    const auto data = random_shards(k, 64, static_cast<std::uint32_t>(k * 100 + r));
    const auto parity = rs.encode(data);
    ASSERT_EQ(parity.size(), r);

    std::mt19937 gen{99};
    for (int trial = 0; trial < 20; ++trial) {
        // Erase exactly r random shards (the worst recoverable case).
        std::vector<std::optional<std::vector<std::uint8_t>>> shards;
        for (const auto& d : data) shards.emplace_back(d);
        for (const auto& p : parity) shards.emplace_back(p);
        std::set<std::size_t> erased;
        while (erased.size() < r) erased.insert(gen() % (k + r));
        for (const std::size_t e : erased) shards[e].reset();

        ASSERT_TRUE(rs.reconstruct(shards));
        for (std::size_t i = 0; i < k; ++i) {
            ASSERT_TRUE(shards[i].has_value());
            EXPECT_EQ(*shards[i], data[i]) << "shard " << i;
        }
        // Parity shards are refilled to their original values too.
        for (std::size_t p = 0; p < r; ++p) {
            ASSERT_TRUE(shards[k + p].has_value());
            EXPECT_EQ(*shards[k + p], parity[p]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReedSolomonParamTest,
                         ::testing::Values(RsParam{1, 1}, RsParam{2, 1}, RsParam{4, 2},
                                           RsParam{8, 2}, RsParam{8, 4}, RsParam{10, 3},
                                           RsParam{16, 4}, RsParam{20, 10}));

TEST(ReedSolomonTest, TooManyErasuresFails) {
    const ReedSolomon rs{4, 2};
    const auto data = random_shards(4, 32, 7);
    const auto parity = rs.encode(data);
    std::vector<std::optional<std::vector<std::uint8_t>>> shards;
    for (const auto& d : data) shards.emplace_back(d);
    for (const auto& p : parity) shards.emplace_back(p);
    shards[0].reset();
    shards[1].reset();
    shards[4].reset();  // 3 erasures > r=2
    EXPECT_FALSE(rs.reconstruct(shards));
}

TEST(ReedSolomonTest, NoErasuresIsIdentity) {
    const ReedSolomon rs{3, 2};
    const auto data = random_shards(3, 16, 8);
    auto parity = rs.encode(data);
    std::vector<std::optional<std::vector<std::uint8_t>>> shards;
    for (const auto& d : data) shards.emplace_back(d);
    for (const auto& p : parity) shards.emplace_back(p);
    EXPECT_TRUE(rs.reconstruct(shards));
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(*shards[i], data[i]);
}

TEST(ReedSolomonTest, EncodingIsLinear) {
    // RS is linear over GF(256): parity(a XOR b) == parity(a) XOR parity(b).
    const ReedSolomon rs{4, 2};
    const auto a = random_shards(4, 8, 9);
    const auto b = random_shards(4, 8, 10);
    std::vector<std::vector<std::uint8_t>> sum(4, std::vector<std::uint8_t>(8));
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
            sum[i][j] = static_cast<std::uint8_t>(a[i][j] ^ b[i][j]);
        }
    }
    const auto pa = rs.encode(a);
    const auto pb = rs.encode(b);
    const auto ps = rs.encode(sum);
    for (std::size_t p = 0; p < 2; ++p) {
        for (std::size_t j = 0; j < 8; ++j) {
            EXPECT_EQ(ps[p][j], static_cast<std::uint8_t>(pa[p][j] ^ pb[p][j]));
        }
    }
}

TEST(ReedSolomonTest, InvalidConstructionThrows) {
    EXPECT_THROW(ReedSolomon(0, 1), std::invalid_argument);
    EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
}

TEST(ReedSolomonTest, UnequalShardSizesThrow) {
    const ReedSolomon rs{2, 1};
    std::vector<std::vector<std::uint8_t>> data{{1, 2, 3}, {4, 5}};
    EXPECT_THROW(rs.encode(data), std::invalid_argument);
}

TEST(ReedSolomonTest, WrongSlotCountThrows) {
    const ReedSolomon rs{2, 1};
    std::vector<std::optional<std::vector<std::uint8_t>>> shards(2);
    EXPECT_THROW(rs.reconstruct(shards), std::invalid_argument);
}

// ------------------------------------------------------- AdaptiveRedundancy

TEST(AdaptiveRedundancyTest, LossDrivesParityUp) {
    AdaptiveRedundancy ar{2.0, 16};
    for (int i = 0; i < 200; ++i) ar.observe(false);
    const std::size_t calm = ar.parity_for_block(8);
    for (int i = 0; i < 200; ++i) ar.observe(i % 4 == 0);  // 25% loss
    const std::size_t stormy = ar.parity_for_block(8);
    EXPECT_GT(stormy, calm);
    EXPECT_NEAR(ar.loss_estimate(), 0.25, 0.1);
}

TEST(AdaptiveRedundancyTest, ParityBounded) {
    AdaptiveRedundancy ar{10.0, 6};
    for (int i = 0; i < 100; ++i) ar.observe(true);
    EXPECT_LE(ar.parity_for_block(32), 6u);
    AdaptiveRedundancy calm{2.0, 16};
    for (int i = 0; i < 100; ++i) calm.observe(false);
    EXPECT_GE(calm.parity_for_block(8), 1u);
}

// ------------------------------------------------------------------ FecStream

struct FecFixture : ::testing::Test {
    sim::Simulator sim{31};
    Network net{sim};
    NodeId a = net.add_node("a", Region::HongKong);
    NodeId b = net.add_node("b", Region::Guangzhou);
    PacketDemux demux_a{net, a};
    PacketDemux demux_b{net, b};

    void connect(double loss) {
        LinkParams params;
        params.latency = sim::Time::ms(5);
        params.loss = loss;
        net.connect(a, b, params);
    }
};

TEST_F(FecFixture, LosslessDeliversAllDirect) {
    connect(0.0);
    FecStream fec{net, demux_a, demux_b, "video"};
    int direct = 0;
    int recovered = 0;
    fec.on_delivered([&](net::Payload, sim::Time, bool d) { d ? ++direct : ++recovered; });
    for (int i = 0; i < 64; ++i) fec.send(1000, i);
    fec.flush();
    sim.run_all();
    EXPECT_EQ(direct, 64);
    EXPECT_EQ(recovered, 0);
    EXPECT_EQ(fec.unrecoverable(), 0u);
    EXPECT_GT(fec.parity_packets_sent(), 0u);
}

TEST_F(FecFixture, RecoversLossesWithoutRetransmission) {
    connect(0.05);
    FecStreamOptions opts;
    opts.block_size = 8;
    opts.parity = 3;
    FecStream fec{net, demux_a, demux_b, "video", opts};
    std::set<int> delivered;
    fec.on_delivered(
        [&](net::Payload payload, sim::Time, bool) { delivered.insert(payload.take<int>()); });
    for (int i = 0; i < 800; ++i) {
        fec.send(1000, i);
        if (i % 8 == 7) sim.run_until(sim.now() + sim::Time::ms(10));
    }
    fec.flush();
    sim.run_all();
    EXPECT_GT(fec.recovered(), 0u);
    // 5% loss against 3-of-11 parity: essentially everything arrives.
    EXPECT_GT(delivered.size(), 790u);
}

TEST_F(FecFixture, HeavyLossExceedsParityAndReportsLost) {
    connect(0.5);
    FecStreamOptions opts;
    opts.block_size = 8;
    opts.parity = 1;
    opts.block_timeout = sim::Time::ms(50);
    FecStream fec{net, demux_a, demux_b, "video", opts};
    int lost = 0;
    fec.on_lost([&](net::Payload, sim::Time) { ++lost; });
    for (int i = 0; i < 200; ++i) fec.send(500, i);
    fec.flush();
    sim.run_until(sim.now() + sim::Time::seconds(5));
    EXPECT_GT(lost, 0);
    EXPECT_EQ(fec.unrecoverable(), static_cast<std::uint64_t>(lost));
}

TEST_F(FecFixture, RedundancyOverheadMatchesConfig) {
    connect(0.0);
    FecStreamOptions opts;
    opts.block_size = 8;
    opts.parity = 2;
    FecStream fec{net, demux_a, demux_b, "video", opts};
    for (int i = 0; i < 80; ++i) fec.send(100, i);
    sim.run_all();
    EXPECT_NEAR(fec.redundancy_overhead(), 0.25, 1e-9);
}

TEST_F(FecFixture, AdaptiveModeRampsParityUnderLoss) {
    connect(0.15);
    FecStreamOptions opts;
    opts.block_size = 8;
    opts.adaptive = true;
    FecStream fec{net, demux_a, demux_b, "video", opts};
    fec.on_delivered([](net::Payload, sim::Time, bool) {});
    for (int i = 0; i < 2000; ++i) {
        fec.send(500, i);
        if (i % 8 == 7) sim.run_until(sim.now() + sim::Time::ms(30));
    }
    fec.flush();
    sim.run_all();
    // At 15% loss the adaptive controller must spend clearly more than the
    // 1-parity minimum (12.5% overhead on k=8).
    EXPECT_GT(fec.redundancy_overhead(), 0.15);
}

TEST_F(FecFixture, PartialBlockFlushStillProtected) {
    connect(0.0);
    FecStreamOptions opts;
    opts.block_size = 8;
    opts.parity = 2;
    FecStream fec{net, demux_a, demux_b, "video", opts};
    int direct = 0;
    fec.on_delivered([&](net::Payload, sim::Time, bool) { ++direct; });
    fec.send(100, 1);
    fec.send(100, 2);
    fec.flush();  // block of 2 data + 2 parity
    sim.run_all();
    EXPECT_EQ(direct, 2);
    EXPECT_EQ(fec.parity_packets_sent(), 2u);
}

}  // namespace
}  // namespace mvc::net
