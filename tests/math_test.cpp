// Unit + property tests for the math substrate: vectors, quaternions, poses,
// dead reckoning, and the statistics toolkit.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "math/pose.hpp"
#include "math/quat.hpp"
#include "math/stats.hpp"
#include "math/vec3.hpp"

namespace mvc::math {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec3Test, DefaultIsZero) {
    const Vec3 v;
    EXPECT_EQ(v, Vec3::zero());
    EXPECT_DOUBLE_EQ(v.norm(), 0.0);
}

TEST(Vec3Test, ArithmeticBasics) {
    const Vec3 a{1, 2, 3};
    const Vec3 b{-4, 5, 0.5};
    EXPECT_EQ(a + b, Vec3(-3, 7, 3.5));
    EXPECT_EQ(a - b, Vec3(5, -3, 2.5));
    EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
    EXPECT_EQ(2.0 * a, a * 2.0);
    EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
    EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3Test, DotAndCross) {
    const Vec3 x = Vec3::unit_x();
    const Vec3 y = Vec3::unit_y();
    EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
    EXPECT_EQ(x.cross(y), Vec3::unit_z());
    EXPECT_EQ(y.cross(x), -Vec3::unit_z());
    const Vec3 a{1, 2, 3};
    EXPECT_DOUBLE_EQ(a.dot(a), a.norm_sq());
}

TEST(Vec3Test, NormalizedHasUnitLength) {
    const Vec3 a{3, -4, 12};
    EXPECT_NEAR(a.normalized().norm(), 1.0, 1e-12);
    EXPECT_EQ(Vec3::zero().normalized(), Vec3::zero());
}

TEST(Vec3Test, DistanceIsSymmetric) {
    const Vec3 a{1, 1, 1};
    const Vec3 b{4, 5, 1};
    EXPECT_DOUBLE_EQ(a.distance_to(b), 5.0);
    EXPECT_DOUBLE_EQ(b.distance_to(a), 5.0);
}

TEST(Vec3Test, LerpEndpointsAndMidpoint) {
    const Vec3 a{0, 0, 0};
    const Vec3 b{2, 4, 6};
    EXPECT_EQ(lerp(a, b, 0.0), a);
    EXPECT_EQ(lerp(a, b, 1.0), b);
    EXPECT_EQ(lerp(a, b, 0.5), Vec3(1, 2, 3));
}

TEST(QuatTest, IdentityRotatesNothing) {
    const Vec3 v{1, 2, 3};
    EXPECT_TRUE(approx_equal(Quat::identity().rotate(v), v));
}

TEST(QuatTest, AxisAngleQuarterTurn) {
    const Quat q = Quat::from_axis_angle(Vec3::unit_y(), kPi / 2.0);
    const Vec3 r = q.rotate(Vec3::unit_x());
    EXPECT_TRUE(approx_equal(r, -Vec3::unit_z(), 1e-9))
        << r.x << "," << r.y << "," << r.z;
}

TEST(QuatTest, RotationPreservesLength) {
    std::mt19937 gen{11};
    std::uniform_real_distribution<double> d{-1.0, 1.0};
    for (int i = 0; i < 100; ++i) {
        const Quat q = Quat::from_axis_angle({d(gen), d(gen), d(gen)}, d(gen) * kPi);
        const Vec3 v{d(gen) * 10, d(gen) * 10, d(gen) * 10};
        EXPECT_NEAR(q.rotate(v).norm(), v.norm(), 1e-9);
    }
}

TEST(QuatTest, ComposeMatchesSequentialRotation) {
    std::mt19937 gen{12};
    std::uniform_real_distribution<double> d{-1.0, 1.0};
    for (int i = 0; i < 100; ++i) {
        const Quat a = Quat::from_axis_angle({d(gen), d(gen), d(gen)}, d(gen) * kPi);
        const Quat b = Quat::from_axis_angle({d(gen), d(gen), d(gen)}, d(gen) * kPi);
        const Vec3 v{d(gen), d(gen), d(gen)};
        EXPECT_TRUE(approx_equal((a * b).rotate(v), a.rotate(b.rotate(v)), 1e-9));
    }
}

TEST(QuatTest, InverseUndoesRotation) {
    const Quat q = Quat::from_yaw_pitch_roll(0.3, -0.7, 1.1);
    const Vec3 v{2, -3, 5};
    EXPECT_TRUE(approx_equal(q.inverse().rotate(q.rotate(v)), v, 1e-9));
}

TEST(QuatTest, AngleOfAxisAngleRoundTrips) {
    for (const double angle : {0.1, 0.5, 1.0, 2.0, 3.0}) {
        const Quat q = Quat::from_axis_angle(Vec3::unit_z(), angle);
        EXPECT_NEAR(q.angle(), angle, 1e-9);
    }
}

TEST(QuatTest, AngularDistanceHandlesDoubleCover) {
    const Quat q = Quat::from_axis_angle(Vec3::unit_y(), 0.8);
    const Quat neg{-q.w, -q.x, -q.y, -q.z};
    EXPECT_NEAR(angular_distance(q, neg), 0.0, 1e-9);
}

TEST(QuatTest, YawExtraction) {
    for (const double yaw : {-2.0, -0.5, 0.0, 0.5, 2.0}) {
        const Quat q = Quat::from_axis_angle(Vec3::unit_y(), yaw);
        EXPECT_NEAR(q.yaw(), yaw, 1e-9);
    }
}

class SlerpParamTest : public ::testing::TestWithParam<double> {};

TEST_P(SlerpParamTest, StaysOnUnitSphereAndInterpolatesAngle) {
    const double t = GetParam();
    const Quat a = Quat::identity();
    const Quat b = Quat::from_axis_angle(Vec3::unit_y(), 1.6);
    const Quat s = slerp(a, b, t);
    EXPECT_NEAR(s.norm(), 1.0, 1e-12);
    EXPECT_NEAR(angular_distance(a, s), 1.6 * t, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Fractions, SlerpParamTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

TEST(SlerpTest, ShortestArcChosen) {
    const Quat a = Quat::from_axis_angle(Vec3::unit_y(), 0.1);
    const Quat b = Quat::from_axis_angle(Vec3::unit_y(), -0.1);
    // Halfway between +0.1 and -0.1 about y is identity, not the long way.
    EXPECT_NEAR(angular_distance(slerp(a, b, 0.5), Quat::identity()), 0.0, 1e-6);
}

TEST(SlerpTest, NearlyParallelFallsBackStably) {
    const Quat a = Quat::from_axis_angle(Vec3::unit_y(), 1e-8);
    const Quat b = Quat::identity();
    const Quat s = slerp(a, b, 0.5);
    EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(PoseTest, ComposeWithIdentity) {
    const Pose p{{1, 2, 3}, Quat::from_axis_angle(Vec3::unit_y(), 0.5)};
    EXPECT_TRUE(approx_equal(p.compose(Pose::identity()).position, p.position));
    EXPECT_TRUE(approx_equal(Pose::identity().compose(p).position, p.position));
}

TEST(PoseTest, ToLocalInvertsCompose) {
    std::mt19937 gen{13};
    std::uniform_real_distribution<double> d{-2.0, 2.0};
    for (int i = 0; i < 50; ++i) {
        const Pose frame{{d(gen), d(gen), d(gen)},
                         Quat::from_yaw_pitch_roll(d(gen), d(gen) / 2, d(gen) / 2)};
        const Pose local{{d(gen), d(gen), d(gen)},
                         Quat::from_yaw_pitch_roll(d(gen), 0, 0)};
        const Pose world = frame.compose(local);
        const Pose back = frame.to_local(world);
        EXPECT_TRUE(approx_equal(back.position, local.position, 1e-9));
        EXPECT_NEAR(angular_distance(back.orientation, local.orientation), 0.0, 1e-9);
    }
}

TEST(PoseTest, InterpolateEndpoints) {
    const Pose a{{0, 0, 0}, Quat::identity()};
    const Pose b{{4, 0, 0}, Quat::from_axis_angle(Vec3::unit_y(), 1.0)};
    EXPECT_TRUE(approx_equal(interpolate(a, b, 0.0).position, a.position));
    EXPECT_TRUE(approx_equal(interpolate(a, b, 1.0).position, b.position));
    EXPECT_TRUE(approx_equal(interpolate(a, b, 0.5).position, Vec3{2, 0, 0}));
}

TEST(PoseTest, PoseErrorZeroForIdentical) {
    const Pose p{{1, 2, 3}, Quat::from_axis_angle(Vec3::unit_x(), 0.4)};
    EXPECT_DOUBLE_EQ(pose_error(p, p), 0.0);
}

TEST(PoseTest, PoseErrorCombinesPositionAndAngle) {
    const Pose a{{0, 0, 0}, Quat::identity()};
    const Pose b{{1, 0, 0}, Quat::from_axis_angle(Vec3::unit_y(), 1.0)};
    EXPECT_NEAR(pose_error(a, b, 0.5), 1.0 + 0.5, 1e-9);
}

TEST(KinematicsTest, ExtrapolateLinear) {
    KinematicState k;
    k.pose.position = {1, 0, 0};
    k.linear_velocity = {2, 0, -1};
    const KinematicState next = k.extrapolate(0.5);
    EXPECT_TRUE(approx_equal(next.pose.position, Vec3{2, 0, -0.5}));
}

TEST(KinematicsTest, ExtrapolateAngular) {
    KinematicState k;
    k.angular_velocity = {0, kPi, 0};  // half-turn per second about y
    const KinematicState next = k.extrapolate(0.5);
    EXPECT_NEAR(next.pose.orientation.angle(), kPi / 2, 1e-9);
}

TEST(KinematicsTest, ZeroDtIsIdentity) {
    KinematicState k;
    k.pose.position = {5, 6, 7};
    k.linear_velocity = {1, 1, 1};
    k.angular_velocity = {0, 2, 0};
    const KinematicState same = k.extrapolate(0.0);
    EXPECT_TRUE(approx_equal(same.pose.position, k.pose.position));
    EXPECT_NEAR(angular_distance(same.pose.orientation, k.pose.orientation), 0.0, 1e-12);
}

// ----------------------------------------------------------------- statistics

TEST(RunningStatsTest, MeanVarianceMinMax) {
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
    std::mt19937 gen{17};
    std::normal_distribution<double> d{3.0, 2.0};
    RunningStats a, b, all;
    for (int i = 0; i < 500; ++i) {
        const double x = d(gen);
        (i % 2 == 0 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStatsTest, MergeWithEmpty) {
    RunningStats a;
    a.add(1.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleSeriesTest, ExactQuantiles) {
    SampleSeries s;
    for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.quantile(0.95), 95.05, 1e-9);
    EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleSeriesTest, EmptyAndSingle) {
    SampleSeries s;
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.median(), 42.0);
    EXPECT_DOUBLE_EQ(s.p99(), 42.0);
}

TEST(SampleSeriesTest, QuantileAfterMoreSamples) {
    SampleSeries s;
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.median(), 1.0);
    s.add(3.0);  // cache must invalidate
    EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(QuantileOfTest, UnsortedInputHandled) {
    const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile_of(xs, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile_of(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile_of(xs, 1.0), 5.0);
}

TEST(HistogramTest, BinningAndClamping) {
    Histogram h{0.0, 10.0, 10};
    h.add(-5.0);   // clamps to first bin
    h.add(0.5);
    h.add(9.99);
    h.add(25.0);   // clamps to last bin
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.count_in_bin(0), 2u);
    EXPECT_EQ(h.count_in_bin(9), 2u);
}

TEST(HistogramTest, CdfMonotone) {
    Histogram h{0.0, 100.0, 20};
    for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
    double prev = 0.0;
    for (double x = 0.0; x <= 100.0; x += 5.0) {
        const double c = h.cdf(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cdf(100.0), 1.0);
}

TEST(HistogramTest, InvalidConstruction) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(EwmaTest, ConvergesToConstant) {
    Ewma e{0.2};
    for (int i = 0; i < 100; ++i) e.add(7.0);
    EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(EwmaTest, FirstSampleSeeds) {
    Ewma e{0.5};
    EXPECT_FALSE(e.initialized());
    e.add(10.0);
    EXPECT_TRUE(e.initialized());
    EXPECT_DOUBLE_EQ(e.value(), 10.0);
    e.add(0.0);
    EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(EwmaTest, InvalidAlphaThrows) {
    EXPECT_THROW(Ewma{0.0}, std::invalid_argument);
    EXPECT_THROW(Ewma{1.5}, std::invalid_argument);
}

}  // namespace
}  // namespace mvc::math
