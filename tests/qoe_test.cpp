// The QoE control loop (src/qoe): ABR hysteresis over the bitrate ladder,
// tiled/foveated budget allocation invariants, the QoE score function, and
// the closed server/client feedback loop over a throttled chaos link.

#include <gtest/gtest.h>

#include "fault/degradation.hpp"
#include "media/video.hpp"
#include "net/chaos.hpp"
#include "net/network.hpp"
#include "qoe/abr.hpp"
#include "qoe/budget.hpp"
#include "qoe/media_client.hpp"
#include "qoe/score.hpp"
#include "qoe/service.hpp"
#include "sim/simulator.hpp"

namespace mvc::qoe {
namespace {

// ------------------------------------------------------------------- ABR

// Default ladder bitrates: 0.3e6, 0.8e6, 2.5e6, 5.0e6 (lowest first).
TEST(AbrTest, StartsAtTopAndNeverSwitchesOnCleanLink) {
    AbrController abr{media::default_ladder()};
    EXPECT_EQ(abr.rung(), abr.top_rung());
    for (int s = 0; s < 30; ++s) {
        // Goodput on a clean link sits at the encode rate, well below the
        // raw link capacity — that must not read as congestion.
        EXPECT_FALSE(abr.update(0.0, 20.0, 5.2e6, sim::Time::seconds(s)));
    }
    EXPECT_EQ(abr.rung(), abr.top_rung());
    EXPECT_EQ(abr.switches(), 0u);
}

TEST(AbrTest, FastDownDropsStraightToBestFitAfterHold) {
    AbrController abr{media::default_ladder()};
    // Sustained loss with a 1.5 Mb/s capacity estimate. Usable budget is
    // 0.85 * 1.5e6 - 5e4 = 1.225e6 -> best fit is the 0.8e6 rung (index 1).
    EXPECT_FALSE(abr.update(0.2, 50.0, 1.5e6, sim::Time::ms(0)));
    EXPECT_FALSE(abr.update(0.2, 50.0, 1.5e6, sim::Time::ms(250)));
    EXPECT_EQ(abr.rung(), abr.top_rung());  // hold_down not yet elapsed
    EXPECT_TRUE(abr.update(0.2, 50.0, 1.5e6, sim::Time::ms(500)));
    EXPECT_EQ(abr.rung(), 1);  // one switch, two rungs down
    EXPECT_EQ(abr.switches(), 1u);
}

TEST(AbrTest, DownWithoutCapacityEstimateStepsOneRung) {
    AbrController abr{media::default_ladder()};
    EXPECT_FALSE(abr.update(0.2, 0.0, 0.0, sim::Time::ms(0)));
    EXPECT_TRUE(abr.update(0.2, 0.0, 0.0, sim::Time::ms(600)));
    EXPECT_EQ(abr.rung(), abr.top_rung() - 1);  // blind drop: one step only
}

TEST(AbrTest, SlowUpOneRungAfterClearHoldAndOnlyWhenNextFits) {
    AbrController abr{media::default_ladder()};
    abr.update(0.2, 50.0, 1.5e6, sim::Time::ms(0));
    abr.update(0.2, 50.0, 1.5e6, sim::Time::ms(500));
    ASSERT_EQ(abr.rung(), 1);

    // Clear signal but the next rung (2.5e6) does not fit 1.5e6 capacity:
    // no probe up, ever.
    for (int s = 1; s <= 10; ++s)
        EXPECT_FALSE(abr.update(0.0, 10.0, 1.5e6, sim::Time::seconds(s)));
    EXPECT_EQ(abr.rung(), 1);

    // Capacity recovers to 4 Mb/s (usable 3.35e6 >= 2.5e6): the up-switch
    // still waits out hold_up, then moves exactly one rung.
    EXPECT_FALSE(abr.update(0.0, 10.0, 4.0e6, sim::Time::seconds(11)));
    EXPECT_FALSE(abr.update(0.0, 10.0, 4.0e6, sim::Time::seconds(13)));
    EXPECT_TRUE(abr.update(0.0, 10.0, 4.0e6, sim::Time::seconds(14)));
    EXPECT_EQ(abr.rung(), 2);
    EXPECT_EQ(abr.switches(), 2u);
}

TEST(AbrTest, HysteresisDampsAnOscillatingSignal) {
    AbrController abr{media::default_ladder()};
    // Loss toggles every 2 s for a minute — the classic oscillation bait.
    // The loss here is synthetic (it ignores the rung), so the congested
    // phases legitimately walk the controller to the floor; the point is
    // the walk is short and then *parks*: no clear phase lasts the 3 s
    // hold_up, so sixty seconds of flapping input yields two switches, not
    // fifteen round trips.
    for (int tick = 0; tick < 240; ++tick) {
        const sim::Time now = sim::Time::ms(250 * tick);
        const bool congested_phase = (tick / 8) % 2 == 0;
        abr.update(congested_phase ? 0.2 : 0.0, 30.0, 1.5e6, now);
    }
    EXPECT_EQ(abr.rung(), 0);
    EXPECT_LE(abr.switches(), 3u);
    EXPECT_LE(abr.switches_per_minute(sim::Time::seconds(60)), 3.0);
}

TEST(AbrTest, DelayCriterionDisabledWhenDownRttZero) {
    AbrParams p;  // down_rtt_ms == 0: delay ignored
    AbrController abr{media::default_ladder(), p};
    for (int s = 0; s < 10; ++s)
        EXPECT_FALSE(abr.update(0.0, 5000.0, 5.2e6, sim::Time::seconds(s)));
    EXPECT_EQ(abr.rung(), abr.top_rung());

    AbrParams q;
    q.down_rtt_ms = 200.0;
    q.up_rtt_ms = 80.0;
    AbrController abr2{media::default_ladder(), q};
    abr2.update(0.0, 500.0, 5.2e6, sim::Time::ms(0));
    EXPECT_TRUE(abr2.update(0.0, 500.0, 5.2e6, sim::Time::ms(600)));
    EXPECT_LT(abr2.rung(), abr2.top_rung());
}

TEST(AbrTest, InvalidLadderThrows) {
    EXPECT_THROW(AbrController{std::vector<media::VideoProfile>{}},
                 std::invalid_argument);
    std::vector<media::VideoProfile> descending{media::profile_1080p(),
                                                media::profile_180p()};
    EXPECT_THROW(AbrController{descending}, std::invalid_argument);
}

// ---------------------------------------------------------------- budget

TEST(BudgetTest, NoEstimateAndAmpleCapacityAllocateFullRates) {
    const BudgetAllocator alloc;
    const LodAllocation blind = alloc.allocate(0.0, 5.0e6, 4);
    ASSERT_EQ(blind.foveal.size(), 4u);
    for (std::size_t t = 0; t < 4; ++t) {
        EXPECT_DOUBLE_EQ(blind.foveal[t], 1.0);
        EXPECT_DOUBLE_EQ(blind.peripheral[t], 1.0);
    }
    // 10 Mb/s link, 5 Mb/s video: residual dwarfs avatar_full_bps.
    const LodAllocation ample = alloc.allocate(10.0e6, 5.0e6, 4);
    EXPECT_DOUBLE_EQ(ample.pressure, 1.0);
    for (std::size_t t = 0; t < 4; ++t) {
        EXPECT_DOUBLE_EQ(ample.foveal[t], 1.0);
        EXPECT_DOUBLE_EQ(ample.peripheral[t], 1.0);
    }
}

TEST(BudgetTest, SqueezedLinkDegradesByAttentionAndDistance) {
    const BudgetAllocator alloc;
    // 1 Mb/s link, 0.8 Mb/s video: residual 50 kb/s against a 200 kb/s
    // full-rate budget -> pressure 0.25.
    const LodAllocation a = alloc.allocate(1.0e6, 0.8e6, 4);
    EXPECT_NEAR(a.pressure, 0.25, 1e-9);
    for (std::size_t t = 0; t < 4; ++t) {
        // Attention: gazed-at cells always at least as fresh as periphery.
        EXPECT_GE(a.foveal[t], a.peripheral[t]);
        // Bounds: floor <= scale <= 1, nothing silenced outright.
        EXPECT_GE(a.peripheral[t], alloc.params().floor_scale);
        EXPECT_LE(a.foveal[t], 1.0);
        if (t > 0) {
            // Distance: far tiers collapse before near ones.
            EXPECT_LE(a.peripheral[t], a.peripheral[t - 1]);
            EXPECT_LE(a.foveal[t], a.foveal[t - 1]);
        }
    }
    // Monotone in capacity: more link, fresher avatars.
    const LodAllocation b = alloc.allocate(1.2e6, 0.8e6, 4);
    for (std::size_t t = 0; t < 4; ++t) {
        EXPECT_GE(b.peripheral[t], a.peripheral[t]);
        EXPECT_GE(b.foveal[t], a.foveal[t]);
    }
}

TEST(BudgetTest, VideoOverrunPinsAvatarsToTheFloor) {
    const BudgetAllocator alloc;
    // Video spend exceeds the whole safe budget: residual clamps to zero
    // and every scale sits on the floor — but never below it.
    const LodAllocation a = alloc.allocate(1.0e6, 2.5e6, 3);
    EXPECT_DOUBLE_EQ(a.pressure, alloc.params().floor_scale);
    for (std::size_t t = 0; t < 3; ++t) {
        EXPECT_GE(a.peripheral[t], alloc.params().floor_scale);
        EXPECT_GE(a.foveal[t], a.peripheral[t]);
    }
}

// ----------------------------------------------------------------- score

TEST(ScoreTest, PerfectSessionScores100AndComponentsCap) {
    QoeInputs in;
    in.session_seconds = 60.0;
    in.delivered_rung = 3;
    in.top_rung = 3;
    EXPECT_DOUBLE_EQ(qoe_score(in), 100.0);

    const ScoreParams p;
    // Stall at/above its cap costs exactly stall_weight, no more.
    QoeInputs stalled = in;
    stalled.stall_seconds = 60.0;  // way past cap (10% of session)
    EXPECT_DOUBLE_EQ(qoe_score(stalled), 100.0 - p.stall_weight);

    QoeInputs stale = in;
    stale.avatar_staleness_ms = 10 * p.staleness_cap_ms;
    EXPECT_DOUBLE_EQ(qoe_score(stale), 100.0 - p.staleness_weight);

    QoeInputs flapping = in;
    flapping.switches_per_minute = 100.0;
    EXPECT_DOUBLE_EQ(qoe_score(flapping), 100.0 - p.switch_weight);

    QoeInputs bottom = in;
    bottom.delivered_rung = 0;  // full ladder shortfall
    EXPECT_DOUBLE_EQ(qoe_score(bottom), 100.0 - p.tier_weight);

    // Every component pathological at once: clamped to zero, not negative.
    QoeInputs worst = stalled;
    worst.avatar_staleness_ms = 1e9;
    worst.switches_per_minute = 1e9;
    worst.delivered_rung = 0;
    EXPECT_EQ(qoe_score(worst), 0.0);
}

TEST(ScoreTest, PureFunctionIsDeterministic) {
    QoeInputs in;
    in.stall_seconds = 1.7;
    in.session_seconds = 42.0;
    in.avatar_staleness_ms = 333.0;
    in.switches_per_minute = 2.5;
    in.delivered_rung = 1;
    in.top_rung = 3;
    const double first = qoe_score(in);
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(qoe_score(in), first);
    EXPECT_GT(first, 0.0);
    EXPECT_LT(first, 100.0);
}

// ------------------------------------------- closed loop (service+client)

class QoeLoopTest : public ::testing::Test {
protected:
    QoeLoopTest() : sim_(7), inner_(sim_), chaos_(inner_) {
        server_ = chaos_.add_node("server", net::Region::HongKong);
        client_ = chaos_.add_node("client", net::Region::HongKong);
        inner_.connect(server_, client_, net::LinkParams{.latency = sim::Time::ms(8)});
        server_demux_ = std::make_unique<net::PacketDemux>(chaos_, server_);
        client_demux_ = std::make_unique<net::PacketDemux>(chaos_, client_);
        service_ = std::make_unique<QoeService>(chaos_, *server_demux_);
    }

    MediaClientConfig client_config() {
        MediaClientConfig mc;
        mc.enabled = true;
        mc.feedback_interval = sim::Time::ms(250);
        return mc;
    }

    sim::Simulator sim_;
    net::Network inner_;
    net::ChaosBackend chaos_;
    net::NodeId server_{};
    net::NodeId client_{};
    std::unique_ptr<net::PacketDemux> server_demux_;
    std::unique_ptr<net::PacketDemux> client_demux_;
    std::unique_ptr<QoeService> service_;
    fault::PathHealth health_;
};

TEST_F(QoeLoopTest, CleanLinkStaysAtTopRungWithZeroStall) {
    service_->add_client(client_, net::Priority::Realtime);
    MediaClient media{chaos_, *client_demux_, ParticipantId{1}, health_,
                      client_config()};
    media.start(server_, [] { return math::Vec3{0.0, 0.0, -1.0}; });

    sim_.run_until(sim::Time::seconds(8));

    EXPECT_EQ(media.rung(), media.abr().top_rung());
    EXPECT_EQ(media.abr().switches(), 0u);
    EXPECT_DOUBLE_EQ(media.playback().freeze_seconds, 0.0);
    EXPECT_GT(media.feedback_sent(), 0u);
    EXPECT_GT(service_->feedback_received(), 0u);
    EXPECT_EQ(service_->client_rung(client_), media.abr().top_rung());
    EXPECT_GT(service_->frames_sent(), 0u);
    media.stop();
}

TEST_F(QoeLoopTest, ThrottledLinkConvergesToFitRungAndActuatesServer) {
    // 0.5 Mb/s throttle against a 5 Mb/s top rung: 10x oversubscription.
    net::ChaosProfile squeeze;
    squeeze.throttle_bps = 5.0e5;
    chaos_.set_profile(server_, client_, squeeze);

    service_->add_client(client_, net::Priority::Realtime);
    MediaClient media{chaos_, *client_demux_, ParticipantId{1}, health_,
                      client_config()};
    media.start(server_, [] { return math::Vec3{0.0, 0.0, -1.0}; });

    // The avatar stream shares the congested path; synthesize its loss
    // signal (every other wire sequence missing) into the shared estimator.
    std::uint32_t seq = 0;
    sim_.schedule_every(sim::Time::ms(50), [&] {
        seq += 2;
        health_.observe(99, seq, 40.0, sim_.now());
    });

    sim_.run_until(sim::Time::seconds(10));

    // Usable budget ~0.85 * 0.5e6 - 5e4 = 375 kb/s: only the 0.3e6 floor
    // rung fits, and the server's encoder must have followed the feedback.
    EXPECT_EQ(media.rung(), 0);
    EXPECT_EQ(service_->client_rung(client_), 0);
    EXPECT_GE(service_->rung_changes(), 1u);
    EXPECT_GT(media.capacity_bps(), 0.0);
    EXPECT_LT(media.capacity_bps(), 1.0e6);
    EXPECT_LE(media.abr().switches_per_minute(sim::Time::seconds(10)), 12.0);
    EXPECT_LT(media.last_score(), 100.0);
    media.stop();
}

}  // namespace
}  // namespace mvc::qoe
