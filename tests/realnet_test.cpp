// Tests for the real-transport stack: the WallClock timer queue, the
// datagram wire format (round-trips, truncation, corruption, unknown tags,
// trailing garbage), the RealUdpBackend loopback path (echo, ingress loss,
// reliable delivery through the ARQ over an actual socket), and the
// open_channel spec validation shared by every backend.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/wire_codecs.hpp"
#include "fault/heartbeat.hpp"
#include "net/real_udp.hpp"
#include "net/transport.hpp"
#include "net/wire_format.hpp"
#include "sim/wall_clock.hpp"
#include "sync/wire.hpp"

namespace mvc::net {
namespace {

struct CodecGuard : ::testing::Test {
    CodecGuard() { core::register_wire_codecs(); }
};

// ---------------------------------------------------------------- WallClock

TEST(WallClockTest, TimeAdvancesFromZero) {
    sim::WallClock clock{7};
    const sim::Time t0 = clock.now();
    EXPECT_GE(t0.nanos(), 0);
    EXPECT_LT(t0.nanos(), sim::Time::seconds(1.0).nanos());  // fresh epoch
}

TEST(WallClockTest, PastDeadlinesFireInOrderOnRunDue) {
    sim::WallClock clock{7};
    std::vector<int> order;
    // Scheduling into the past is legal: the timer fires on the next
    // run_due(), in deadline order with FIFO tie-break among equals.
    clock.schedule_at(sim::Time::ns(5), [&] { order.push_back(1); });
    clock.schedule_at(sim::Time::ns(5), [&] { order.push_back(2); });
    clock.schedule_at(sim::Time::zero(), [&] { order.push_back(0); });
    EXPECT_EQ(clock.pending_timers(), 3u);
    const std::size_t fired = clock.run_due();
    EXPECT_EQ(fired, 3u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(clock.pending_timers(), 0u);
}

TEST(WallClockTest, CancelPreventsFiring) {
    sim::WallClock clock{7};
    int fired = 0;
    const sim::EventHandle h = clock.schedule_at(sim::Time::zero(), [&] { ++fired; });
    clock.cancel(h);
    clock.run_due();
    EXPECT_EQ(fired, 0);
}

TEST(WallClockTest, PeriodicTimerReArmsAndCancelsFromInsideCallback) {
    sim::WallClock clock{7};
    int ticks = 0;
    sim::EventHandle h{};
    // The callback must be able to cancel its own chain without the
    // periodic re-arm resurrecting it.
    h = clock.schedule_every(sim::Time::us(100), [&] {
        if (++ticks == 3) clock.cancel(h);
    });
    const sim::Time deadline = clock.now() + sim::Time::seconds(5.0);
    while (clock.pending_timers() > 0 && clock.now() < deadline) clock.run_due();
    EXPECT_EQ(ticks, 3);
    EXPECT_EQ(clock.pending_timers(), 0u);
}

TEST(WallClockTest, NextDeadlineReflectsEarliestTimer) {
    sim::WallClock clock{7};
    EXPECT_FALSE(clock.next_deadline().has_value());
    clock.schedule_at(sim::Time::seconds(100.0), [] {});
    const sim::EventHandle soon = clock.schedule_at(sim::Time::seconds(50.0), [] {});
    ASSERT_TRUE(clock.next_deadline().has_value());
    EXPECT_EQ(clock.next_deadline()->nanos(), sim::Time::seconds(50.0).nanos());
    clock.cancel(soon);
    EXPECT_EQ(clock.next_deadline()->nanos(), sim::Time::seconds(100.0).nanos());
}

TEST(WallClockTest, NamedRngStreamsMatchSimulatorConvention) {
    sim::WallClock a{42};
    sim::WallClock b{42};
    sim::Rng ra = a.rng_stream("link/wan");
    sim::Rng rb = b.rng_stream("link/wan");
    for (int i = 0; i < 16; ++i) EXPECT_EQ(ra.uniform_int(0, 1 << 30), rb.uniform_int(0, 1 << 30));
    sim::Rng other = a.rng_stream("link/lan");
    bool all_equal = true;
    sim::Rng ra2 = a.rng_stream("link/wan");
    for (int i = 0; i < 16; ++i)
        all_equal = all_equal && (ra2.uniform_int(0, 1 << 30) == other.uniform_int(0, 1 << 30));
    EXPECT_FALSE(all_equal);
}

// -------------------------------------------------------------- wire format

using WireFormatTest = CodecGuard;

Packet make_packet(Payload payload, std::string flow = "avatar") {
    Packet p;
    p.id = 77;
    p.src = 1;
    p.dst = 2;
    p.size_bytes = 1234;
    p.sent_at = sim::Time::ms(250);
    p.flow = std::move(flow);
    p.payload = std::move(payload);
    return p;
}

TEST_F(WireFormatTest, EmptyPayloadRoundTrips) {
    const auto frame = encode_frame(make_packet(Payload{}), Priority::Control);
    ASSERT_TRUE(frame.has_value());
    const auto decoded = decode_frame(*frame);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->priority, Priority::Control);
    EXPECT_EQ(decoded->packet.id, 77u);
    EXPECT_EQ(decoded->packet.src, 1u);
    EXPECT_EQ(decoded->packet.dst, 2u);
    EXPECT_EQ(decoded->packet.size_bytes, 1234u);
    EXPECT_EQ(decoded->packet.sent_at.nanos(), sim::Time::ms(250).nanos());
    EXPECT_EQ(decoded->packet.flow, "avatar");
    EXPECT_TRUE(decoded->packet.payload.empty());
}

TEST_F(WireFormatTest, AvatarWireRoundTripsThroughModelCodecs) {
    sync::AvatarWire w;
    w.participant = ParticipantId{9};
    w.source_room = ClassroomId{3};
    w.keyframe = true;
    w.captured_at = sim::Time::ms(41);
    w.bytes = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
    w.relay_to = {4, 5};
    const auto frame = encode_frame(make_packet(Payload{w}), Priority::Realtime);
    ASSERT_TRUE(frame.has_value());
    const auto decoded = decode_frame(*frame);
    ASSERT_TRUE(decoded.has_value());
    const auto& got = decoded->packet.payload.get<sync::AvatarWire>();
    EXPECT_EQ(got.participant, w.participant);
    EXPECT_EQ(got.source_room, w.source_room);
    EXPECT_TRUE(got.keyframe);
    EXPECT_EQ(got.captured_at.nanos(), w.captured_at.nanos());
    EXPECT_EQ(got.bytes, w.bytes);
    EXPECT_EQ(got.relay_to, w.relay_to);
}

TEST_F(WireFormatTest, BatchHeartbeatAndScalarPayloadsRoundTrip) {
    sync::AvatarBatchWire batch;
    batch.updates.resize(2);
    batch.updates[0].participant = ParticipantId{1};
    batch.updates[0].bytes = {1, 2, 3};
    batch.updates[1].participant = ParticipantId{2};
    batch.updates[1].keyframe = true;
    const auto f1 = encode_frame(make_packet(Payload{batch}), Priority::Realtime);
    ASSERT_TRUE(f1.has_value());
    const auto d1 = decode_frame(*f1);
    ASSERT_TRUE(d1.has_value());
    EXPECT_EQ(d1->packet.payload.get<sync::AvatarBatchWire>().updates.size(), 2u);

    const auto f2 =
        encode_frame(make_packet(Payload{fault::HeartbeatWire{99}}), Priority::Control);
    ASSERT_TRUE(f2.has_value());
    EXPECT_EQ(decode_frame(*f2)->packet.payload.get<fault::HeartbeatWire>().seq, 99u);

    const auto f3 =
        encode_frame(make_packet(Payload{std::uint64_t{123456}}), Priority::Bulk);
    ASSERT_TRUE(f3.has_value());
    EXPECT_EQ(decode_frame(*f3)->packet.payload.get<std::uint64_t>(), 123456u);

    const auto f4 =
        encode_frame(make_packet(Payload{std::string{"hello wire"}}), Priority::Bulk);
    ASSERT_TRUE(f4.has_value());
    EXPECT_EQ(decode_frame(*f4)->packet.payload.get<std::string>(), "hello wire");
}

TEST_F(WireFormatTest, UnregisteredPayloadTypeFailsToEncode) {
    struct Unregistered {
        int x;
    };
    EXPECT_FALSE(
        encode_frame(make_packet(Payload{Unregistered{1}}), Priority::Bulk).has_value());
}

TEST_F(WireFormatTest, TruncationAtEveryLengthIsRejected) {
    const auto frame =
        encode_frame(make_packet(Payload{std::string{"payload"}}), Priority::Realtime);
    ASSERT_TRUE(frame.has_value());
    for (std::size_t n = 0; n < frame->size(); ++n) {
        EXPECT_FALSE(decode_frame({frame->data(), n}).has_value())
            << "truncation to " << n << " bytes decoded";
    }
}

TEST_F(WireFormatTest, EverySingleBitFlipIsRejected) {
    const auto frame =
        encode_frame(make_packet(Payload{std::uint64_t{7}}), Priority::Realtime);
    ASSERT_TRUE(frame.has_value());
    for (std::size_t byte = 0; byte < frame->size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<std::byte> corrupt = *frame;
            corrupt[byte] ^= static_cast<std::byte>(1 << bit);
            const auto decoded = decode_frame(corrupt);
            // Either the CRC (or magic/version/length checks) rejects it, or
            // — never — it decodes to something different silently.
            EXPECT_FALSE(decoded.has_value())
                << "bit " << bit << " of byte " << byte << " went unnoticed";
        }
    }
}

TEST_F(WireFormatTest, TrailingGarbageIsRejected) {
    auto frame = encode_frame(make_packet(Payload{}), Priority::Realtime);
    ASSERT_TRUE(frame.has_value());
    frame->push_back(std::byte{0});
    EXPECT_FALSE(decode_frame(*frame).has_value());
}

TEST_F(WireFormatTest, TagCollisionsThrowAndReRegistrationIsIdempotent) {
    core::register_wire_codecs();  // second call: idempotent
    struct Foreign {
        int x;
    };
    EXPECT_THROW(WireCodecs::instance().register_codec<Foreign>(
                     core::kTagAvatar, [](const Payload&, std::vector<std::byte>&) {},
                     [](std::span<const std::byte>) { return std::nullopt; }),
                 std::logic_error);
}

// ------------------------------------------------------------ RealUdpBackend

using RealUdpTest = CodecGuard;

/// Pump the loop until `done` or the deadline; returns whether `done`.
bool pump_until(RealUdpBackend& net, const std::function<bool()>& done,
                sim::Time budget = sim::Time::seconds(5.0)) {
    const sim::Time deadline = net.wall_clock().now() + budget;
    while (!done() && net.wall_clock().now() < deadline)
        net.poll_once(sim::Time::ms(10));
    return done();
}

TEST_F(RealUdpTest, LoopbackEchoRoundTrip) {
    RealUdpBackend net;
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::Guangzhou);
    EXPECT_TRUE(net.is_local(a));
    EXPECT_GT(net.port_of(a), 0);
    EXPECT_EQ(net.node_count(), 2u);
    EXPECT_TRUE(net.node_up(a));

    std::string got_at_b;
    std::string got_at_a;
    net.set_handler(b, [&](Packet&& p) {
        got_at_b = p.payload.get<std::string>();
        // Echo straight back over the same fabric.
        (void)net.send(b, a, 32, "echo", Payload{std::string{"pong"}});
    });
    net.set_handler(a, [&](Packet&& p) { got_at_a = p.payload.get<std::string>(); });

    ASSERT_TRUE(net.send(a, b, 32, "echo", Payload{std::string{"ping"}}));
    ASSERT_TRUE(pump_until(net, [&] { return !got_at_a.empty(); }));
    EXPECT_EQ(got_at_b, "ping");
    EXPECT_EQ(got_at_a, "pong");
    EXPECT_EQ(net.datagrams_sent(), 2u);
    EXPECT_EQ(net.datagrams_received(), 2u);
    EXPECT_EQ(net.decode_errors(), 0u);
    EXPECT_EQ(net.metrics().counter("net.rx.echo"), 2u);
}

/// Fire raw bytes at a UDP port through a throwaway socket — the hostile/
/// broken-sender path no backend API can produce.
void send_raw(std::uint16_t port, std::span<const std::byte> bytes) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in to{};
    to.sin_family = AF_INET;
    to.sin_port = htons(port);
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &to.sin_addr), 1);
    ASSERT_EQ(::sendto(fd, bytes.data(), bytes.size(), 0,
                       reinterpret_cast<const sockaddr*>(&to), sizeof(to)),
              static_cast<ssize_t>(bytes.size()));
    ::close(fd);
}

TEST_F(RealUdpTest, CorruptAndForeignDatagramsAreCountedAndDropped) {
    RealUdpBackend net;
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    int delivered = 0;
    net.set_handler(b, [&](Packet&&) { ++delivered; });

    // Pure garbage, a truncated frame, and a bit-flipped frame.
    const std::vector<std::byte> junk{std::byte{0x01}, std::byte{0x02}, std::byte{0x03}};
    send_raw(net.port_of(b), junk);

    Packet p;
    p.id = 1;
    p.src = a;
    p.dst = b;
    p.size_bytes = 8;
    p.flow = "good";
    p.payload = Payload{std::uint64_t{3}};
    auto frame = encode_frame(p, Priority::Bulk);
    ASSERT_TRUE(frame.has_value());
    send_raw(net.port_of(b), std::span{*frame}.first(frame->size() - 3));
    std::vector<std::byte> flipped = *frame;
    flipped[flipped.size() / 2] ^= std::byte{0x40};
    send_raw(net.port_of(b), flipped);

    // A legitimate send must still get through amid the garbage.
    ASSERT_TRUE(net.send(a, b, 8, "good", Payload{std::uint64_t{2}}));
    ASSERT_TRUE(pump_until(net, [&] { return net.decode_errors() >= 3 && delivered >= 1; }));
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(net.metrics().counter("net.wire_decode_error"), 3u);
}

TEST_F(RealUdpTest, IngressDropHookCountsAndSuppressesDelivery) {
    RealUdpBackend net;
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    int delivered = 0;
    net.set_handler(b, [&](Packet&&) { ++delivered; });
    net.set_ingress_drop([](const Packet& p) { return p.id % 2 == 1; });

    for (std::uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(net.send(a, b, 16, "lossy", Payload{i}));
    pump_until(net, [&] { return delivered >= 5; }, sim::Time::seconds(2.0));
    EXPECT_EQ(delivered, 5);
    EXPECT_EQ(net.metrics().counter("net.test_drop"), 5u);
    net.set_ingress_drop(nullptr);
}

TEST_F(RealUdpTest, ReliableChannelDeliversInOrderThroughInjectedLoss) {
    RealUdpBackend net{RealUdpBackend::Options{.seed = 0xA1}};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::Guangzhou);
    PacketDemux demux_a{net, a};
    PacketDemux demux_b{net, b};

    Channel ch = net.open_channel(
        {.src_demux = &demux_a,
         .dst_demux = &demux_b,
         .flow = "stream",
         .options = {.reliability = Reliability::Reliable, .priority = Priority::Bulk}});
    ASSERT_NE(ch.arq(), nullptr);

    // Drop every third data segment at ingress; ACKs pass. The ARQ's
    // retransmission timers run on the WallClock.
    std::uint64_t seen = 0;
    net.set_ingress_drop([&seen](const Packet& p) {
        return p.flow == "stream" && ++seen % 3 == 0;
    });

    std::vector<std::uint64_t> delivered;
    ch.on_delivered([&](Payload payload, sim::Time, int) {
        delivered.push_back(payload.take<std::uint64_t>());
    });
    constexpr std::uint64_t kCount = 12;
    for (std::uint64_t i = 0; i < kCount; ++i) ch.send(64, i);
    ASSERT_TRUE(pump_until(net, [&] { return delivered.size() >= kCount; },
                           sim::Time::seconds(20.0)));
    ASSERT_EQ(delivered.size(), kCount);
    for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(delivered[i], i);
    EXPECT_GT(ch.arq()->retransmissions(), 0u);
    net.set_ingress_drop(nullptr);
}

TEST_F(RealUdpTest, OpenChannelSpecValidation) {
    RealUdpBackend net;
    const NodeId a = net.add_node("a", Region::HongKong);
    EXPECT_THROW(net.open_channel({.src = a}), std::logic_error);  // no flow
    EXPECT_THROW(net.open_channel({.flow = "x"}), std::logic_error);  // no src
    EXPECT_THROW(
        net.open_channel({.src = a,
                          .flow = "x",
                          .options = {.reliability = Reliability::Reliable}}),
        std::logic_error);  // reliable needs both demuxes
}

TEST_F(RealUdpTest, HeartbeatMonitorRunsOverRealTransport) {
    RealUdpBackend net;
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    PacketDemux demux_a{net, a};
    PacketDemux demux_b{net, b};

    fault::HeartbeatParams params;
    params.enabled = true;
    params.interval = sim::Time::ms(5);
    params.timeout = sim::Time::ms(50);
    fault::HeartbeatMonitor mon_a{net, demux_a, params, "hb.a"};
    fault::HeartbeatMonitor mon_b{net, demux_b, params, "hb.b"};
    mon_a.watch(b);
    mon_b.watch(a);
    mon_a.start();
    mon_b.start();
    ASSERT_TRUE(pump_until(
        net,
        [&] {
            return mon_a.last_seen(b).nanos() > 0 && mon_b.last_seen(a).nanos() > 0 &&
                   mon_a.alive(b) && mon_b.alive(a);
        },
        sim::Time::seconds(5.0)));
    mon_a.stop();
    mon_b.stop();
}

}  // namespace
}  // namespace mvc::net
