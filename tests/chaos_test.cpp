// Tests for the network-chaos interposer and the session reconnect
// hardening around it: net::Backoff, net::ChaosBackend, the ARQ dead-peer
// latch, recovery::Reconnector, the RTT-aware degradation ladder +
// PathHealth loss estimator, FaultPlan transport-chaos windows, and the
// frame-defect reasons on decode_frame.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/wire_codecs.hpp"
#include "fault/degradation.hpp"
#include "fault/fault_plan.hpp"
#include "net/backoff.hpp"
#include "net/chaos.hpp"
#include "net/channel.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"
#include "net/wire_format.hpp"
#include "recovery/reconnect.hpp"

namespace mvc::net {
namespace {

// ------------------------------------------------------------------ Backoff

TEST(BackoffTest, FirstDelayIsBaseThenGrowsWithinBounds) {
    sim::Simulator sim{7};
    BackoffParams params;
    params.base = sim::Time::ms(100);
    params.cap = sim::Time::seconds(5.0);
    Backoff b{params, sim.rng_stream("backoff")};
    EXPECT_EQ(b.next(), sim::Time::ms(100));
    sim::Time prev = sim::Time::ms(100);
    for (int i = 0; i < 20; ++i) {
        const sim::Time d = b.next();
        EXPECT_GE(d, params.base);
        EXPECT_LE(d, params.cap);
        // Decorrelated jitter: bounded by prev * multiplier (and the cap).
        EXPECT_LE(d, std::min(params.cap,
                              sim::Time::seconds(prev.to_seconds() * 3.0 + 1e-9)));
        prev = d;
    }
    EXPECT_EQ(b.attempts(), 21);
}

TEST(BackoffTest, ResetRestartsFromBase) {
    sim::Simulator sim{7};
    Backoff b{BackoffParams{}, sim.rng_stream("backoff")};
    (void)b.next();
    (void)b.next();
    b.reset();
    EXPECT_EQ(b.attempts(), 0);
    EXPECT_EQ(b.next(), BackoffParams{}.base);
}

TEST(BackoffTest, SameSeedSameDelaySequence) {
    sim::Simulator sim_a{42};
    sim::Simulator sim_b{42};
    Backoff a{BackoffParams{}, sim_a.rng_stream("backoff/x")};
    Backoff b{BackoffParams{}, sim_b.rng_stream("backoff/x")};
    for (int i = 0; i < 12; ++i) EXPECT_EQ(a.next(), b.next());
}

// ------------------------------------------------------------- ChaosBackend

struct ChaosFixture : ::testing::Test {
    sim::Simulator sim{91};
    Network inner{sim};
    ChaosBackend chaos{inner};
    NodeId a = chaos.add_node("a", Region::HongKong);
    NodeId b = chaos.add_node("b", Region::HongKong);

    void SetUp() override {
        core::register_wire_codecs();
        LinkParams params;
        params.latency = sim::Time::ms(5);
        inner.connect(a, b, params);
    }
};

TEST_F(ChaosFixture, InertProfilePassesThrough) {
    int got = 0;
    chaos.set_handler(b, [&](Packet&&) { ++got; });
    for (int i = 0; i < 50; ++i) EXPECT_TRUE(chaos.send(a, b, 64, "x", {}));
    sim.run_all();
    EXPECT_EQ(got, 50);
    EXPECT_EQ(chaos.dropped(), 0u);
}

TEST_F(ChaosFixture, DropRateApproximatesProbabilityAndSendsStillSucceed) {
    ChaosProfile p;
    p.drop = 0.3;
    chaos.set_profile(a, b, p);
    int got = 0;
    chaos.set_handler(b, [&](Packet&&) { ++got; });
    for (int i = 0; i < 4000; ++i) EXPECT_TRUE(chaos.send(a, b, 64, "x", {}));
    sim.run_all();
    EXPECT_NEAR(got / 4000.0, 0.7, 0.04);
    EXPECT_EQ(chaos.dropped() + static_cast<std::uint64_t>(got), 4000u);
}

TEST_F(ChaosFixture, BlackholeIsAsymmetric) {
    chaos.set_blackhole(a, b, true);
    int got_b = 0;
    int got_a = 0;
    chaos.set_handler(b, [&](Packet&&) { ++got_b; });
    chaos.set_handler(a, [&](Packet&&) { ++got_a; });
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(chaos.send(a, b, 64, "x", {}));
        EXPECT_TRUE(chaos.send(b, a, 64, "x", {}));
    }
    sim.run_all();
    EXPECT_EQ(got_b, 0);
    EXPECT_EQ(got_a, 10);
    EXPECT_EQ(chaos.blackholed(), 10u);

    chaos.set_blackhole(a, b, false);
    chaos.send(a, b, 64, "x", {});
    sim.run_all();
    EXPECT_EQ(got_b, 1);
}

TEST_F(ChaosFixture, DuplicateDeliversTwice) {
    ChaosProfile p;
    p.duplicate = 1.0;
    chaos.set_profile(a, b, p);
    int got = 0;
    chaos.set_handler(b, [&](Packet&&) { ++got; });
    for (int i = 0; i < 25; ++i) chaos.send(a, b, 64, "x", {});
    sim.run_all();
    EXPECT_EQ(got, 50);
    EXPECT_EQ(chaos.duplicated(), 25u);
}

TEST_F(ChaosFixture, AddedDelayShiftsArrival) {
    ChaosProfile p;
    p.delay = sim::Time::ms(50);
    chaos.set_profile(a, b, p);
    sim::Time arrival;
    chaos.set_handler(b, [&](Packet&&) { arrival = sim.now(); });
    chaos.send(a, b, 64, "x", {});
    sim.run_all();
    EXPECT_EQ(arrival, sim::Time::ms(55));  // 50 chaos + 5 link latency
    EXPECT_EQ(chaos.delayed(), 1u);
}

TEST_F(ChaosFixture, ReorderHoldLetsLaterPacketOvertake) {
    ChaosProfile p;
    p.reorder = 1.0;
    p.reorder_hold = sim::Time::ms(30);
    chaos.set_profile(a, b, p);
    std::vector<std::uint64_t> order;
    chaos.set_handler(b, [&](Packet&& pk) {
        order.push_back(pk.payload.get<std::uint64_t>());
    });
    chaos.send(a, b, 64, "x", std::uint64_t{1});  // held 30 ms
    chaos.clear_profile(a, b);
    chaos.send(a, b, 64, "x", std::uint64_t{2});  // straight through
    sim.run_all();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2u);
    EXPECT_EQ(order[1], 1u);
    EXPECT_EQ(chaos.reordered(), 1u);
}

TEST_F(ChaosFixture, CorruptionIsCaughtByCrcAndDropped) {
    ChaosProfile p;
    p.corrupt = 1.0;
    chaos.set_profile(a, b, p);
    int got = 0;
    chaos.set_handler(b, [&](Packet&&) { ++got; });
    // std::uint64_t has a registered wire codec: the frame is really
    // encoded, bit-flipped, and rejected by CRC-32.
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(chaos.send(a, b, 64, "x", std::uint64_t{7}));
    sim.run_all();
    EXPECT_EQ(got, 0);
    EXPECT_EQ(chaos.corrupted(), 20u);
}

TEST_F(ChaosFixture, ThrottleSpacesDeliveriesAndDropsBacklogOverflow) {
    ChaosProfile p;
    p.throttle_bps = 8.0 * (64 + kHeaderBytes) * 10;  // 10 packets/s
    p.throttle_backlog = sim::Time::ms(500);
    chaos.set_profile(a, b, p);
    int got = 0;
    chaos.set_handler(b, [&](Packet&&) { ++got; });
    for (int i = 0; i < 20; ++i) chaos.send(a, b, 64, "x", {});
    sim.run_all();
    // 100 ms serialization per packet against a 500 ms backlog bound: about
    // five fit, the rest are tail-dropped.
    EXPECT_GT(chaos.throttle_dropped(), 0u);
    EXPECT_EQ(static_cast<std::uint64_t>(got) + chaos.throttle_dropped(), 20u);
    EXPECT_LE(got, 7);
}

TEST_F(ChaosFixture, GilbertElliottProducesBurstLoss) {
    ChaosProfile p;
    p.ge_p_bad = 0.05;
    p.ge_p_good = 0.25;
    chaos.set_profile(a, b, p);
    std::vector<bool> delivered;
    int seq = 0;
    chaos.set_handler(b, [&](Packet&& pk) {
        delivered[static_cast<std::size_t>(pk.payload.get<std::uint64_t>())] = true;
    });
    for (seq = 0; seq < 4000; ++seq) {
        delivered.push_back(false);
        chaos.send(a, b, 64, "x", static_cast<std::uint64_t>(seq));
        sim.run_all();
    }
    // Expected steady-state bad fraction = p_bad / (p_bad + p_good) ≈ 1/6.
    EXPECT_NEAR(static_cast<double>(chaos.dropped()) / 4000.0, 1.0 / 6.0, 0.05);
    // Burstiness: count runs of consecutive losses; with iid loss at the
    // same rate, mean run length would be ~1.2 — GE gives ~4 (1/p_good).
    int runs = 0;
    std::uint64_t losses = 0;
    bool in_run = false;
    for (const bool ok : delivered) {
        if (!ok) {
            ++losses;
            if (!in_run) ++runs;
            in_run = true;
        } else {
            in_run = false;
        }
    }
    ASSERT_GT(runs, 0);
    EXPECT_GT(static_cast<double>(losses) / runs, 2.0);
}

TEST(ChaosDeterminismTest, SameSeedSameInjectionCountsAndArrivals) {
    auto run = [](std::uint64_t seed) {
        sim::Simulator sim{seed};
        Network inner{sim};
        ChaosBackend chaos{inner};
        const NodeId a = chaos.add_node("a", Region::HongKong);
        const NodeId b = chaos.add_node("b", Region::HongKong);
        LinkParams lp;
        lp.latency = sim::Time::ms(5);
        inner.connect(a, b, lp);
        ChaosProfile p;
        p.drop = 0.2;
        p.duplicate = 0.1;
        p.reorder = 0.2;
        p.jitter = sim::Time::ms(10);
        chaos.set_profile(a, b, p);
        std::vector<std::int64_t> arrivals;
        chaos.set_handler(b, [&](Packet&&) { arrivals.push_back(sim.now().nanos()); });
        for (int i = 0; i < 500; ++i) {
            chaos.send(a, b, 64, "x", {});
            sim.run_until(sim.now() + sim::Time::ms(2));
        }
        sim.run_all();
        return std::tuple{arrivals, chaos.dropped(), chaos.duplicated(),
                          chaos.reordered()};
    };
    EXPECT_EQ(run(1234), run(1234));
    EXPECT_NE(std::get<0>(run(1234)), std::get<0>(run(99)));
}

// --------------------------------------------- ARQ fuzz through the chaos

TEST(ChaosArqTest, ReliableChannelSurvivesDropDupReorderExactlyOnceInOrder) {
    sim::Simulator sim{1337};
    Network inner{sim};
    ChaosBackend chaos{inner};
    const NodeId a = chaos.add_node("a", Region::HongKong);
    const NodeId b = chaos.add_node("b", Region::Guangzhou);
    LinkParams lp;
    lp.latency = sim::Time::ms(5);
    inner.connect(a, b, lp);

    ChaosProfile p;
    p.drop = 0.15;
    p.duplicate = 0.10;
    p.reorder = 0.20;
    p.reorder_hold = sim::Time::ms(40);
    p.jitter = sim::Time::ms(8);
    chaos.set_pair_profile(a, b, p);  // data AND acks take chaos

    PacketDemux demux_a{chaos, a};
    PacketDemux demux_b{chaos, b};
    ReliableChannel ch{chaos, demux_a, demux_b, "stream"};
    std::vector<int> got;
    std::size_t max_in_flight = 0;
    ch.on_delivered([&](Payload payload, sim::Time, int) {
        got.push_back(payload.take<int>());
    });
    constexpr int kMessages = 400;
    for (int i = 0; i < kMessages; ++i) {
        ch.send(100, i);
        max_in_flight = std::max(max_in_flight, ch.in_flight());
        sim.run_until(sim.now() + sim::Time::ms(3));
    }
    sim.run_all();

    ASSERT_EQ(got.size(), static_cast<std::size_t>(kMessages));  // exactly once
    for (int i = 0; i < kMessages; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i) << "out of order at " << i;
    EXPECT_EQ(ch.in_flight(), 0u);
    EXPECT_LE(max_in_flight, 64u);  // bounded outstanding under chaos
    EXPECT_GT(ch.retransmissions(), 0u);
    EXPECT_FALSE(ch.peer_dead());
}

TEST(ChaosArqTest, DeadPeerLatchFiresOnceAndClearsOnHeal) {
    sim::Simulator sim{5};
    Network inner{sim};
    ChaosBackend chaos{inner};
    const NodeId a = chaos.add_node("a", Region::HongKong);
    const NodeId b = chaos.add_node("b", Region::HongKong);
    LinkParams lp;
    lp.latency = sim::Time::ms(5);
    inner.connect(a, b, lp);

    PacketDemux demux_a{chaos, a};
    PacketDemux demux_b{chaos, b};
    ReliableOptions opts;
    opts.rto_initial = sim::Time::ms(50);
    opts.rto_max = sim::Time::ms(200);
    opts.max_transmissions = 3;
    opts.dead_after_failures = 2;
    ReliableChannel ch{chaos, demux_a, demux_b, "stream", opts};
    ch.on_delivered([](Payload, sim::Time, int) {});
    int dead_calls = 0;
    int reported_failures = 0;
    ch.on_dead_peer([&](NodeId dst, int failures) {
        ++dead_calls;
        reported_failures = failures;
        EXPECT_EQ(dst, b);
    });

    chaos.set_blackhole(a, b, true);  // data vanishes; acks never generated
    for (int i = 0; i < 5; ++i) ch.send(100, i);
    sim.run_all();
    EXPECT_EQ(dead_calls, 1);  // latched: five give-ups, one notification
    EXPECT_TRUE(ch.peer_dead());
    EXPECT_GE(reported_failures, 2);

    chaos.set_blackhole(a, b, false);  // heal; next ACK re-arms the detector
    ch.send(100, 99);
    sim.run_all();
    EXPECT_FALSE(ch.peer_dead());
    EXPECT_EQ(ch.consecutive_failures(), 0);
    EXPECT_EQ(dead_calls, 1);
}

}  // namespace
}  // namespace mvc::net

// -------------------------------------------------------------- Reconnector

namespace mvc::recovery {
namespace {

struct ReconnectFixture : ::testing::Test {
    sim::Simulator sim{17};
    ReconnectParams params;

    ReconnectFixture() {
        params.liveness_timeout = sim::Time::ms(500);
        params.check_interval = sim::Time::ms(100);
        params.probe_timeout = sim::Time::ms(300);
        params.backoff.base = sim::Time::ms(100);
        params.backoff.cap = sim::Time::seconds(1.0);
    }
};

TEST_F(ReconnectFixture, SilenceTriggersOutageProbeSuccessReconnects) {
    Reconnector rc{sim, params, "t"};
    std::vector<LinkState> states;
    rc.on_state([&](LinkState, LinkState to, int) { states.push_back(to); });
    int probes = 0;
    rc.on_probe([&] {
        ++probes;
        rc.probe_succeeded();
    });
    rc.start();
    // Keep touching for a while: no outage.
    for (int i = 0; i < 5; ++i) {
        sim.run_until(sim.now() + sim::Time::ms(200));
        rc.touch();
    }
    EXPECT_EQ(rc.outages(), 0u);
    EXPECT_TRUE(rc.connected());
    // Go silent just long enough for one outage + one successful probe (a
    // still-silent peer would legitimately be declared down again later).
    sim.run_until(sim.now() + sim::Time::ms(700));
    EXPECT_EQ(rc.outages(), 1u);
    EXPECT_EQ(rc.reconnects(), 1u);
    EXPECT_EQ(probes, 1);
    EXPECT_TRUE(rc.connected());
    EXPECT_GT(rc.last_outage(), sim::Time::zero());
    ASSERT_GE(states.size(), 3u);
    EXPECT_EQ(states[0], LinkState::BackingOff);
    EXPECT_EQ(states[1], LinkState::Probing);
    EXPECT_EQ(states[2], LinkState::Connected);
}

TEST_F(ReconnectFixture, FailedProbesBackOffAndRetry) {
    // Explicit-suspect mode: the liveness checker would re-declare an outage
    // every timeout while the peer stays silent, which is not under test.
    params.liveness_timeout = sim::Time::zero();
    Reconnector rc{sim, params, "t"};
    int probes = 0;
    rc.on_probe([&] {
        ++probes;
        if (probes < 3) rc.probe_failed();
        else rc.probe_succeeded();
    });
    rc.start();
    rc.suspect();
    sim.run_until(sim.now() + sim::Time::seconds(10.0));
    EXPECT_EQ(probes, 3);
    EXPECT_TRUE(rc.connected());
    EXPECT_EQ(rc.reconnects(), 1u);
    EXPECT_EQ(rc.attempts(), 0);  // reset after recovery
}

TEST_F(ReconnectFixture, SilentProbeTimesOutAndRetries) {
    Reconnector rc{sim, params, "t"};
    int probes = 0;
    rc.on_probe([&] { ++probes; });  // never answers
    rc.start();
    rc.suspect();
    sim.run_until(sim.now() + sim::Time::seconds(5.0));
    EXPECT_GE(probes, 3);  // probe_timeout kept the loop moving
    EXPECT_FALSE(rc.connected());
}

TEST_F(ReconnectFixture, StrayTouchDoesNotEndOutage) {
    Reconnector rc{sim, params, "t"};
    rc.on_probe([] {});
    rc.start();
    rc.suspect();
    rc.touch();  // a stray packet is not proof of a resynced session
    EXPECT_FALSE(rc.connected());
}

TEST_F(ReconnectFixture, ZeroLivenessTimeoutOnlySuspectsExplicitly) {
    params.liveness_timeout = sim::Time::zero();
    Reconnector rc{sim, params, "t"};
    rc.on_probe([&] { rc.probe_succeeded(); });
    rc.start();
    sim.run_until(sim.now() + sim::Time::seconds(10.0));
    EXPECT_EQ(rc.outages(), 0u);
    rc.suspect();
    sim.run_until(sim.now() + sim::Time::seconds(2.0));
    EXPECT_EQ(rc.outages(), 1u);
    EXPECT_EQ(rc.reconnects(), 1u);
}

}  // namespace
}  // namespace mvc::recovery

// -------------------------------------- degradation ladder + path health

namespace mvc::fault {
namespace {

TEST(DegradationRttTest, DelayAloneStepsDownAndRecovers) {
    DegradationParams params;
    params.enter_loss = 0.5;  // loss never trips in this test
    params.exit_loss = 0.1;
    params.enter_rtt_ms = 150.0;
    params.exit_rtt_ms = 80.0;
    params.hold = sim::Time::ms(500);
    DegradationPolicy policy{params};

    sim::Time t;
    for (int i = 0; i < 12; ++i) {
        policy.update(0.0, 200.0, t);
        t += sim::Time::ms(100);
    }
    EXPECT_GE(policy.level(), 1);
    const int peak = policy.level();
    for (int i = 0; i < 20; ++i) {
        policy.update(0.0, 40.0, t);
        t += sim::Time::ms(100);
    }
    EXPECT_LT(policy.level(), peak);
}

TEST(DegradationRttTest, RttCriterionDisabledWhenZero) {
    DegradationParams params;
    params.hold = sim::Time::ms(200);
    DegradationPolicy policy{params};  // enter_rtt_ms == 0
    sim::Time t;
    for (int i = 0; i < 20; ++i) {
        policy.update(0.0, 10000.0, t);  // absurd delay, ignored
        t += sim::Time::ms(100);
    }
    EXPECT_EQ(policy.level(), 0);
}

TEST(DegradationRttTest, ExitAboveEnterThrows) {
    DegradationParams params;
    params.enter_rtt_ms = 100.0;
    params.exit_rtt_ms = 200.0;
    EXPECT_THROW(DegradationPolicy{params}, std::invalid_argument);
}

TEST(PathHealthTest, SeqGapsMeasureLoss) {
    PathHealth health{{.window = sim::Time::seconds(1.0)}};
    sim::Time t;
    health.observe(1, 1, 10.0, t);  // opens the window
    for (std::uint32_t seq = 2; seq <= 10; ++seq) {
        if (seq == 4 || seq == 7) continue;  // two losses
        health.observe(1, seq, 10.0, t);
    }
    health.roll(t + sim::Time::seconds(1.5));
    EXPECT_NEAR(health.loss(), 2.0 / 10.0, 1e-9);
    EXPECT_EQ(health.lost(), 2u);
    EXPECT_EQ(health.received(), 8u);
}

TEST(PathHealthTest, DuplicatesAndReordersDoNotGoNegative) {
    PathHealth health{};
    sim::Time t;
    health.observe(1, 5, 10.0, t);
    health.observe(1, 5, 10.0, t);  // duplicate
    health.observe(1, 3, 10.0, t);  // late reorder
    health.roll(t + sim::Time::seconds(2.0));
    EXPECT_GE(health.loss(), 0.0);
    EXPECT_LE(health.loss(), 1.0);
    EXPECT_EQ(health.loss(), 0.0);
}

TEST(PathHealthTest, SilentWindowDecaysToZeroLoss) {
    PathHealth health{{.window = sim::Time::ms(500)}};
    sim::Time t;
    health.observe(1, 1, 10.0, t);
    health.observe(1, 3, 10.0, t);  // one missing
    health.roll(t + sim::Time::ms(600));
    EXPECT_GT(health.loss(), 0.0);
    // No traffic at all in the next window: suppression is not loss.
    health.roll(t + sim::Time::ms(1200));
    EXPECT_EQ(health.loss(), 0.0);
}

TEST(PathHealthTest, ResetForgetsSequenceBaselines) {
    PathHealth health{};
    sim::Time t;
    health.observe(1, 100, 10.0, t);
    health.reset();
    // After a resync the sender restarts (or the gap is meaningless): the
    // next observation must re-baseline, not count 99 losses.
    health.observe(1, 200, 10.0, t + sim::Time::ms(1));
    health.roll(t + sim::Time::seconds(2.0));
    EXPECT_EQ(health.loss(), 0.0);
}

TEST(PathHealthTest, RttIsEwmaOfLatencySamples) {
    PathHealth health{{.rtt_alpha = 0.5}};
    sim::Time t;
    health.observe(1, 1, 100.0, t);
    EXPECT_NEAR(health.rtt_ms(), 100.0, 1e-9);
    health.observe(1, 2, 200.0, t);
    EXPECT_NEAR(health.rtt_ms(), 150.0, 1e-9);
}

// ----------------------------------------------- FaultPlan chaos windows

struct ChaosPlanFixture : ::testing::Test {
    sim::Simulator sim{33};
    net::Network inner{sim};
    net::ChaosBackend chaos{inner};
    net::NodeId a = chaos.add_node("a", net::Region::HongKong);
    net::NodeId b = chaos.add_node("b", net::Region::HongKong);

    void SetUp() override {
        net::LinkParams lp;
        lp.latency = sim::Time::ms(1);
        inner.connect(a, b, lp);
    }
};

TEST_F(ChaosPlanFixture, ChaosWindowInstallsAndRestoresProfiles) {
    FaultPlan plan{inner};
    plan.set_chaos(&chaos);
    net::ChaosProfile p;
    p.drop = 1.0;
    plan.chaos_window(a, b, sim::Time::seconds(1.0), sim::Time::seconds(1.0), p);
    plan.arm();

    int got = 0;
    chaos.set_handler(b, [&](net::Packet&&) { ++got; });
    const auto send_burst = [&](sim::Time until) {
        while (sim.now() < until) {
            chaos.send(a, b, 64, "x", {});
            sim.run_until(sim.now() + sim::Time::ms(100));
        }
    };
    send_burst(sim::Time::seconds(0.95));
    const int before = got;
    EXPECT_GT(before, 0);
    send_burst(sim::Time::seconds(1.95));
    EXPECT_EQ(got, before);  // window drops everything
    send_burst(sim::Time::seconds(3.0));
    EXPECT_GT(got, before);  // restored after the window
    EXPECT_FALSE(chaos.profile(a, b).active());
    EXPECT_EQ(plan.injected(), 2u);
}

TEST_F(ChaosPlanFixture, PartitionBlackholesBothDirectionsAndHeals) {
    FaultPlan plan{inner};
    plan.set_chaos(&chaos);
    plan.partition(a, b, sim::Time::seconds(1.0), sim::Time::seconds(1.0));
    plan.arm();

    sim.run_until(sim::Time::seconds(1.5));
    EXPECT_TRUE(chaos.profile(a, b).blackhole);
    EXPECT_TRUE(chaos.profile(b, a).blackhole);
    sim.run_until(sim::Time::seconds(2.5));
    EXPECT_FALSE(chaos.profile(a, b).blackhole);
    EXPECT_FALSE(chaos.profile(b, a).blackhole);
}

TEST_F(ChaosPlanFixture, BlackholeSurvivesOverlappingChaosWindowEdges) {
    FaultPlan plan{inner};
    plan.set_chaos(&chaos);
    // Partition [1, 4); lossy window [2, 3) fully inside it. Neither the
    // window's start (profile swap) nor its end (restore) may clear the
    // active blackhole.
    plan.partition(a, b, sim::Time::seconds(1.0), sim::Time::seconds(3.0));
    net::ChaosProfile lossy;
    lossy.drop = 0.5;
    plan.chaos_window(a, b, sim::Time::seconds(2.0), sim::Time::seconds(1.0), lossy);
    plan.arm();

    sim.run_until(sim::Time::seconds(2.5));
    EXPECT_TRUE(chaos.profile(a, b).blackhole);
    EXPECT_GT(chaos.profile(a, b).drop, 0.0);
    sim.run_until(sim::Time::seconds(3.5));
    EXPECT_TRUE(chaos.profile(a, b).blackhole);  // window end kept the hole
    sim.run_until(sim::Time::seconds(4.5));
    EXPECT_FALSE(chaos.profile(a, b).blackhole);
}

TEST_F(ChaosPlanFixture, ArmWithoutChaosBackendThrows) {
    FaultPlan plan{inner};
    plan.blackhole(a, b, sim::Time::seconds(1.0), sim::Time::seconds(1.0));
    EXPECT_THROW(plan.arm(), std::logic_error);
}

TEST_F(ChaosPlanFixture, ScheduleRenderingIsDeterministic) {
    FaultPlan plan{inner};
    plan.set_chaos(&chaos);
    net::ChaosProfile p;
    p.drop = 0.25;
    p.ge_p_bad = 0.05;
    p.ge_p_good = 0.2;
    plan.chaos_window(a, b, sim::Time::seconds(1.0), sim::Time::seconds(2.0), p);
    plan.partition(a, b, sim::Time::seconds(4.0), sim::Time::seconds(1.0));
    const std::string rendered = plan.to_string();
    EXPECT_NE(rendered.find("chaos_start"), std::string::npos);
    EXPECT_NE(rendered.find("blackhole_start"), std::string::npos);
    EXPECT_EQ(rendered, plan.to_string());
}

}  // namespace
}  // namespace mvc::fault

// ------------------------------------------------- frame defect reporting

namespace mvc::net {
namespace {

TEST(FrameDefectTest, DecodeReportsSpecificReasons) {
    core::register_wire_codecs();
    Packet p;
    p.src = 1;
    p.dst = 2;
    p.size_bytes = 64;
    p.flow = "x";
    p.payload = Payload{std::uint64_t{42}};
    const auto frame = encode_frame(p, Priority::Realtime);
    ASSERT_TRUE(frame.has_value());

    FrameDefect defect = FrameDefect::None;
    EXPECT_TRUE(decode_frame(*frame, defect).has_value());
    EXPECT_EQ(defect, FrameDefect::None);

    // Truncated: cut mid-frame.
    std::vector<std::byte> cut(frame->begin(), frame->begin() + 6);
    EXPECT_FALSE(decode_frame(cut, defect).has_value());
    EXPECT_EQ(defect, FrameDefect::Truncated);

    // Foreign traffic: wrong magic.
    std::vector<std::byte> foreign = *frame;
    foreign[0] ^= std::byte{0xFF};
    EXPECT_FALSE(decode_frame(foreign, defect).has_value());
    EXPECT_EQ(defect, FrameDefect::BadMagic);

    // Corrupt body: CRC mismatch.
    std::vector<std::byte> corrupt = *frame;
    corrupt[corrupt.size() / 2] ^= std::byte{0x01};
    EXPECT_FALSE(decode_frame(corrupt, defect).has_value());
    EXPECT_EQ(defect, FrameDefect::CrcMismatch);

    // Trailing garbage after the CRC.
    std::vector<std::byte> padded = *frame;
    padded.push_back(std::byte{0xAA});
    EXPECT_FALSE(decode_frame(padded, defect).has_value());
    EXPECT_EQ(defect, FrameDefect::TrailingGarbage);

    EXPECT_EQ(frame_defect_name(FrameDefect::CrcMismatch), "crc_mismatch");
    EXPECT_EQ(frame_defect_name(FrameDefect::None), "none");
}

}  // namespace
}  // namespace mvc::net
