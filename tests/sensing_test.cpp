// Tests for the sensing substrate: headset tracker model, room sensor
// array (occlusion bursts), and the Kalman pose fusion.

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.hpp"
#include "sensing/fusion.hpp"
#include "sensing/headset.hpp"
#include "sensing/room_sensors.hpp"

namespace mvc::sensing {
namespace {

GroundTruth static_truth(const math::Vec3& pos) {
    GroundTruth gt;
    gt.kinematics.pose.position = pos;
    gt.expression.assign(16, 0.5);
    return gt;
}

TEST(HeadsetTest, SamplesAtConfiguredRate) {
    sim::Simulator sim;
    HeadsetParams params;
    params.sample_rate_hz = 50.0;
    params.dropout = 0.0;
    int samples = 0;
    Headset hs{sim, "h", ParticipantId{1}, params,
               [] { return static_truth({1, 2, 3}); },
               [&](SensorSample&&) { ++samples; }};
    hs.start();
    sim.run_until(sim::Time::seconds(2));
    EXPECT_EQ(samples, 100);
    hs.stop();
    sim.run_until(sim::Time::seconds(3));
    EXPECT_EQ(samples, 100);
}

TEST(HeadsetTest, DropoutReducesEmissions) {
    sim::Simulator sim{5};
    HeadsetParams params;
    params.sample_rate_hz = 100.0;
    params.dropout = 0.3;
    Headset hs{sim, "h", ParticipantId{1}, params,
               [] { return static_truth({0, 0, 0}); }, [](SensorSample&&) {}};
    hs.start();
    sim.run_until(sim::Time::seconds(10));
    const double total = static_cast<double>(hs.emitted() + hs.dropped());
    EXPECT_NEAR(static_cast<double>(hs.dropped()) / total, 0.3, 0.05);
}

TEST(HeadsetTest, NoiseMatchesConfiguredSigma) {
    sim::Simulator sim{6};
    HeadsetParams params;
    params.sample_rate_hz = 200.0;
    params.dropout = 0.0;
    params.position_noise_m = 0.01;
    math::RunningStats err_x;
    Headset hs{sim, "h", ParticipantId{1}, params,
               [] { return static_truth({5, 0, 0}); },
               [&](SensorSample&& s) { err_x.add(s.pose.position.x - 5.0); }};
    hs.start();
    sim.run_until(sim::Time::seconds(30));
    EXPECT_NEAR(err_x.mean(), 0.0, 0.002);
    EXPECT_NEAR(err_x.stddev(), 0.01, 0.002);
}

TEST(HeadsetTest, ExpressionClampedToUnit) {
    sim::Simulator sim{7};
    HeadsetParams params;
    params.expression_channels = 16;
    params.expression_noise = 0.5;  // large noise to exercise clamping
    params.dropout = 0.0;
    bool checked = false;
    Headset hs{sim, "h", ParticipantId{1}, params,
               [] { return static_truth({0, 0, 0}); },
               [&](SensorSample&& s) {
                   checked = true;
                   ASSERT_EQ(s.expression.size(), 16u);
                   for (const double e : s.expression) {
                       EXPECT_GE(e, 0.0);
                       EXPECT_LE(e, 1.0);
                   }
               }};
    hs.start();
    sim.run_until(sim::Time::seconds(1));
    EXPECT_TRUE(checked);
}

TEST(HeadsetTest, InvalidConfigThrows) {
    sim::Simulator sim;
    HeadsetParams bad;
    bad.sample_rate_hz = 0.0;
    EXPECT_THROW(Headset(sim, "h", ParticipantId{1}, bad,
                         [] { return GroundTruth{}; }, [](SensorSample&&) {}),
                 std::invalid_argument);
    EXPECT_THROW(Headset(sim, "h", ParticipantId{1}, HeadsetParams{}, nullptr,
                         [](SensorSample&&) {}),
                 std::invalid_argument);
}

TEST(HeadsetTest, PresetsAreOrdered) {
    // Tethered MR tracks better than standalone, which beats phone viewers.
    EXPECT_LT(tethered_mr_params().position_noise_m,
              standalone_hmd_params().position_noise_m);
    EXPECT_LT(standalone_hmd_params().position_noise_m,
              phone_viewer_params().position_noise_m);
    EXPECT_GT(tethered_mr_params().sample_rate_hz, phone_viewer_params().sample_rate_hz);
}

TEST(RoomSensorTest, TracksAndEmits) {
    sim::Simulator sim{8};
    RoomSensorParams params;
    params.sample_rate_hz = 30.0;
    params.occlusion_start = 0.0;
    int samples = 0;
    RoomSensorArray arr{sim, "room", params,
                        [](ParticipantId) { return static_truth({1, 0, 2}); },
                        [&](SensorSample&& s) {
                            ++samples;
                            EXPECT_FALSE(s.has_orientation);
                            EXPECT_TRUE(s.expression.empty());
                        }};
    arr.track(ParticipantId{1});
    arr.track(ParticipantId{2});
    arr.track(ParticipantId{2});  // duplicate ignored
    EXPECT_EQ(arr.tracked_count(), 2u);
    arr.start();
    sim.run_until(sim::Time::seconds(1));
    EXPECT_EQ(samples, 60);  // 2 participants x 30 Hz
}

TEST(RoomSensorTest, OcclusionProducesBursts) {
    sim::Simulator sim{9};
    RoomSensorParams params;
    params.sample_rate_hz = 30.0;
    params.occlusion_start = 0.05;
    params.occlusion_end = 0.3;
    RoomSensorArray arr{sim, "room", params,
                        [](ParticipantId) { return static_truth({0, 0, 0}); },
                        [](SensorSample&&) {}};
    arr.track(ParticipantId{1});
    arr.start();
    sim.run_until(sim::Time::seconds(60));
    EXPECT_GT(arr.occluded_samples(), 0u);
    // Stationary occlusion fraction = p_start / (p_start + p_end) ≈ 0.143.
    const double total = 60.0 * 30.0;
    EXPECT_NEAR(static_cast<double>(arr.occluded_samples()) / total, 0.143, 0.08);
}

TEST(RoomSensorTest, UntrackStopsEmissions) {
    sim::Simulator sim;
    RoomSensorParams params;
    params.occlusion_start = 0.0;
    int samples = 0;
    RoomSensorArray arr{sim, "room", params,
                        [](ParticipantId) { return static_truth({0, 0, 0}); },
                        [&](SensorSample&&) { ++samples; }};
    arr.track(ParticipantId{1});
    arr.start();
    sim.run_until(sim::Time::seconds(1));
    const int before = samples;
    arr.untrack(ParticipantId{1});
    sim.run_until(sim::Time::seconds(2));
    EXPECT_EQ(samples, before);
}

// -------------------------------------------------------------------- fusion

SensorSample headset_sample(ParticipantId who, sim::Time at, const math::Vec3& pos,
                            const math::Quat& q = math::Quat::identity()) {
    SensorSample s;
    s.participant = who;
    s.captured_at = at;
    s.source = SensorSource::Headset;
    s.pose = {pos, q};
    return s;
}

TEST(FusionTest, UnknownParticipantIsNullopt) {
    PoseFusion fusion;
    EXPECT_FALSE(fusion.estimate(ParticipantId{9}, sim::Time::ms(10)).has_value());
}

TEST(FusionTest, FirstSampleInitializes) {
    PoseFusion fusion;
    fusion.observe(headset_sample(ParticipantId{1}, sim::Time::ms(0), {2, 1, -3}));
    const auto est = fusion.estimate(ParticipantId{1}, sim::Time::ms(1));
    ASSERT_TRUE(est.has_value());
    EXPECT_TRUE(math::approx_equal(est->state.pose.position, {2, 1, -3}, 1e-9));
}

TEST(FusionTest, ConvergesBelowMeasurementNoiseOnStaticTarget) {
    sim::Rng rng{42};
    FusionParams params;
    params.accel_noise = 0.3;  // seated participant: little unmodelled motion
    params.headset_noise_m = 0.01;
    PoseFusion fusion{params};
    const math::Vec3 truth{1.0, 1.2, 0.5};
    for (int i = 0; i < 200; ++i) {
        const math::Vec3 noisy = truth + math::Vec3{rng.normal(0, 0.01), rng.normal(0, 0.01),
                                                    rng.normal(0, 0.01)};
        fusion.observe(headset_sample(ParticipantId{1}, sim::Time::ms(i * 10.0), noisy));
    }
    const auto est = fusion.estimate(ParticipantId{1}, sim::Time::ms(2000));
    ASSERT_TRUE(est.has_value());
    // Kalman averaging must beat the raw 1 cm noise comfortably.
    EXPECT_LT(est->state.pose.position.distance_to(truth), 0.006);
}

TEST(FusionTest, TracksConstantVelocityAndPredicts) {
    PoseFusion fusion;
    // Noise-free samples moving at 1 m/s along x.
    for (int i = 0; i <= 100; ++i) {
        const double t = i * 0.02;
        fusion.observe(
            headset_sample(ParticipantId{1}, sim::Time::seconds(t), {t, 0, 0}));
    }
    const auto est = fusion.estimate(ParticipantId{1}, sim::Time::seconds(2.1));
    ASSERT_TRUE(est.has_value());
    EXPECT_NEAR(est->state.linear_velocity.x, 1.0, 0.05);
    // Prediction 100 ms past the last sample lands near the true position.
    EXPECT_NEAR(est->state.pose.position.x, 2.1, 0.02);
}

TEST(FusionTest, StaleTrackReportsNullopt) {
    FusionParams params;
    params.stale_after = sim::Time::ms(100);
    PoseFusion fusion{params};
    fusion.observe(headset_sample(ParticipantId{1}, sim::Time::ms(0), {0, 0, 0}));
    EXPECT_TRUE(fusion.estimate(ParticipantId{1}, sim::Time::ms(50)).has_value());
    EXPECT_FALSE(fusion.estimate(ParticipantId{1}, sim::Time::ms(200)).has_value());
}

TEST(FusionTest, OutOfOrderSamplesIgnored) {
    PoseFusion fusion;
    fusion.observe(headset_sample(ParticipantId{1}, sim::Time::ms(100), {1, 0, 0}));
    fusion.observe(headset_sample(ParticipantId{1}, sim::Time::ms(50), {99, 0, 0}));
    const auto est = fusion.estimate(ParticipantId{1}, sim::Time::ms(110));
    ASSERT_TRUE(est.has_value());
    EXPECT_LT(est->state.pose.position.x, 10.0);
}

TEST(FusionTest, CameraSamplesRefinePositionWithoutOrientation) {
    PoseFusion fusion;
    const math::Quat q = math::Quat::from_axis_angle(math::Vec3::unit_y(), 0.7);
    fusion.observe(headset_sample(ParticipantId{1}, sim::Time::ms(0), {0, 0, 0}, q));
    SensorSample cam;
    cam.participant = ParticipantId{1};
    cam.captured_at = sim::Time::ms(20);
    cam.source = SensorSource::RoomCamera;
    cam.has_orientation = false;
    cam.pose.position = {0.01, 0, 0};
    fusion.observe(cam);
    const auto est = fusion.estimate(ParticipantId{1}, sim::Time::ms(25));
    ASSERT_TRUE(est.has_value());
    // Orientation survives from the headset sample.
    EXPECT_NEAR(math::angular_distance(est->state.pose.orientation, q), 0.0, 1e-6);
}

TEST(FusionTest, OrientationTracksRotation) {
    PoseFusion fusion;
    for (int i = 0; i <= 50; ++i) {
        const double t = i * 0.02;
        const math::Quat q = math::Quat::from_axis_angle(math::Vec3::unit_y(), t);
        fusion.observe(headset_sample(ParticipantId{1}, sim::Time::seconds(t), {0, 0, 0}, q));
    }
    const auto est = fusion.estimate(ParticipantId{1}, sim::Time::seconds(1.0));
    ASSERT_TRUE(est.has_value());
    // Rotating at 1 rad/s about y.
    EXPECT_NEAR(est->state.angular_velocity.y, 1.0, 0.2);
    EXPECT_NEAR(math::angular_distance(est->state.pose.orientation,
                                       math::Quat::from_axis_angle(math::Vec3::unit_y(), 1.0)),
                0.0, 0.1);
}

TEST(FusionTest, ExpressionSmoothed) {
    FusionParams params;
    params.expression_alpha = 0.5;
    PoseFusion fusion{params};
    SensorSample s = headset_sample(ParticipantId{1}, sim::Time::ms(0), {0, 0, 0});
    s.expression = {1.0};
    fusion.observe(s);
    const auto est = fusion.estimate(ParticipantId{1}, sim::Time::ms(1));
    ASSERT_TRUE(est.has_value());
    ASSERT_FALSE(est->expression.empty());
    EXPECT_NEAR(est->expression[0], 0.5, 1e-9);  // EWMA from 0 toward 1
}

TEST(FusionTest, TrackedListAndDrop) {
    PoseFusion fusion;
    fusion.observe(headset_sample(ParticipantId{1}, sim::Time::ms(0), {0, 0, 0}));
    fusion.observe(headset_sample(ParticipantId{2}, sim::Time::ms(0), {1, 0, 0}));
    EXPECT_EQ(fusion.tracked(sim::Time::ms(10)).size(), 2u);
    fusion.drop(ParticipantId{1});
    const auto tracked = fusion.tracked(sim::Time::ms(10));
    ASSERT_EQ(tracked.size(), 1u);
    EXPECT_EQ(tracked[0], ParticipantId{2});
}

}  // namespace
}  // namespace mvc::sensing
