// Tests for the spatial audio mixer: distance rolloff, pan geometry,
// equal-power law, and the intelligibility estimate.

#include <gtest/gtest.h>

#include <cmath>

#include "media/spatial.hpp"

namespace mvc::media {
namespace {

constexpr double kPi = 3.14159265358979;

math::Pose listener_at(const math::Vec3& pos, double yaw = 0.0) {
    return {pos, math::Quat::from_axis_angle(math::Vec3::unit_y(), yaw)};
}

TEST(SpatialGainTest, UnityInsideReferenceDistance) {
    const SpatialMixer mixer;
    EXPECT_DOUBLE_EQ(mixer.gain_at(0.0), 1.0);
    EXPECT_DOUBLE_EQ(mixer.gain_at(0.5), 1.0);
    EXPECT_DOUBLE_EQ(mixer.gain_at(1.0), 1.0);
}

TEST(SpatialGainTest, InverseDistanceRolloff) {
    const SpatialMixer mixer;
    EXPECT_NEAR(mixer.gain_at(2.0), 0.5, 1e-9);
    EXPECT_NEAR(mixer.gain_at(10.0), 0.1, 1e-9);
}

TEST(SpatialGainTest, SilentBeyondMaxAndFadesBefore) {
    const SpatialMixer mixer;
    EXPECT_DOUBLE_EQ(mixer.gain_at(25.0), 0.0);
    EXPECT_DOUBLE_EQ(mixer.gain_at(100.0), 0.0);
    // In the fade band the gain sits below plain inverse-distance.
    EXPECT_LT(mixer.gain_at(24.0), 1.0 / 24.0);
    EXPECT_GT(mixer.gain_at(24.0), 0.0);
}

TEST(SpatialGainTest, SteeperRolloffOption) {
    SpatialAudioParams params;
    params.rolloff = 2.0;
    const SpatialMixer mixer{params};
    EXPECT_NEAR(mixer.gain_at(2.0), 0.25, 1e-9);
}

TEST(SpatialGainTest, BadParamsThrow) {
    SpatialAudioParams params;
    params.reference_distance_m = 0.0;
    EXPECT_THROW(SpatialMixer{params}, std::invalid_argument);
    SpatialAudioParams inverted;
    inverted.reference_distance_m = 30.0;
    inverted.max_distance_m = 25.0;
    EXPECT_THROW(SpatialMixer{inverted}, std::invalid_argument);
}

TEST(SpatialPanTest, GeometryMatchesSeating) {
    const math::Pose listener = listener_at({0, 0, 0});
    EXPECT_NEAR(SpatialMixer::pan_of(listener, {0, 0, -5}), 0.0, 1e-9);   // ahead
    EXPECT_GT(SpatialMixer::pan_of(listener, {5, 0, -5}), 0.5);          // right
    EXPECT_LT(SpatialMixer::pan_of(listener, {-5, 0, -5}), -0.5);        // left
    EXPECT_NEAR(SpatialMixer::pan_of(listener, {5, 0, 0}), 1.0, 1e-9);   // due right
}

TEST(SpatialPanTest, RotatingTheListenerRotatesTheScene) {
    // Source due "north"; listener turned 90deg left now hears it right.
    const math::Pose turned = listener_at({0, 0, 0}, kPi / 2.0);
    EXPECT_GT(SpatialMixer::pan_of(turned, {0, 0, -5}), 0.9);
}

TEST(SpatialMixTest, MixOmitsInaudibleAndScalesByLevel) {
    const SpatialMixer mixer;
    const math::Pose listener = listener_at({0, 0, 0});
    const std::vector<ActiveSpeaker> speakers{
        {ParticipantId{1}, {0, 0, -2}, 1.0},
        {ParticipantId{2}, {0, 0, -2}, 0.25},
        {ParticipantId{3}, {0, 0, -100}, 1.0},  // out of range
    };
    const auto mixed = mixer.mix(listener, speakers);
    ASSERT_EQ(mixed.size(), 2u);
    EXPECT_EQ(mixed[0].speaker, ParticipantId{1});
    EXPECT_NEAR(mixed[0].gain / mixed[1].gain, 4.0, 1e-9);
}

TEST(SpatialMixTest, EqualPowerAcrossThePanArc) {
    SpatialAudioParams params;
    params.pan_bleed = 0.0;
    const SpatialMixer mixer{params};
    const math::Pose listener = listener_at({0, 0, 0});
    for (const double angle : {-1.2, -0.5, 0.0, 0.5, 1.2}) {
        const math::Vec3 pos{2.0 * std::sin(angle), 0.0, -2.0 * std::cos(angle)};
        const auto mixed = mixer.mix(listener, {{ParticipantId{1}, pos, 1.0}});
        ASSERT_EQ(mixed.size(), 1u);
        const double power = mixed[0].left_gain * mixed[0].left_gain +
                             mixed[0].right_gain * mixed[0].right_gain;
        EXPECT_NEAR(power, mixed[0].gain * mixed[0].gain, 1e-9) << "angle " << angle;
    }
}

TEST(SpatialMixTest, BleedKeepsOppositeEarAlive) {
    const SpatialMixer mixer;  // default bleed 0.25
    const math::Pose listener = listener_at({0, 0, 0});
    const auto mixed = mixer.mix(listener, {{ParticipantId{1}, {3, 0, 0}, 1.0}});
    ASSERT_EQ(mixed.size(), 1u);
    EXPECT_GT(mixed[0].right_gain, mixed[0].left_gain * 1.5);
    EXPECT_GT(mixed[0].left_gain, 0.0);
}

TEST(IntelligibilityTest, NearbySpeakerDominatesBabble) {
    const SpatialMixer mixer;
    const math::Pose listener = listener_at({0, 0, 0});
    std::vector<ActiveSpeaker> speakers{{ParticipantId{1}, {0, 0, -1.5}, 1.0}};
    // A ring of ten distant babblers.
    for (std::uint32_t i = 2; i <= 11; ++i) {
        const double a = i * 0.6;
        speakers.push_back({ParticipantId{i},
                            {12.0 * std::sin(a), 0.0, 12.0 * std::cos(a)}, 1.0});
    }
    // Target at 1.5 m has gain 1/1.5; ten babblers at 12 m contribute
    // 10/144 of power: expected ratio ~0.86.
    const double intel = mixer.intelligibility(listener, speakers, ParticipantId{1});
    EXPECT_GT(intel, 0.8);
    // A babbler at the same distance as its nine peers is hard to follow.
    const double babble = mixer.intelligibility(listener, speakers, ParticipantId{2});
    EXPECT_LT(babble, 0.2);
}

TEST(IntelligibilityTest, EdgeCases) {
    const SpatialMixer mixer;
    const math::Pose listener = listener_at({0, 0, 0});
    EXPECT_DOUBLE_EQ(mixer.intelligibility(listener, {}, ParticipantId{1}), 0.0);
    const std::vector<ActiveSpeaker> solo{{ParticipantId{1}, {0, 0, -2}, 1.0}};
    EXPECT_DOUBLE_EQ(mixer.intelligibility(listener, solo, ParticipantId{1}), 1.0);
    EXPECT_DOUBLE_EQ(mixer.intelligibility(listener, solo, ParticipantId{9}), 0.0);
}

}  // namespace
}  // namespace mvc::media
