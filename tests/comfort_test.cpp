// Tests for the comfort module: the fuzzy engine, the cybersickness
// susceptibility and accumulation models, and the speed protector.

#include <gtest/gtest.h>

#include <array>

#include "comfort/cybersickness.hpp"

namespace mvc::comfort {
namespace {

// --------------------------------------------------------------------- fuzzy

TEST(TrapezoidTest, CoreAndSlopes) {
    const Trapezoid t{0.0, 2.0, 4.0, 6.0};
    EXPECT_DOUBLE_EQ(t.at(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(t.at(1.0), 0.5);
    EXPECT_DOUBLE_EQ(t.at(3.0), 1.0);
    EXPECT_DOUBLE_EQ(t.at(5.0), 0.5);
    EXPECT_DOUBLE_EQ(t.at(7.0), 0.0);
}

TEST(TrapezoidTest, ShouldersExtendMembership) {
    const Trapezoid left{0.0, 0.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(left.at(-10.0), 1.0);
    EXPECT_DOUBLE_EQ(left.at(0.5), 1.0);
    const Trapezoid right{5.0, 6.0, 7.0, 7.0};
    EXPECT_DOUBLE_EQ(right.at(100.0), 1.0);
    EXPECT_DOUBLE_EQ(right.at(4.0), 0.0);
}

TEST(TrapezoidTest, TriangleWhenBEqualsC) {
    const Trapezoid tri{0.0, 1.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(tri.at(1.0), 1.0);
    EXPECT_DOUBLE_EQ(tri.at(0.5), 0.5);
    EXPECT_DOUBLE_EQ(tri.at(1.5), 0.5);
}

FuzzySystem tiny_system() {
    FuzzyVar in{"x", 0.0, 10.0, {{"low", {0, 0, 2, 5}}, {"high", {5, 8, 10, 10}}}};
    FuzzyVar out{"y", 0.0, 1.0, {{"small", {0, 0, 0.2, 0.5}}, {"big", {0.5, 0.8, 1, 1}}}};
    FuzzySystem fs{{in}, out};
    using A = std::array<std::string_view, 1>;
    fs.add_rule(A{"low"}, "small");
    fs.add_rule(A{"high"}, "big");
    return fs;
}

TEST(FuzzySystemTest, InferenceFollowsRules) {
    const FuzzySystem fs = tiny_system();
    const std::array<double, 1> lo{1.0};
    const std::array<double, 1> hi{9.0};
    EXPECT_LT(fs.infer(lo), 0.35);
    EXPECT_GT(fs.infer(hi), 0.65);
}

TEST(FuzzySystemTest, MidpointBlends) {
    const FuzzySystem fs = tiny_system();
    const std::array<double, 1> lo{1.0};
    const std::array<double, 1> mid{5.5};
    const std::array<double, 1> hi{9.0};
    EXPECT_GT(fs.infer(mid), fs.infer(lo));
    EXPECT_LT(fs.infer(mid), fs.infer(hi));
}

TEST(FuzzySystemTest, OutOfRangeInputClamped) {
    const FuzzySystem fs = tiny_system();
    const std::array<double, 1> below{-100.0};
    const std::array<double, 1> above{100.0};
    EXPECT_LT(fs.infer(below), 0.35);
    EXPECT_GT(fs.infer(above), 0.65);
}

TEST(FuzzySystemTest, NoFiringRuleGivesMidpoint) {
    FuzzyVar in{"x", 0.0, 10.0, {{"narrow", {4.0, 5.0, 5.0, 6.0}}}};
    FuzzyVar out{"y", 0.0, 1.0, {{"any", {0, 0, 1, 1}}}};
    FuzzySystem fs{{in}, out};
    using A = std::array<std::string_view, 1>;
    fs.add_rule(A{"narrow"}, "any");
    const std::array<double, 1> off{0.0};
    EXPECT_DOUBLE_EQ(fs.infer(off), 0.5);
}

TEST(FuzzySystemTest, WildcardAntecedent) {
    FuzzyVar a{"a", 0.0, 1.0, {{"on", {0.5, 0.9, 1, 1}}}};
    FuzzyVar b{"b", 0.0, 1.0, {{"on", {0.5, 0.9, 1, 1}}}};
    FuzzyVar out{"y", 0.0, 1.0, {{"yes", {0.5, 0.9, 1, 1}}, {"no", {0, 0, 0.1, 0.5}}}};
    FuzzySystem fs{{a, b}, out};
    using A = std::array<std::string_view, 2>;
    fs.add_rule(A{"on", "*"}, "yes");
    const std::array<double, 2> input{1.0, 0.0};  // b irrelevant
    EXPECT_GT(fs.infer(input), 0.6);
}

TEST(FuzzySystemTest, BadNamesThrow) {
    FuzzySystem fs = tiny_system();
    using A = std::array<std::string_view, 1>;
    EXPECT_THROW(fs.add_rule(A{"nonexistent"}, "small"), std::invalid_argument);
    EXPECT_THROW(fs.add_rule(A{"low"}, "nonexistent"), std::invalid_argument);
    const std::array<double, 2> wrong{1.0, 2.0};
    EXPECT_THROW((void)fs.infer(wrong), std::invalid_argument);
}

// ------------------------------------------------------------ susceptibility

TEST(SusceptibilityTest, ExpertGamerLessSusceptible) {
    const SusceptibilityModel model;
    UserProfile gamer;
    gamer.age = 22;
    gamer.gaming_hours_per_week = 20.0;
    UserProfile novice;
    novice.age = 22;
    novice.gaming_hours_per_week = 0.0;
    EXPECT_LT(model.susceptibility(gamer), model.susceptibility(novice));
}

TEST(SusceptibilityTest, AgeIncreasesSusceptibility) {
    const SusceptibilityModel model;
    UserProfile young;
    young.age = 20;
    young.gaming_hours_per_week = 2.0;
    UserProfile senior;
    senior.age = 65;
    senior.gaming_hours_per_week = 2.0;
    EXPECT_LT(model.susceptibility(young), model.susceptibility(senior));
}

TEST(SusceptibilityTest, BoundedToUnitInterval) {
    const SusceptibilityModel model;
    for (const double age : {10.0, 30.0, 80.0}) {
        for (const double gaming : {0.0, 10.0, 30.0}) {
            for (const Gender g : {Gender::Female, Gender::Male, Gender::Other}) {
                UserProfile u;
                u.age = age;
                u.gaming_hours_per_week = gaming;
                u.gender = g;
                const double s = model.susceptibility(u);
                EXPECT_GE(s, 0.0);
                EXPECT_LE(s, 1.0);
            }
        }
    }
}

// ----------------------------------------------------------------- sickness

ExposureConditions comfortable() {
    ExposureConditions c;
    c.nav_speed_mps = 0.0;
    c.rotation_rps = 0.0;
    c.latency_ms = 15.0;
    c.fps = 90.0;
    c.fov_deg = 100.0;
    return c;
}

TEST(SicknessTest, ComfortableConditionsAccumulateNothing) {
    CybersicknessModel model{0.8, SicknessParams{}};
    for (int i = 0; i < 600; ++i) model.advance(1.0, comfortable());
    EXPECT_DOUBLE_EQ(model.score(), 0.0);
}

class StressorSweep : public ::testing::TestWithParam<double> {};

TEST_P(StressorSweep, ScoreMonotoneInNavSpeed) {
    const double speed = GetParam();
    ExposureConditions slow = comfortable();
    slow.nav_speed_mps = speed;
    ExposureConditions fast = comfortable();
    fast.nav_speed_mps = speed + 1.0;
    CybersicknessModel a{0.8, SicknessParams{}};
    CybersicknessModel b{0.8, SicknessParams{}};
    for (int i = 0; i < 300; ++i) {
        a.advance(1.0, slow);
        b.advance(1.0, fast);
    }
    EXPECT_LE(a.score(), b.score());
}

INSTANTIATE_TEST_SUITE_P(Speeds, StressorSweep, ::testing::Values(1.0, 2.0, 3.0, 4.0));

TEST(SicknessTest, LatencyAndLowFpsHurt) {
    ExposureConditions moving = comfortable();
    moving.nav_speed_mps = 3.0;
    ExposureConditions bad = moving;
    bad.latency_ms = 150.0;
    bad.fps = 30.0;
    CybersicknessModel good_model{0.8, SicknessParams{}};
    CybersicknessModel bad_model{0.8, SicknessParams{}};
    for (int i = 0; i < 300; ++i) {
        good_model.advance(1.0, moving);
        bad_model.advance(1.0, bad);
    }
    EXPECT_GT(bad_model.score(), good_model.score() * 1.3);
}

TEST(SicknessTest, FovRestrictionHelpsOnlyDuringLocomotion) {
    CybersicknessModel model{1.0, SicknessParams{}};
    ExposureConditions seated = comfortable();
    seated.fov_deg = 110.0;
    EXPECT_DOUBLE_EQ(model.stressor(seated), 0.0);  // no vection, FOV harmless
    ExposureConditions walking_wide = comfortable();
    walking_wide.nav_speed_mps = 3.0;
    walking_wide.fov_deg = 110.0;
    ExposureConditions walking_narrow = walking_wide;
    walking_narrow.fov_deg = 60.0;
    EXPECT_GT(model.stressor(walking_wide), model.stressor(walking_narrow));
}

TEST(SicknessTest, SusceptibilityScalesAccumulation) {
    ExposureConditions rough = comfortable();
    rough.nav_speed_mps = 4.0;
    rough.rotation_rps = 1.0;
    CybersicknessModel tough{0.2, SicknessParams{}};
    CybersicknessModel fragile{1.0, SicknessParams{}};
    for (int i = 0; i < 120; ++i) {
        tough.advance(1.0, rough);
        fragile.advance(1.0, rough);
    }
    EXPECT_GT(fragile.score(), tough.score() * 3.0);
}

TEST(SicknessTest, RecoveryDuringRest) {
    ExposureConditions rough = comfortable();
    rough.nav_speed_mps = 4.0;
    rough.rotation_rps = 1.5;
    CybersicknessModel model{1.0, SicknessParams{}};
    for (int i = 0; i < 300; ++i) model.advance(1.0, rough);
    const double peak = model.score();
    ASSERT_GT(peak, 5.0);
    for (int i = 0; i < 300; ++i) model.advance(1.0, comfortable());
    EXPECT_LT(model.score(), peak);
}

TEST(SicknessTest, ScoreSaturatesAtMax) {
    SicknessParams params;
    params.max_score = 50.0;
    ExposureConditions awful = comfortable();
    awful.nav_speed_mps = 5.0;
    awful.rotation_rps = 2.0;
    awful.latency_ms = 300.0;
    awful.fps = 15.0;
    CybersicknessModel model{1.0, params};
    for (int i = 0; i < 36000; ++i) model.advance(1.0, awful);
    EXPECT_DOUBLE_EQ(model.score(), 50.0);
}

TEST(SicknessTest, ConcerningThreshold) {
    CybersicknessModel model{1.0, SicknessParams{}};
    EXPECT_FALSE(model.concerning());
    ExposureConditions awful = comfortable();
    awful.nav_speed_mps = 5.0;
    awful.rotation_rps = 2.0;
    for (int i = 0; i < 1200; ++i) model.advance(1.0, awful);
    EXPECT_TRUE(model.concerning());
}

TEST(SicknessTest, UserProfileConstructorMatchesFuzzyModel) {
    UserProfile u;
    u.age = 60;
    u.gaming_hours_per_week = 0.0;
    const CybersicknessModel model{u, SicknessParams{}};
    EXPECT_NEAR(model.susceptibility(), SusceptibilityModel{}.susceptibility(u), 1e-12);
}

// ------------------------------------------------------------ speed protector

TEST(SpeedProtectorTest, AllowsComfortableSpeedUnchanged) {
    CybersicknessModel model{0.3, SicknessParams{}};
    SpeedProtector protector{model};
    ExposureConditions cond = comfortable();
    EXPECT_DOUBLE_EQ(protector.allowed_speed(1.0, cond, 0.0), 1.0);
    EXPECT_EQ(protector.interventions(), 0u);
}

TEST(SpeedProtectorTest, CapsAggressiveSpeedForFragileUser) {
    CybersicknessModel model{1.0, SicknessParams{}};
    SpeedProtectorParams params;
    params.score_budget = 5.0;
    params.session_minutes = 60.0;
    SpeedProtector protector{model, params};
    const double allowed = protector.allowed_speed(5.0, comfortable(), 0.0);
    EXPECT_LT(allowed, 5.0);
    EXPECT_GT(protector.interventions(), 0u);
}

TEST(SpeedProtectorTest, TightensAsBudgetDepletes) {
    SicknessParams sp;
    CybersicknessModel model{1.0, sp};
    SpeedProtectorParams params;
    params.score_budget = 10.0;
    SpeedProtector protector{model, params};
    const double fresh = protector.allowed_speed(5.0, comfortable(), 0.0);
    // Burn most of the budget.
    ExposureConditions rough = comfortable();
    rough.nav_speed_mps = 5.0;
    rough.rotation_rps = 1.5;
    while (model.score() < 8.0) model.advance(1.0, rough);
    const double depleted = protector.allowed_speed(5.0, comfortable(), 20.0);
    EXPECT_LT(depleted, fresh);
}

TEST(SpeedProtectorTest, RespectsAbsoluteMaxSpeed) {
    CybersicknessModel model{0.0, SicknessParams{}};  // immune user
    SpeedProtectorParams params;
    params.max_speed_mps = 3.0;
    SpeedProtector protector{model, params};
    EXPECT_DOUBLE_EQ(protector.allowed_speed(10.0, comfortable(), 0.0), 3.0);
}

TEST(SpeedProtectorTest, ProtectedSessionStaysUnderBudget) {
    // Closed loop: user always requests 5 m/s, protector clamps, model
    // integrates the *clamped* exposure; end-of-class score <= budget.
    SicknessParams sp;
    CybersicknessModel model{0.9, sp};
    SpeedProtectorParams params;
    params.score_budget = 12.0;
    params.session_minutes = 45.0;
    SpeedProtector protector{model, params};
    ExposureConditions cond = comfortable();
    for (int sec = 0; sec < 45 * 60; ++sec) {
        const double v = protector.allowed_speed(5.0, cond, sec / 60.0);
        ExposureConditions actual = cond;
        actual.nav_speed_mps = v;
        model.advance(1.0, actual);
    }
    EXPECT_LE(model.score(), params.score_budget + 0.5);
    EXPECT_GT(model.score(), 1.0);  // protector allows real movement
}

}  // namespace
}  // namespace mvc::comfort
