// Tests for the dependency-free JSON module: parsing (values, strings,
// escapes, numbers, nesting, error offsets), accessors, and serialization
// round-trips.

#include <gtest/gtest.h>

#include "common/json.hpp"

namespace mvc::common {
namespace {

TEST(JsonParseTest, Scalars) {
    EXPECT_TRUE(Json::parse("null").is_null());
    EXPECT_EQ(Json::parse("true").as_bool(), true);
    EXPECT_EQ(Json::parse("false").as_bool(), false);
    EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(Json::parse("-3.25").as_number(), -3.25);
    EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
    EXPECT_DOUBLE_EQ(Json::parse("2.5E-2").as_number(), 0.025);
    EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParseTest, WhitespaceTolerated) {
    const Json v = Json::parse("  \n\t {  \"a\" :\r 1 }  ");
    EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.0);
}

TEST(JsonParseTest, NestedStructures) {
    const Json v = Json::parse(R"({"a": [1, 2, {"b": [true, null]}], "c": {}})");
    const JsonArray& a = v.find("a")->as_array();
    ASSERT_EQ(a.size(), 3u);
    EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
    const JsonArray& b = a[2].find("b")->as_array();
    EXPECT_TRUE(b[0].as_bool());
    EXPECT_TRUE(b[1].is_null());
    EXPECT_TRUE(v.find("c")->as_object().empty());
}

TEST(JsonParseTest, EmptyContainers) {
    EXPECT_TRUE(Json::parse("[]").as_array().empty());
    EXPECT_TRUE(Json::parse("{}").as_object().empty());
}

TEST(JsonParseTest, StringEscapes) {
    const Json v = Json::parse(R"("a\"b\\c\/d\n\t\r\b\f")");
    EXPECT_EQ(v.as_string(), "a\"b\\c/d\n\t\r\b\f");
}

TEST(JsonParseTest, UnicodeEscapesBmp) {
    EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
    EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");      // é
    EXPECT_EQ(Json::parse(R"("中")").as_string(), "\xe4\xb8\xad");  // 中
}

TEST(JsonParseTest, SurrogateEscapesRejectedButRawUtf8PassesThrough) {
    // \u escapes in the surrogate range are out of scope...
    EXPECT_THROW(Json::parse(R"("\uD83D\uDE00")"), JsonParseError);
    // ...but raw UTF-8 (any code point) flows through untouched.
    EXPECT_EQ(Json::parse("\"\xf0\x9f\x98\x80\"").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, ErrorsCarryOffsets) {
    try {
        (void)Json::parse("{\"a\": }");
        FAIL() << "expected parse error";
    } catch (const JsonParseError& e) {
        EXPECT_GE(e.offset(), 6u);
    }
}

TEST(JsonParseTest, MalformedInputsThrow) {
    for (const char* bad :
         {"", "{", "[1,", "tru", "nul", "{\"a\" 1}", "[1 2]", "\"unterminated",
          "01x", "--1", "{\"a\":1,}", "[1,]", "1 2", "\"a\" extra"}) {
        EXPECT_THROW(Json::parse(bad), JsonParseError) << "input: " << bad;
    }
}

TEST(JsonParseTest, ControlCharacterInStringRejected) {
    const std::string bad = std::string{"\""} + '\n' + "\"";
    EXPECT_THROW(Json::parse(bad), JsonParseError);
}

TEST(JsonAccessTest, TypeMismatchThrows) {
    const Json v = Json::parse("[1]");
    EXPECT_THROW((void)v.as_object(), std::runtime_error);
    EXPECT_THROW((void)v.as_string(), std::runtime_error);
    EXPECT_THROW((void)v.as_number(), std::runtime_error);
}

TEST(JsonAccessTest, FindAndDefaults) {
    const Json v = Json::parse(R"({"x": 5, "s": "str", "f": true})");
    EXPECT_NE(v.find("x"), nullptr);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(v.number_or("x", 0.0), 5.0);
    EXPECT_DOUBLE_EQ(v.number_or("missing", 7.5), 7.5);
    EXPECT_EQ(v.string_or("s", ""), "str");
    EXPECT_EQ(v.string_or("missing", "dflt"), "dflt");
    EXPECT_TRUE(v.bool_or("f", false));
    EXPECT_TRUE(v.bool_or("missing", true));
}

TEST(JsonAccessTest, DefaultsStillTypeCheckPresentKeys) {
    const Json v = Json::parse(R"({"x": "not a number"})");
    EXPECT_THROW((void)v.number_or("x", 0.0), std::runtime_error);
}

TEST(JsonAccessTest, IndexBuildsObjects) {
    Json v;
    v["a"] = Json{1.0};
    v["b"]["c"] = Json{"deep"};
    EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.0);
    EXPECT_EQ(v.find("b")->find("c")->as_string(), "deep");
}

TEST(JsonDumpTest, CompactRoundTrips) {
    const char* docs[] = {
        R"({"a":[1,2,3],"b":{"c":"d"},"e":null,"f":true})",
        R"([1.5,"x",[],{}])",
        R"("escape\nme")",
    };
    for (const char* doc : docs) {
        const Json v = Json::parse(doc);
        const Json again = Json::parse(v.dump());
        EXPECT_EQ(v, again) << doc;
    }
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimal) {
    EXPECT_EQ(Json{42.0}.dump(), "42");
    EXPECT_EQ(Json{-7}.dump(), "-7");
    EXPECT_EQ(Json{2.5}.dump(), "2.5");
}

TEST(JsonDumpTest, SpecialFloatsDegradeToNull) {
    EXPECT_EQ(Json{std::numeric_limits<double>::quiet_NaN()}.dump(), "null");
    EXPECT_EQ(Json{std::numeric_limits<double>::infinity()}.dump(), "null");
}

TEST(JsonDumpTest, EscapesControlCharacters) {
    const Json v{std::string{"a\x01"
                             "b"}};
    EXPECT_EQ(v.dump(), "\"a\\u0001b\"");
    EXPECT_EQ(Json::parse(v.dump()).as_string(), v.as_string());
}

TEST(JsonDumpTest, PrettyPrintIndents) {
    const Json v = Json::parse(R"({"a":[1],"b":"x"})");
    const std::string pretty = v.dump(2);
    EXPECT_NE(pretty.find("{\n  \"a\": [\n    1\n  ]"), std::string::npos) << pretty;
    EXPECT_EQ(Json::parse(pretty), v);
}

TEST(JsonDumpTest, DeterministicKeyOrder) {
    const Json a = Json::parse(R"({"z":1,"a":2})");
    const Json b = Json::parse(R"({"a":2,"z":1})");
    EXPECT_EQ(a.dump(), b.dump());  // ordered map sorts keys
}

TEST(JsonDumpTest, DoubleRoundTripsExactly) {
    const double values[] = {0.1, 1.0 / 3.0, 1e-300, 12345.6789, -9.87654321e20};
    for (const double d : values) {
        EXPECT_DOUBLE_EQ(Json::parse(Json{d}.dump()).as_number(), d);
    }
}

}  // namespace
}  // namespace mvc::common
