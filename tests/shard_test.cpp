// Tests for the sharded parallel engine: ShardSet epoch protocol (ordering,
// lookahead enforcement, thread-count independence) and the ShardedWorld
// fabric (proxy wiring, cross-shard delivery, deterministic merged metrics).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/sharded_world.hpp"
#include "net/channel.hpp"
#include "net/transport.hpp"
#include "sim/shard.hpp"

namespace mvc {
namespace {

using sim::ShardSet;
using sim::Time;

// ------------------------------------------------------------------ ShardSet

TEST(ShardSetTest, RejectsDegenerateConfigurations) {
    EXPECT_THROW(ShardSet(0, 1, Time::ms(10)), std::invalid_argument);
    EXPECT_THROW(ShardSet(2, 1, Time::zero()), std::invalid_argument);
    EXPECT_THROW(ShardSet(2, 1, Time::ms(-5)), std::invalid_argument);
}

TEST(ShardSetTest, CrossShardPostDeliversAtItsTimestamp) {
    ShardSet shards{2, 7, Time::ms(10)};
    Time delivered_at = Time::zero();
    // Posted from the driving thread before the run; due one epoch out.
    shards.post(0, 1, Time::ms(10), [&] { delivered_at = shards.shard(1).now(); });
    shards.run_until(Time::ms(30));
    EXPECT_EQ(delivered_at, Time::ms(10));
    EXPECT_EQ(shards.cross_messages(), 1u);
    EXPECT_EQ(shards.lookahead_violations(), 0u);
}

TEST(ShardSetTest, ExchangeOrderedBySourceShardThenPostOrder) {
    ShardSet shards{3, 7, Time::ms(10)};
    std::vector<int> order;
    // All land in shard 2 at the same instant; the tie must break by
    // (source shard, post order), not by who posted "first" in wall time.
    shards.post(1, 2, Time::ms(10), [&] { order.push_back(10); });
    shards.post(1, 2, Time::ms(10), [&] { order.push_back(11); });
    shards.post(0, 2, Time::ms(10), [&] { order.push_back(0); });
    shards.run_until(Time::ms(20));
    EXPECT_EQ(order, (std::vector<int>{0, 10, 11}));
}

TEST(ShardSetTest, LookaheadViolationClampedToBoundaryAndCounted) {
    ShardSet shards{2, 7, Time::ms(10)};
    Time delivered_at = Time::zero();
    // Due *inside* the first epoch — illegal for a conservative engine. The
    // engine must flag it and clamp delivery to the epoch boundary.
    shards.post(0, 1, Time::ms(3), [&] { delivered_at = shards.shard(1).now(); });
    shards.run_until(Time::ms(20));
    EXPECT_EQ(shards.lookahead_violations(), 1u);
    EXPECT_EQ(delivered_at, Time::ms(10));
}

TEST(ShardSetTest, EpochsAdvanceInLookaheadSteps) {
    ShardSet shards{2, 7, Time::ms(10)};
    shards.run_until(Time::ms(100));
    EXPECT_EQ(shards.epochs_run(), 10u);
    EXPECT_EQ(shards.now(), Time::ms(100));
}

TEST(ShardSetTest, RelayChainIsIdenticalForAnyThreadCount) {
    // A ping-pong workload: shard 0 posts into shard 1, whose handler posts
    // back, several generations deep. The executed-event trace must not
    // depend on how many worker threads ran the epochs.
    const auto run = [](std::size_t threads) {
        ShardSet shards{4, 7, Time::ms(5)};
        std::vector<std::string> trace;
        // Local event activity in every shard, so workers genuinely execute.
        for (std::size_t s = 0; s < 4; ++s) {
            shards.shard(s).schedule_every(Time::ms(1), [] {});
        }
        std::function<void(std::size_t, int)> hop = [&](std::size_t shard, int depth) {
            trace.push_back(std::to_string(shard) + "@" +
                            std::to_string(shards.shard(shard).now().to_us()));
            if (depth == 0) return;
            const std::size_t next = (shard + 1) % 4;
            shards.post(shard, next, shards.now() + Time::ms(10),
                        [&, next, depth] { hop(next, depth - 1); });
        };
        shards.post(0, 1, Time::ms(5), [&] { hop(1, 6); });
        shards.run_until(Time::ms(100), threads);
        EXPECT_EQ(shards.lookahead_violations(), 0u);
        return trace;
    };
    const std::vector<std::string> serial = run(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(4), serial);
    EXPECT_EQ(run(9), serial);  // more threads than shards: clamped, same result
}

// -------------------------------------------------------------- ShardedWorld

TEST(ShardedWorldTest, ProxyLookupThrowsWhenUnconnected) {
    core::ShardedWorld world{2, 7};
    const core::GlobalNode a = world.add_node(0, "a", net::Region::HongKong);
    const core::GlobalNode b = world.add_node(1, "b", net::Region::Tokyo);
    EXPECT_THROW((void)world.proxy_in(0, b), std::invalid_argument);
    world.connect_cross(a, b, net::LinkParams{});
    EXPECT_NE(world.proxy_in(0, b), net::kInvalidNode);
    EXPECT_NE(world.proxy_in(1, a), net::kInvalidNode);
}

TEST(ShardedWorldTest, CrossShardSendArrivesWithLinkLatencyAndProxySrc) {
    core::ShardedWorld world{2, 7};
    const core::GlobalNode a = world.add_node(0, "a", net::Region::HongKong);
    const core::GlobalNode b = world.add_node(1, "b", net::Region::Tokyo);
    net::LinkParams params;
    params.latency = sim::Time::ms(40);
    world.connect_cross(a, b, params);

    Time arrival = Time::zero();
    net::NodeId seen_src = net::kInvalidNode;
    world.network(1).set_handler(b.node, [&](net::Packet&& p) {
        arrival = world.simulator(1).now();
        seen_src = p.src;
    });
    world.simulator(0).schedule_at(Time::ms(1), [&] {
        world.network(0).send(a.node, world.proxy_in(0, b), 100, "test", {});
    });
    world.run_until(Time::ms(100));

    EXPECT_EQ(arrival, Time::ms(41));
    // In shard 1, the sender is addressed through its proxy there.
    EXPECT_EQ(seen_src, world.proxy_in(1, a));
    EXPECT_EQ(world.lookahead_violations(), 0u);
    EXPECT_EQ(world.lookahead(), Time::ms(40));
}

TEST(ShardedWorldTest, MergedMetricsByteIdenticalAcrossThreadCounts) {
    // Two shards trading periodic traffic both ways; the merged export —
    // counters, series, engine stats — must not depend on the thread count.
    const auto run = [](std::size_t threads) {
        core::ShardedWorld world{2, 7};
        const core::GlobalNode a = world.add_node(0, "a", net::Region::HongKong);
        const core::GlobalNode b = world.add_node(1, "b", net::Region::Tokyo);
        net::LinkParams params;
        params.latency = sim::Time::ms(10);
        params.jitter = sim::Time::ms(2);
        world.connect_cross(a, b, params);

        net::Channel a_tx = world.network(0).open_channel({.src = a.node, .flow = "chat"});
        net::Channel b_tx = world.network(1).open_channel({.src = b.node, .flow = "chat"});
        world.simulator(0).schedule_every(Time::ms(7), [&] {
            a_tx.send_to(world.proxy_in(0, b), 200, {});
        });
        world.simulator(1).schedule_every(Time::ms(11), [&] {
            b_tx.send_to(world.proxy_in(1, a), 300, {});
        });
        world.run_until(Time::seconds(1.0), threads);
        EXPECT_EQ(world.lookahead_violations(), 0u);
        return world.merged_metrics().to_json().dump(2);
    };
    const std::string serial = run(1);
    EXPECT_NE(serial.find("shard.epochs"), std::string::npos);
    EXPECT_NE(serial.find("shard.cross_messages"), std::string::npos);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(3), serial);
}

}  // namespace
}  // namespace mvc
