// Tests for the avatar layer: skeleton forward kinematics, quantized wire
// codecs (round-trip precision, delta masks, byte sizes), state helpers and
// the LOD ladder.

#include <gtest/gtest.h>

#include <random>

#include "avatar/codec.hpp"
#include "avatar/lod.hpp"
#include "avatar/serialize.hpp"
#include "avatar/skeleton.hpp"

namespace mvc::avatar {
namespace {

// ----------------------------------------------------------------- serialize

TEST(SerializeTest, WriterReaderRoundTrip) {
    ByteWriter w;
    w.u8(7);
    w.u16(1234);
    w.u32(7654321);
    w.u64(123456789012345ULL);
    w.i16(-321);
    w.f32(2.5f);
    const auto bytes = w.bytes();
    ByteReader r{bytes};
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u16(), 1234);
    EXPECT_EQ(r.u32(), 7654321u);
    EXPECT_EQ(r.u64(), 123456789012345ULL);
    EXPECT_EQ(r.i16(), -321);
    EXPECT_FLOAT_EQ(r.f32(), 2.5f);
    EXPECT_TRUE(r.done());
}

TEST(SerializeTest, TruncatedReadThrows) {
    const std::vector<std::uint8_t> bytes{1, 2};
    ByteReader r{bytes};
    EXPECT_THROW((void)r.u32(), std::out_of_range);
}

TEST(SerializeTest, Quantize16RoundTripWithinResolution) {
    const double lo = -10.0;
    const double hi = 10.0;
    const double resolution = (hi - lo) / 65535.0;
    std::mt19937 gen{4};
    std::uniform_real_distribution<double> d{lo, hi};
    for (int i = 0; i < 2000; ++i) {
        const double v = d(gen);
        const double back = dequantize16(quantize16(v, lo, hi), lo, hi);
        EXPECT_NEAR(back, v, resolution);
    }
}

TEST(SerializeTest, Quantize16Clamps) {
    EXPECT_DOUBLE_EQ(dequantize16(quantize16(99.0, -1.0, 1.0), -1.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(dequantize16(quantize16(-99.0, -1.0, 1.0), -1.0, 1.0), -1.0);
}

TEST(SerializeTest, Quantize8Unit) {
    EXPECT_EQ(quantize8_unit(0.0), 0);
    EXPECT_EQ(quantize8_unit(1.0), 255);
    EXPECT_EQ(quantize8_unit(2.0), 255);
    EXPECT_NEAR(dequantize8_unit(quantize8_unit(0.4)), 0.4, 1.0 / 255.0);
}

// ------------------------------------------------------------------ skeleton

TEST(SkeletonTest, ClassroomHumanoidWellFormed) {
    const Skeleton sk = Skeleton::classroom_humanoid();
    EXPECT_EQ(sk.joint_count(), 19u);
    EXPECT_EQ(sk.find("head"), 4);
    EXPECT_EQ(sk.find("nonexistent"), -1);
    EXPECT_EQ(sk.joint(0).parent, -1);
}

TEST(SkeletonTest, RestPoseFkStacksOffsets) {
    const Skeleton sk = Skeleton::classroom_humanoid();
    const std::vector<math::Quat> rest(sk.joint_count(), math::Quat::identity());
    const auto world = sk.forward_kinematics(math::Pose::identity(), rest);
    const int head = sk.find("head");
    ASSERT_GE(head, 0);
    // hips(0.95) + spine(.15) + chest(.15) + neck(.12) + head(.10) = 1.47 m.
    EXPECT_NEAR(world[static_cast<std::size_t>(head)].position.y, 1.47, 1e-9);
}

TEST(SkeletonTest, RootPoseTransformsAll) {
    const Skeleton sk = Skeleton::classroom_humanoid();
    const std::vector<math::Quat> rest(sk.joint_count(), math::Quat::identity());
    const math::Pose root{{3, 0, -2}, math::Quat::identity()};
    const auto world = sk.forward_kinematics(root, rest);
    EXPECT_NEAR(world[0].position.x, 3.0, 1e-12);
    EXPECT_NEAR(world[0].position.z, -2.0, 1e-12);
}

TEST(SkeletonTest, JointRotationMovesChildren) {
    const Skeleton sk = Skeleton::classroom_humanoid();
    std::vector<math::Quat> rot(sk.joint_count(), math::Quat::identity());
    const int shoulder = sk.find("r_shoulder");
    ASSERT_GE(shoulder, 0);
    // Rotate the right shoulder 90 deg about z: the arm should point up.
    rot[static_cast<std::size_t>(shoulder)] =
        math::Quat::from_axis_angle(math::Vec3::unit_z(), 1.5707963267948966);
    const auto world = sk.forward_kinematics(math::Pose::identity(), rot);
    const int hand = sk.find("r_hand");
    const int chest = sk.find("chest");
    ASSERT_GE(hand, 0);
    // Hand now above the chest instead of out to the side.
    EXPECT_GT(world[static_cast<std::size_t>(hand)].position.y,
              world[static_cast<std::size_t>(chest)].position.y + 0.3);
}

TEST(SkeletonTest, MalformedHierarchiesThrow) {
    EXPECT_THROW(Skeleton({}), std::invalid_argument);
    EXPECT_THROW(Skeleton({{"a", -1, {}}, {"b", 5, {}}}), std::invalid_argument);
    EXPECT_THROW(Skeleton({{"a", -1, {}}, {"b", -1, {}}}), std::invalid_argument);
}

TEST(SkeletonTest, FkRotationCountMismatchThrows) {
    const Skeleton sk = Skeleton::classroom_humanoid();
    EXPECT_THROW((void)sk.forward_kinematics(math::Pose::identity(), {}),
                 std::invalid_argument);
}

// --------------------------------------------------------------------- state

AvatarState sample_state(std::uint32_t id = 5) {
    AvatarState s;
    s.participant = ParticipantId{id};
    s.root.pose = {{3.2, 0.0, -7.5}, math::Quat::from_yaw_pitch_roll(0.4, 0.1, 0.0)};
    s.root.linear_velocity = {0.5, 0.0, -0.2};
    s.root.angular_velocity = {0.0, 0.3, 0.0};
    s.body.head = {s.root.pose.position + math::Vec3{0, 0.65, 0}, s.root.pose.orientation};
    s.body.left_hand = {s.root.pose.position + math::Vec3{-0.25, 0.35, -0.2},
                        s.root.pose.orientation};
    s.body.right_hand = {s.root.pose.position + math::Vec3{0.25, 0.35, -0.2},
                         s.root.pose.orientation};
    s.expression.assign(kExpressionChannels, 0.25);
    s.viseme = 3;
    s.captured_at = sim::Time::ms(1234.0);
    return s;
}

TEST(AvatarStateTest, ErrorZeroForIdentical) {
    const AvatarState s = sample_state();
    EXPECT_DOUBLE_EQ(avatar_error(s, s), 0.0);
}

TEST(AvatarStateTest, ExtrapolateMovesRootAndJointsTogether) {
    const AvatarState s = sample_state();
    const AvatarState next = extrapolate(s, 2.0);
    const math::Vec3 shift = next.root.pose.position - s.root.pose.position;
    EXPECT_TRUE(math::approx_equal(shift, {1.0, 0.0, -0.4}, 1e-9));
    EXPECT_TRUE(math::approx_equal(next.body.head.position - s.body.head.position, shift,
                                   1e-9));
}

// --------------------------------------------------------------------- codec

TEST(CodecTest, FullRoundTripWithinQuantizationBounds) {
    const AvatarCodec codec;
    const AvatarState s = sample_state();
    const auto bytes = codec.encode_full(s);
    const AvatarState d = codec.decode_full(bytes);

    EXPECT_EQ(d.participant, s.participant);
    EXPECT_EQ(d.viseme, s.viseme);
    EXPECT_LT(d.root.pose.position.distance_to(s.root.pose.position),
              2.0 * codec.position_resolution());
    EXPECT_LT(math::angular_distance(d.root.pose.orientation, s.root.pose.orientation),
              0.002);
    EXPECT_LT(d.body.head.position.distance_to(s.body.head.position), 0.005);
    for (std::size_t i = 0; i < kExpressionChannels; ++i) {
        EXPECT_NEAR(d.expression[i], s.expression[i], 1.0 / 255.0);
    }
    EXPECT_NEAR((d.captured_at - s.captured_at).to_ms(), 0.0, 0.01);
}

TEST(CodecTest, FullSnapshotIsCompact) {
    const AvatarCodec codec;
    const auto bytes = codec.encode_full(sample_state());
    // The whole avatar — pose, velocities, 3 joints, 16 expression channels —
    // must fit in about a hundred bytes (the E2 premise).
    EXPECT_LE(bytes.size(), 120u);
    EXPECT_GE(bytes.size(), 60u);
}

TEST(CodecTest, FullRoundTripRandomized) {
    const AvatarCodec codec;
    std::mt19937 gen{12};
    std::uniform_real_distribution<double> pos{-50.0, 50.0};
    std::uniform_real_distribution<double> ang{-3.0, 3.0};
    for (int i = 0; i < 200; ++i) {
        AvatarState s = sample_state();
        s.root.pose.position = {pos(gen), pos(gen), pos(gen)};
        s.root.pose.orientation = math::Quat::from_yaw_pitch_roll(ang(gen), ang(gen) / 2,
                                                                  ang(gen) / 2);
        s.body.head.position = s.root.pose.position + math::Vec3{0, 0.6, 0};
        const AvatarState d = codec.decode_full(codec.encode_full(s));
        EXPECT_LT(d.root.pose.position.distance_to(s.root.pose.position), 0.01);
        EXPECT_LT(math::angular_distance(d.root.pose.orientation, s.root.pose.orientation),
                  0.01);
    }
}

TEST(CodecTest, DeltaOfIdenticalStateIsTiny) {
    const AvatarCodec codec;
    const AvatarState s = sample_state();
    const auto bytes = codec.encode_delta(s, s);
    // Mask + timestamp only.
    EXPECT_LE(bytes.size(), 6u);
}

TEST(CodecTest, DeltaEncodesOnlyChangedGroups) {
    const AvatarCodec codec;
    const AvatarState ref = sample_state();
    AvatarState cur = ref;
    cur.root.pose.position += math::Vec3{0.5, 0, 0};
    cur.body.head.position += math::Vec3{0.5, 0, 0};
    const auto delta = codec.encode_delta(ref, cur);
    const auto full = codec.encode_full(cur);
    EXPECT_LT(delta.size(), full.size());

    const AvatarState d = codec.decode_delta(ref, delta);
    EXPECT_LT(d.root.pose.position.distance_to(cur.root.pose.position), 0.01);
    EXPECT_LT(d.body.head.position.distance_to(cur.body.head.position), 0.01);
    // Unchanged fields survive from the reference.
    EXPECT_EQ(d.viseme, ref.viseme);
}

TEST(CodecTest, DeltaVisemeOnly) {
    const AvatarCodec codec;
    const AvatarState ref = sample_state();
    AvatarState cur = ref;
    cur.viseme = 9;
    const auto delta = codec.encode_delta(ref, cur);
    EXPECT_LE(delta.size(), 8u);
    EXPECT_EQ(codec.decode_delta(ref, delta).viseme, 9);
}

TEST(CodecTest, DeltaExpressionChannelMask) {
    const AvatarCodec codec;
    const AvatarState ref = sample_state();
    AvatarState cur = ref;
    cur.expression[3] = 0.9;
    cur.expression[7] = 0.0;
    const auto delta = codec.encode_delta(ref, cur);
    const AvatarState d = codec.decode_delta(ref, delta);
    EXPECT_NEAR(d.expression[3], 0.9, 1.0 / 255.0);
    EXPECT_NEAR(d.expression[7], 0.0, 1.0 / 255.0);
    EXPECT_NEAR(d.expression[0], ref.expression[0], 1.0 / 255.0);
}

TEST(CodecTest, DeltaChainTracksSlowDrift) {
    const AvatarCodec codec;
    AvatarState truth = sample_state();
    AvatarState receiver_ref = codec.decode_full(codec.encode_full(truth));
    AvatarState sender_ref = receiver_ref;
    for (int step = 0; step < 50; ++step) {
        truth.root.pose.position += math::Vec3{0.02, 0, 0.01};
        truth.body.head.position += math::Vec3{0.02, 0, 0.01};
        const auto delta = codec.encode_delta(sender_ref, truth);
        receiver_ref = codec.decode_delta(receiver_ref, delta);
        sender_ref = receiver_ref;  // sender tracks what the receiver holds
    }
    EXPECT_LT(receiver_ref.root.pose.position.distance_to(truth.root.pose.position), 0.02);
}

// ----------------------------------------------------------------------- LOD

TEST(LodTest, LadderMonotoneInTriangles) {
    for (std::size_t i = 1; i < kLodCount; ++i) {
        EXPECT_LT(kLodLadder[i].triangles, kLodLadder[i - 1].triangles);
        EXPECT_LE(kLodLadder[i].update_rate_hz, kLodLadder[i - 1].update_rate_hz);
    }
}

TEST(LodTest, DistanceBandsMonotone) {
    EXPECT_EQ(lod_for_distance(1.0), LodLevel::Sophisticated);
    EXPECT_EQ(lod_for_distance(3.0), LodLevel::High);
    EXPECT_EQ(lod_for_distance(8.0), LodLevel::Medium);
    EXPECT_EQ(lod_for_distance(20.0), LodLevel::Low);
    EXPECT_EQ(lod_for_distance(100.0), LodLevel::Billboard);
    double prev = 0.0;
    for (const double d : {1.0, 3.0, 8.0, 20.0, 100.0}) {
        const auto lvl = static_cast<double>(lod_for_distance(d));
        EXPECT_GE(lvl, prev);
        prev = lvl;
    }
}

TEST(LodTest, CoarserSaturatesAtBillboard) {
    EXPECT_EQ(coarser(LodLevel::Sophisticated), LodLevel::High);
    EXPECT_EQ(coarser(LodLevel::Billboard), LodLevel::Billboard);
}

TEST(LodTest, ProfileLookupMatchesLadder) {
    EXPECT_EQ(lod_profile(LodLevel::High).triangles, 20'000u);
    EXPECT_EQ(lod_profile(LodLevel::Billboard).triangles, 2u);
}

}  // namespace
}  // namespace mvc::avatar
