// Tests for the two-bone IK solver and full-body reconstruction: bone
// lengths preserved exactly, targets reached when reachable, clamping and
// pole behaviour, and randomized property sweeps.

#include <gtest/gtest.h>

#include <random>

#include "avatar/ik.hpp"

namespace mvc::avatar {
namespace {

TEST(TwoBoneIkTest, ReachableTargetHitExactly) {
    const math::Vec3 root{0, 0, 0};
    const math::Vec3 target{0.3, -0.2, 0.1};
    const TwoBoneSolution sol = solve_two_bone(root, 0.26, 0.24, target, {1, 0, 0});
    EXPECT_FALSE(sol.clamped);
    EXPECT_LT(sol.wrist.distance_to(target), 1e-9);
    EXPECT_NEAR(root.distance_to(sol.elbow), 0.26, 1e-9);
    EXPECT_NEAR(sol.elbow.distance_to(sol.wrist), 0.24, 1e-9);
}

TEST(TwoBoneIkTest, OutOfReachClampsAlongDirection) {
    const math::Vec3 root{0, 0, 0};
    const math::Vec3 target{5, 0, 0};
    const TwoBoneSolution sol = solve_two_bone(root, 0.26, 0.24, target, {0, 1, 0});
    EXPECT_TRUE(sol.clamped);
    EXPECT_NEAR(root.distance_to(sol.wrist), 0.5, 1e-6);  // fully extended
    EXPECT_NEAR(sol.wrist.y, 0.0, 1e-6);
    EXPECT_GT(sol.wrist.x, 0.49);
}

TEST(TwoBoneIkTest, TooCloseClampsToMinReach) {
    const math::Vec3 root{0, 0, 0};
    const math::Vec3 target{0.005, 0, 0};
    const TwoBoneSolution sol = solve_two_bone(root, 0.30, 0.20, target, {0, 1, 0});
    EXPECT_TRUE(sol.clamped);
    // Minimum reach |l1 - l2| = 0.1.
    EXPECT_NEAR(root.distance_to(sol.wrist), 0.1, 1e-3);
    EXPECT_NEAR(root.distance_to(sol.elbow), 0.30, 1e-9);
}

TEST(TwoBoneIkTest, PoleSelectsElbowSide) {
    const math::Vec3 root{0, 0, 0};
    const math::Vec3 target{0.4, 0, 0};
    const TwoBoneSolution up = solve_two_bone(root, 0.26, 0.24, target, {0, 1, 0});
    const TwoBoneSolution down = solve_two_bone(root, 0.26, 0.24, target, {0, -1, 0});
    EXPECT_GT(up.elbow.y, 0.01);
    EXPECT_LT(down.elbow.y, -0.01);
    // Same wrist either way.
    EXPECT_LT(up.wrist.distance_to(down.wrist), 1e-9);
}

TEST(TwoBoneIkTest, PoleParallelToChainStillSolves) {
    const math::Vec3 root{0, 0, 0};
    const math::Vec3 target{0.4, 0, 0};
    const TwoBoneSolution sol = solve_two_bone(root, 0.26, 0.24, target, {1, 0, 0});
    EXPECT_NEAR(root.distance_to(sol.elbow), 0.26, 1e-9);
    EXPECT_LT(sol.wrist.distance_to(target), 1e-6);
}

TEST(TwoBoneIkTest, DegenerateTargetAtRoot) {
    const TwoBoneSolution sol =
        solve_two_bone({1, 1, 1}, 0.25, 0.25, {1, 1, 1}, {0, 1, 0});
    EXPECT_TRUE(sol.clamped);
    EXPECT_NEAR(math::Vec3(1, 1, 1).distance_to(sol.elbow), 0.25, 1e-6);
}

TEST(TwoBoneIkTest, InvalidLengthsThrow) {
    EXPECT_THROW((void)solve_two_bone({}, 0.0, 0.2, {1, 0, 0}, {0, 1, 0}),
                 std::invalid_argument);
    EXPECT_THROW((void)solve_two_bone({}, 0.2, -1.0, {1, 0, 0}, {0, 1, 0}),
                 std::invalid_argument);
}

TEST(TwoBoneIkTest, RandomizedBoneLengthInvariant) {
    std::mt19937 gen{77};
    std::uniform_real_distribution<double> d{-0.6, 0.6};
    std::uniform_real_distribution<double> len{0.1, 0.4};
    for (int i = 0; i < 500; ++i) {
        const double l1 = len(gen);
        const double l2 = len(gen);
        const math::Vec3 root{d(gen), d(gen), d(gen)};
        const math::Vec3 target = root + math::Vec3{d(gen), d(gen), d(gen)};
        const TwoBoneSolution sol =
            solve_two_bone(root, l1, l2, target, {d(gen), 1.0, d(gen)});
        EXPECT_NEAR(root.distance_to(sol.elbow), l1, 1e-6);
        EXPECT_NEAR(sol.elbow.distance_to(sol.wrist), l2, 1e-6);
        if (!sol.clamped) {
            EXPECT_LT(sol.wrist.distance_to(target), 1e-6);
        }
    }
}

// --------------------------------------------------------------- full body

AvatarState seated_state() {
    AvatarState s;
    s.participant = ParticipantId{1};
    s.root.pose = {{2.0, 0.95, 3.0},
                   math::Quat::from_axis_angle(math::Vec3::unit_y(), 0.4)};
    const math::Quat& q = s.root.pose.orientation;
    s.body.head = {s.root.pose.position + q.rotate({0.0, 0.5, 0.05}), q};
    s.body.left_hand = {s.root.pose.position + q.rotate({-0.25, 0.1, -0.25}), q};
    s.body.right_hand = {s.root.pose.position + q.rotate({0.28, 0.3, -0.15}), q};
    return s;
}

TEST(ReconstructBodyTest, HandsReachTheirTargets) {
    const Skeleton sk = Skeleton::classroom_humanoid();
    const AvatarState s = seated_state();
    const ReconstructedBody body = reconstruct_body(sk, s);
    ASSERT_EQ(body.joints.size(), sk.joint_count());
    const auto lh = static_cast<std::size_t>(sk.find("l_hand"));
    const auto rh = static_cast<std::size_t>(sk.find("r_hand"));
    if (!body.left_arm_clamped) {
        EXPECT_LT(body.joints[lh].position.distance_to(s.body.left_hand.position), 1e-6);
    }
    if (!body.right_arm_clamped) {
        EXPECT_LT(body.joints[rh].position.distance_to(s.body.right_hand.position), 1e-6);
    }
}

TEST(ReconstructBodyTest, ArmBoneLengthsPreserved) {
    const Skeleton sk = Skeleton::classroom_humanoid();
    const ReconstructedBody body = reconstruct_body(sk, seated_state());
    const auto up = static_cast<std::size_t>(sk.find("r_upper_arm"));
    const auto fo = static_cast<std::size_t>(sk.find("r_forearm"));
    const auto ha = static_cast<std::size_t>(sk.find("r_hand"));
    EXPECT_NEAR(body.joints[up].position.distance_to(body.joints[fo].position), 0.26,
                1e-6);
    EXPECT_NEAR(body.joints[fo].position.distance_to(body.joints[ha].position), 0.24,
                1e-6);
}

TEST(ReconstructBodyTest, HipsFollowRootPose) {
    const Skeleton sk = Skeleton::classroom_humanoid();
    const AvatarState s = seated_state();
    const ReconstructedBody body = reconstruct_body(sk, s);
    const auto hips = static_cast<std::size_t>(sk.find("hips"));
    // The hips joint carries the humanoid's 0.95 m rest offset in the root
    // frame.
    const math::Vec3 expected =
        s.root.pose.position + s.root.pose.orientation.rotate({0.0, 0.95, 0.0});
    EXPECT_LT(body.joints[hips].position.distance_to(expected), 1e-9);
}

TEST(ReconstructBodyTest, HeadOrientationFromTrackedHead) {
    const Skeleton sk = Skeleton::classroom_humanoid();
    AvatarState s = seated_state();
    s.body.head.orientation = math::Quat::from_yaw_pitch_roll(1.0, 0.2, 0.0);
    const ReconstructedBody body = reconstruct_body(sk, s);
    const auto head = static_cast<std::size_t>(sk.find("head"));
    EXPECT_NEAR(math::angular_distance(body.joints[head].orientation,
                                       s.body.head.orientation),
                0.0, 1e-9);
}

TEST(ReconstructBodyTest, UnreachableHandClampsAndFlags) {
    const Skeleton sk = Skeleton::classroom_humanoid();
    AvatarState s = seated_state();
    s.body.right_hand.position = s.root.pose.position + math::Vec3{5, 5, 5};
    const ReconstructedBody body = reconstruct_body(sk, s);
    EXPECT_TRUE(body.right_arm_clamped);
    const auto up = static_cast<std::size_t>(sk.find("r_upper_arm"));
    const auto ha = static_cast<std::size_t>(sk.find("r_hand"));
    EXPECT_NEAR(body.joints[up].position.distance_to(body.joints[ha].position),
                0.26 + 0.24, 1e-5);
}

TEST(ReconstructBodyTest, SpineBendsTowardLean) {
    const Skeleton sk = Skeleton::classroom_humanoid();
    AvatarState s = seated_state();
    // Lean far forward (-z in the root frame).
    s.body.head.position =
        s.root.pose.position + s.root.pose.orientation.rotate({0.0, 0.35, -0.4});
    const ReconstructedBody body = reconstruct_body(sk, s);
    const auto chest = static_cast<std::size_t>(sk.find("chest"));
    const auto hips = static_cast<std::size_t>(sk.find("hips"));
    const math::Vec3 chest_local = s.root.pose.to_local(
        math::Pose{body.joints[chest].position, math::Quat{}}).position;
    const math::Vec3 hips_local = s.root.pose.to_local(
        math::Pose{body.joints[hips].position, math::Quat{}}).position;
    EXPECT_LT(chest_local.z, hips_local.z - 0.05);  // chest ahead of hips
}

TEST(ReconstructBodyTest, WrongSkeletonThrows) {
    const Skeleton minimal{{{"hips", -1, {}}}};
    EXPECT_THROW((void)reconstruct_body(minimal, seated_state()), std::invalid_argument);
}

}  // namespace
}  // namespace mvc::avatar
