// End-to-end determinism: the bench binaries must write byte-identical
// BENCH_<id>.json artifacts on every same-seed run — including E16, whose
// quick mode sweeps worker-thread counts, so this also pins "same bytes for
// 1 vs N threads" at the whole-benchmark level.
//
// The binaries live under build/bench (METACLASS_BENCH_DIR, injected by the
// tests CMakeLists); each run gets its own scratch directory so artifacts
// cannot collide.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
    std::ifstream in{p, std::ios::binary};
    EXPECT_TRUE(in.good()) << "missing artifact: " << p;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Run `binary` (with `env` prefixed) in a fresh scratch dir; return the
/// bytes of the BENCH_<id>.json it wrote.
std::string run_bench(const std::string& binary, const std::string& id,
                      const std::string& env, const std::string& tag) {
    const fs::path bench = fs::path{METACLASS_BENCH_DIR} / binary;
    if (!fs::exists(bench)) {
        ADD_FAILURE() << "bench binary not built: " << bench;
        return {};
    }
    const fs::path dir = fs::temp_directory_path() / ("determinism_" + id + "_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string cmd = "cd " + dir.string() + " && " + env + " " +
                            bench.string() + " > /dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    EXPECT_EQ(rc, 0) << cmd;
    const std::string bytes = read_file(dir / ("BENCH_" + id + ".json"));
    fs::remove_all(dir);
    return bytes;
}

TEST(DeterminismTest, E4ArtifactByteIdenticalAcrossRuns) {
    const std::string a = run_bench("bench_e4_interest_mgmt", "e4", "", "a");
    const std::string b = run_bench("bench_e4_interest_mgmt", "e4", "", "b");
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(DeterminismTest, E16ArtifactByteIdenticalAcrossRunsAndThreadCounts) {
    // Quick mode runs the sharded sweep at 1 and 2 worker threads and
    // self-checks that the merged metrics match; the artifact additionally
    // records the (thread-independent) event/epoch/cross-message counts.
    const std::string a =
        run_bench("bench_e16_sharded_scale", "e16", "E16_QUICK=1", "a");
    const std::string b =
        run_bench("bench_e16_sharded_scale", "e16", "E16_QUICK=1", "b");
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"determinism_identical_json\": 1"), std::string::npos)
        << "e16 reported a cross-thread-count metrics mismatch";
    EXPECT_NE(a.find("\"lookahead_violation_free\": 1"), std::string::npos)
        << "e16 reported lookahead violations";
}

}  // namespace
