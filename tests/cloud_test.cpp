// Tests for the cloud layer: VR classroom layout, interest fan-out, the
// origin cloud server, regional relays, and VR clients end to end.

#include <gtest/gtest.h>

#include <cmath>

#include "cloud/cloud_server.hpp"
#include "cloud/relay.hpp"
#include "cloud/vr_client.hpp"
#include "cloud/vr_layout.hpp"

namespace mvc::cloud {
namespace {

// ------------------------------------------------------------------ VrLayout

TEST(VrLayoutTest, RingCapacitiesGrow) {
    const VrLayout layout;
    EXPECT_EQ(layout.capacity(1), 12u);
    EXPECT_EQ(layout.capacity(2), 12u + 18u);
    EXPECT_EQ(layout.ring_of(0), 0u);
    EXPECT_EQ(layout.ring_of(11), 0u);
    EXPECT_EQ(layout.ring_of(12), 1u);
}

TEST(VrLayoutTest, SeatsSitOnTheirRingRadius) {
    const VrLayout layout;
    for (const std::size_t i : {0u, 5u, 11u, 12u, 29u, 30u, 100u}) {
        const math::Pose p = layout.seat_pose(i);
        const double r = std::hypot(p.position.x, p.position.z);
        const std::size_t ring = layout.ring_of(i);
        EXPECT_NEAR(r, 4.0 + 1.6 * static_cast<double>(ring), 1e-9) << "seat " << i;
    }
}

TEST(VrLayoutTest, SeatsFaceTheStage) {
    const VrLayout layout;
    for (std::size_t i = 0; i < 40; ++i) {
        const math::Pose p = layout.seat_pose(i);
        const math::Vec3 fwd = p.orientation.rotate({0, 0, -1});
        const math::Vec3 to_stage = (-p.position).normalized();
        EXPECT_GT(fwd.dot(to_stage), 0.99) << "seat " << i;
    }
}

TEST(VrLayoutTest, SeatsDistinct) {
    const VrLayout layout;
    for (std::size_t i = 0; i < 30; ++i) {
        for (std::size_t j = i + 1; j < 30; ++j) {
            EXPECT_GT(layout.seat_pose(i).position.distance_to(layout.seat_pose(j).position),
                      0.1);
        }
    }
}

TEST(VrLayoutTest, InvalidParamsThrow) {
    VrLayoutParams bad;
    bad.first_ring_seats = 0;
    EXPECT_THROW(VrLayout{bad}, std::invalid_argument);
}

// ------------------------------------------------------------ InterestFanout

TEST(FanoutTest, DisabledSendsToEveryoneExceptSelf) {
    sim::Simulator sim;
    InterestFanout fanout{{}, false};
    fanout.add_viewer({net::NodeId{1}, ParticipantId{1}, {0, 0, 0}});
    fanout.add_viewer({net::NodeId{2}, ParticipantId{2}, {100, 0, 0}});
    fanout.upsert_entity(ParticipantId{1}, {0, 0, 0});
    const auto targets = fanout.due_targets(ParticipantId{1}, sim.now());
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0], net::NodeId{2});
}

TEST(FanoutTest, AoiCullsDistantViewers) {
    sim::Simulator sim;
    InterestFanout fanout;  // default policy: nothing beyond 80 m
    fanout.add_viewer({net::NodeId{1}, ParticipantId{1}, {0, 0, 0}});
    fanout.add_viewer({net::NodeId{2}, ParticipantId{2}, {500, 0, 0}});
    fanout.upsert_entity(ParticipantId{3}, {0, 0, 0});
    const auto targets = fanout.due_targets(ParticipantId{3}, sim.now());
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0], net::NodeId{1});
    EXPECT_GT(fanout.suppressed_by_aoi(), 0u);
}

TEST(FanoutTest, RateLimitPerTier) {
    sim::Simulator sim;
    InterestFanout fanout;
    fanout.add_viewer({net::NodeId{1}, ParticipantId{1}, {0, 0, 0}});
    fanout.upsert_entity(ParticipantId{2}, {2, 0, 0});  // High tier: 60 Hz
    int sent = 0;
    // Offer updates at 600 Hz for one second: the 60 Hz tier must clamp.
    for (int i = 0; i < 600; ++i) {
        sim.schedule_at(sim::Time::ms(i / 0.6), [&] {
            sent += static_cast<int>(fanout.due_targets(ParticipantId{2}, sim.now()).size());
        });
    }
    sim.run_all();
    EXPECT_LE(sent, 62);
    EXPECT_GE(sent, 55);
    EXPECT_GT(fanout.suppressed_by_rate(), 0u);
}

TEST(FanoutTest, FarTierSlowerThanNearTier) {
    sim::Simulator sim;
    InterestFanout fanout;
    fanout.add_viewer({net::NodeId{1}, ParticipantId{1}, {0, 0, 0}});
    fanout.upsert_entity(ParticipantId{2}, {2, 0, 0});    // near: 60 Hz tier
    fanout.upsert_entity(ParticipantId{3}, {50, 0, 0});   // far: 5 Hz tier
    int near_sent = 0;
    int far_sent = 0;
    for (int i = 0; i < 1000; ++i) {
        sim.schedule_at(sim::Time::ms(i * 1.0), [&] {
            near_sent += static_cast<int>(
                fanout.due_targets(ParticipantId{2}, sim.now()).size());
            far_sent += static_cast<int>(
                fanout.due_targets(ParticipantId{3}, sim.now()).size());
        });
    }
    sim.run_all();
    EXPECT_GT(near_sent, far_sent * 5);
}

TEST(FanoutTest, RemoveViewerStopsDelivery) {
    sim::Simulator sim;
    InterestFanout fanout{{}, false};
    fanout.add_viewer({net::NodeId{1}, ParticipantId{1}, {0, 0, 0}});
    fanout.remove_viewer(net::NodeId{1});
    EXPECT_TRUE(fanout.due_targets(ParticipantId{2}, sim.now()).empty());
    EXPECT_EQ(fanout.viewer_count(), 0u);
}

// --------------------------------------------------------------- CloudServer

struct CloudFixture : ::testing::Test {
    sim::Simulator sim{81};
    net::Network net{sim};
    net::WanTopology wan;
    net::NodeId cloud_node = net.add_node("cloud", net::Region::HongKong);
    CloudServerConfig config = make_config();
    CloudServer cloud{net, cloud_node, config};

    static CloudServerConfig make_config() {
        CloudServerConfig c;
        c.room = ClassroomId{9};
        return c;
    }

    std::unique_ptr<VrClient> make_client(std::uint32_t id, net::Region region,
                                          bool lightweight = false) {
        const net::NodeId node =
            net.add_node("client-" + std::to_string(id), region);
        net.connect_wan(node, cloud_node, wan);
        VrClientConfig vc;
        vc.name = "c" + std::to_string(id);
        vc.room = ClassroomId{9};
        vc.lightweight = lightweight;
        auto client = std::make_unique<VrClient>(net, node, ParticipantId{id}, vc);
        const auto seat = cloud.attach_client(node, ParticipantId{id});
        EXPECT_TRUE(seat.has_value());
        client->join(cloud_node, *seat);
        return client;
    }
};

TEST_F(CloudFixture, ClientsSeeEachOther) {
    auto c1 = make_client(1, net::Region::Seoul);
    auto c2 = make_client(2, net::Region::Tokyo);
    sim.run_until(sim::Time::seconds(5));
    EXPECT_GT(c1->updates_received(), 0u);
    EXPECT_GT(c2->updates_received(), 0u);
    EXPECT_TRUE(c1->view_of(ParticipantId{2}, sim.now()).has_value());
    EXPECT_TRUE(c2->view_of(ParticipantId{1}, sim.now()).has_value());
    EXPECT_FALSE(c1->view_of(ParticipantId{1}, sim.now()).has_value());  // not self
}

TEST_F(CloudFixture, ReplicatedViewTracksRemoteTruth) {
    auto c1 = make_client(1, net::Region::Seoul);
    auto c2 = make_client(2, net::Region::Tokyo);
    sim.run_until(sim::Time::seconds(5));
    const auto view = c2->view_of(ParticipantId{1}, sim.now());
    ASSERT_TRUE(view.has_value());
    // Seoul->HK->Tokyo ≈ 43 ms + playout: the replica lags but stays close
    // to where client 1's avatar actually is (idle sway, tiny velocity).
    const double err =
        view->root.pose.position.distance_to(c1->true_state().root.pose.position);
    EXPECT_LT(err, 0.10);
}

TEST_F(CloudFixture, EndToEndLatencyScalesWithDistance) {
    auto c1 = make_client(1, net::Region::Seoul);
    auto c2 = make_client(2, net::Region::SaoPaulo);
    sim.run_until(sim::Time::seconds(5));
    const auto& series = net.metrics().series("cloud.e2e_ms");
    ASSERT_GT(series.count(), 0u);
    // One-way Seoul->HK (18) + HK->SaoPaulo (160) dominates.
    EXPECT_GT(series.mean(), 100.0);
    EXPECT_LT(series.mean(), 400.0);
}

TEST_F(CloudFixture, CapacityEnforced) {
    CloudServerConfig small = make_config();
    small.capacity = 1;
    const net::NodeId node = net.add_node("small", net::Region::HongKong);
    CloudServer tiny{net, node, small};
    EXPECT_TRUE(tiny.attach_client(net::NodeId{50}, ParticipantId{50}).has_value());
    EXPECT_FALSE(tiny.attach_client(net::NodeId{51}, ParticipantId{51}).has_value());
}

TEST_F(CloudFixture, DetachStopsForwarding) {
    auto c1 = make_client(1, net::Region::Seoul);
    auto c2 = make_client(2, net::Region::Tokyo);
    sim.run_until(sim::Time::seconds(2));
    const std::uint64_t before = c2->updates_received();
    cloud.detach_client(c2->node());
    sim.run_until(sim::Time::seconds(4));
    EXPECT_LE(c2->updates_received(), before + 2);  // in-flight slack
}

TEST_F(CloudFixture, EgressAccounted) {
    auto c1 = make_client(1, net::Region::Seoul);
    auto c2 = make_client(2, net::Region::Tokyo);
    sim.run_until(sim::Time::seconds(2));
    EXPECT_GT(cloud.messages_in(), 0u);
    EXPECT_GT(cloud.messages_out(), 0u);
    EXPECT_GT(cloud.egress_bytes(), 0u);
}

TEST_F(CloudFixture, PlaceEntityIsStable) {
    const math::Pose p1 = cloud.place_entity(ParticipantId{70});
    const math::Pose p2 = cloud.place_entity(ParticipantId{70});
    EXPECT_TRUE(math::approx_equal(p1.position, p2.position));
    EXPECT_TRUE(cloud.seat_of(ParticipantId{70}).has_value());
}

// ------------------------------------------------------------- RegionalMesh

struct MeshFixture : CloudFixture {
    RegionalMesh mesh{net, wan, cloud, net::Region::HongKong};

    std::unique_ptr<VrClient> make_mesh_client(std::uint32_t id, net::Region region) {
        const net::NodeId node = net.add_node("mc-" + std::to_string(id), region);
        RelayServer& relay = mesh.relay_for(region);
        net.connect_wan(node, relay.node(), wan);
        VrClientConfig vc;
        vc.name = "mc" + std::to_string(id);
        vc.room = ClassroomId{9};
        vc.latency_metric = "mesh.e2e_ms";
        auto client = std::make_unique<VrClient>(net, node, ParticipantId{id}, vc);
        const math::Pose seat = mesh.attach_client(node, ParticipantId{id}, region);
        client->join(relay.node(), seat);
        return client;
    }
};

TEST_F(MeshFixture, RelaysCreatedPerRegion) {
    auto c1 = make_mesh_client(1, net::Region::Boston);
    auto c2 = make_mesh_client(2, net::Region::Boston);
    auto c3 = make_mesh_client(3, net::Region::Seoul);
    EXPECT_EQ(mesh.relay_count(), 2u);
    EXPECT_TRUE(mesh.has_relay(net::Region::Boston));
    EXPECT_TRUE(mesh.has_relay(net::Region::Seoul));
    EXPECT_FALSE(mesh.has_relay(net::Region::London));
}

TEST_F(MeshFixture, SameRegionPairGetsLocalLatency) {
    auto c1 = make_mesh_client(1, net::Region::Boston);
    auto c2 = make_mesh_client(2, net::Region::Boston);
    sim.run_until(sim::Time::seconds(5));
    const auto& series = net.metrics().series("mesh.e2e_ms");
    ASSERT_GT(series.count(), 0u);
    // Boston<->Boston through the local relay: a few ms, not a 210 ms
    // HK round trip.
    EXPECT_LT(series.median(), 30.0);
}

TEST_F(MeshFixture, CrossRegionStillFlowsThroughOrigin) {
    auto c1 = make_mesh_client(1, net::Region::Boston);
    auto c3 = make_mesh_client(3, net::Region::Seoul);
    sim.run_until(sim::Time::seconds(5));
    EXPECT_GT(c1->updates_received(), 0u);
    EXPECT_GT(c3->updates_received(), 0u);
    EXPECT_TRUE(c1->view_of(ParticipantId{3}, sim.now()).has_value());
}

TEST_F(MeshFixture, RelayEgressCounted) {
    auto c1 = make_mesh_client(1, net::Region::Boston);
    auto c2 = make_mesh_client(2, net::Region::Boston);
    sim.run_until(sim::Time::seconds(2));
    EXPECT_GT(mesh.total_relay_egress(), 0u);
}

}  // namespace
}  // namespace mvc::cloud
