// Tests for the network substrate: links, WiFi contention, WAN topology,
// the node fabric, and the transports (reliable ARQ channel, token bucket).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"
#include "net/wifi.hpp"

namespace mvc::net {
namespace {

Packet make_packet(std::size_t bytes) {
    Packet p;
    p.size_bytes = bytes;
    return p;
}

// ---------------------------------------------------------------------- Link

TEST(LinkTest, DeliversAfterPropagationDelay) {
    sim::Simulator sim;
    LinkParams params;
    params.latency = sim::Time::ms(10);
    Link link{sim, "l", params};
    sim::Time arrival;
    link.send(make_packet(100), [&](Packet&&) { arrival = sim.now(); });
    sim.run_all();
    EXPECT_EQ(arrival, sim::Time::ms(10));
    EXPECT_EQ(link.delivered(), 1u);
}

TEST(LinkTest, SerializationDelayFromBandwidth) {
    sim::Simulator sim;
    LinkParams params;
    params.latency = sim::Time::zero();
    params.bandwidth_bps = 8e6;  // 1 byte per microsecond
    Link link{sim, "l", params};
    sim::Time arrival;
    const std::size_t payload = 1000;
    link.send(make_packet(payload), [&](Packet&&) { arrival = sim.now(); });
    sim.run_all();
    const double expected_us = static_cast<double>(payload + kHeaderBytes);
    EXPECT_NEAR(arrival.to_us(), expected_us, 1.0);
}

TEST(LinkTest, BackToBackPacketsQueueBehindEachOther) {
    sim::Simulator sim;
    LinkParams params;
    params.latency = sim::Time::zero();
    params.bandwidth_bps = 8e6;
    Link link{sim, "l", params};
    std::vector<double> arrivals;
    for (int i = 0; i < 3; ++i) {
        link.send(make_packet(1000 - kHeaderBytes), [&](Packet&&) {
            arrivals.push_back(sim.now().to_us());
        });
    }
    sim.run_all();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_NEAR(arrivals[0], 1000.0, 1.0);
    EXPECT_NEAR(arrivals[1], 2000.0, 1.0);
    EXPECT_NEAR(arrivals[2], 3000.0, 1.0);
}

TEST(LinkTest, QueueOverflowDrops) {
    sim::Simulator sim;
    LinkParams params;
    params.latency = sim::Time::zero();
    params.bandwidth_bps = 8e3;  // very slow
    params.queue_bytes = 2000;
    Link link{sim, "l", params};
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        if (link.send(make_packet(500), [](Packet&&) {})) ++accepted;
    }
    EXPECT_LT(accepted, 10);
    EXPECT_GT(link.dropped_queue(), 0u);
    EXPECT_EQ(link.dropped_queue() + static_cast<std::uint64_t>(accepted), 10u);
}

TEST(LinkTest, LossRateApproximatesParameter) {
    sim::Simulator sim{77};
    LinkParams params;
    params.loss = 0.2;
    Link link{sim, "lossy", params};
    int delivered = 0;
    for (int i = 0; i < 5000; ++i) {
        link.send(make_packet(10), [&](Packet&&) { ++delivered; });
    }
    sim.run_all();
    EXPECT_NEAR(delivered / 5000.0, 0.8, 0.03);
    EXPECT_EQ(link.lost() + static_cast<std::uint64_t>(delivered), 5000u);
}

TEST(LinkTest, JitterNeverMakesArrivalEarly) {
    sim::Simulator sim{3};
    LinkParams params;
    params.latency = sim::Time::ms(20);
    params.jitter = sim::Time::ms(5);
    params.spike_probability = 0.05;
    Link link{sim, "jittery", params};
    std::vector<double> arrivals;
    for (int i = 0; i < 500; ++i) {
        link.send(make_packet(10), [&](Packet&&) { arrivals.push_back(sim.now().to_ms()); });
    }
    sim.run_all();
    for (const double a : arrivals) EXPECT_GE(a, 20.0 - 1e-9);
}

TEST(LinkTest, InfiniteBandwidthNoSerialization) {
    sim::Simulator sim;
    LinkParams params;
    params.latency = sim::Time::ms(1);
    params.bandwidth_bps = 0.0;
    Link link{sim, "fast", params};
    sim::Time arrival;
    link.send(make_packet(1'000'000), [&](Packet&&) { arrival = sim.now(); });
    sim.run_all();
    EXPECT_EQ(arrival, sim::Time::ms(1));
}

// ---------------------------------------------------------------------- WiFi

TEST(WifiTest, DeliversAndCountsAirtime) {
    sim::Simulator sim;
    WifiParams params;
    params.per_try_loss = 0.0;
    WifiChannel wifi{sim, "room", params};
    const StationId s = wifi.add_station();
    int got = 0;
    wifi.send(s, make_packet(500), [&](Packet&&) { ++got; });
    sim.run_all();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(wifi.delivered(), 1u);
    EXPECT_EQ(wifi.lost(), 0u);
}

TEST(WifiTest, UnknownStationThrows) {
    sim::Simulator sim;
    WifiChannel wifi{sim, "room", {}};
    EXPECT_THROW(wifi.send(99, make_packet(10), [](Packet&&) {}), std::out_of_range);
}

TEST(WifiTest, RetriesConsumeAirtimeButStillDeliver) {
    sim::Simulator sim{5};
    WifiParams params;
    params.per_try_loss = 0.3;
    params.max_retries = 8;
    WifiChannel wifi{sim, "room", params};
    const StationId s = wifi.add_station();
    int got = 0;
    for (int i = 0; i < 2000; ++i) {
        wifi.send(s, make_packet(200), [&](Packet&&) { ++got; });
        sim.run_until(sim.now() + sim::Time::ms(2));
    }
    sim.run_all();
    EXPECT_GT(wifi.retries(), 0u);
    // With 8 retries at 30% per-try loss, effectively everything arrives.
    EXPECT_NEAR(got / 2000.0, 1.0, 0.01);
}

TEST(WifiTest, FrameLossAfterMaxRetries) {
    sim::Simulator sim{6};
    WifiParams params;
    params.per_try_loss = 0.5;
    params.max_retries = 1;
    WifiChannel wifi{sim, "room", params};
    const StationId s = wifi.add_station();
    int got = 0;
    for (int i = 0; i < 2000; ++i) {
        wifi.send(s, make_packet(100), [&](Packet&&) { ++got; });
        sim.run_until(sim.now() + sim::Time::ms(1));
    }
    sim.run_all();
    EXPECT_GT(wifi.lost(), 0u);
    // Delivery prob = 1 - 0.5^2 = 0.75.
    EXPECT_NEAR(got / 2000.0, 0.75, 0.05);
}

TEST(WifiTest, ContentionGrowsWithStations) {
    // Mean delivery delay with 40 saturating stations must exceed that of 2.
    const auto mean_delay = [](std::size_t stations) {
        sim::Simulator sim{9};
        WifiParams params;
        params.per_try_loss = 0.0;
        WifiChannel wifi{sim, "room", params};
        std::vector<StationId> ids;
        for (std::size_t i = 0; i < stations; ++i) ids.push_back(wifi.add_station());
        math::RunningStats delay;
        for (int round = 0; round < 50; ++round) {
            for (const StationId s : ids) {
                const sim::Time sent = sim.now();
                wifi.send(s, make_packet(800), [&, sent](Packet&&) {
                    delay.add((sim.now() - sent).to_ms());
                });
            }
            sim.run_until(sim.now() + sim::Time::ms(10));
        }
        sim.run_all();
        return delay.mean();
    };
    EXPECT_GT(mean_delay(40), mean_delay(2) * 2.0);
}

TEST(WifiTest, QueueOverflowRejectsAtSource) {
    sim::Simulator sim;
    WifiParams params;
    params.queue_bytes = 1000;
    WifiChannel wifi{sim, "room", params};
    const StationId s = wifi.add_station();
    bool saw_reject = false;
    for (int i = 0; i < 50; ++i) {
        if (!wifi.send(s, make_packet(400), [](Packet&&) {})) saw_reject = true;
    }
    EXPECT_TRUE(saw_reject);
    EXPECT_GT(wifi.dropped_queue(), 0u);
}

// ------------------------------------------------------------------ topology

TEST(TopologyTest, DelaysSymmetricAndPositive) {
    const WanTopology wan;
    for (const Region a : all_regions()) {
        for (const Region b : all_regions()) {
            EXPECT_EQ(wan.one_way_delay(a, b), wan.one_way_delay(b, a));
            EXPECT_GT(wan.one_way_delay(a, b), sim::Time::zero());
        }
    }
}

TEST(TopologyTest, IntraRegionIsFastest) {
    const WanTopology wan;
    for (const Region a : all_regions()) {
        for (const Region b : all_regions()) {
            if (a == b) continue;
            EXPECT_LT(wan.one_way_delay(a, a), wan.one_way_delay(a, b));
        }
    }
}

TEST(TopologyTest, CwbGzIsShortHop) {
    const WanTopology wan;
    EXPECT_LT(wan.one_way_delay(Region::HongKong, Region::Guangzhou), sim::Time::ms(10));
    EXPECT_GT(wan.one_way_delay(Region::HongKong, Region::Boston), sim::Time::ms(80));
}

TEST(TopologyTest, PathParamsScaleWithDistance) {
    const WanTopology wan;
    const LinkParams near = wan.path_params(Region::HongKong, Region::Guangzhou);
    const LinkParams far = wan.path_params(Region::HongKong, Region::Boston);
    EXPECT_LT(near.latency, far.latency);
    EXPECT_LT(near.jitter, far.jitter);
    EXPECT_LE(near.spike_probability, far.spike_probability);
}

TEST(TopologyTest, BestRegionForLocalClients) {
    const WanTopology wan;
    std::array<std::size_t, kRegionCount> clients{};
    clients[static_cast<std::size_t>(Region::Seoul)] = 100;
    EXPECT_EQ(wan.best_region_for(clients), Region::Seoul);
}

TEST(TopologyTest, BestRegionBalancesTwoClusters) {
    const WanTopology wan;
    std::array<std::size_t, kRegionCount> clients{};
    clients[static_cast<std::size_t>(Region::Boston)] = 10;
    clients[static_cast<std::size_t>(Region::London)] = 10;
    const Region best = wan.best_region_for(clients);
    // An Atlantic-adjacent region must win over Asia-Pacific ones.
    EXPECT_TRUE(best == Region::Boston || best == Region::London ||
                best == Region::Frankfurt);
}

TEST(TopologyTest, RegionNamesUnique) {
    std::set<std::string_view> names;
    for (const Region r : all_regions()) names.insert(region_name(r));
    EXPECT_EQ(names.size(), kRegionCount);
}

// ------------------------------------------------------------------- network

TEST(NetworkTest, SendDeliversToHandler) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    net.connect(a, b, LinkParams{});
    int got = 0;
    net.set_handler(b, [&](Packet&& p) {
        ++got;
        EXPECT_EQ(p.src, a);
        EXPECT_EQ(p.payload.get<int>(), 42);
    });
    EXPECT_TRUE(net.send(a, b, 100, "test", 42));
    sim.run_all();
    EXPECT_EQ(got, 1);
}

TEST(NetworkTest, NoRouteReturnsFalse) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    EXPECT_FALSE(net.send(a, b, 10, "x", {}));
    EXPECT_EQ(net.metrics().counter("net.no_route"), 1u);
}

TEST(NetworkTest, BidirectionalConnect) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::Seoul);
    net.connect(a, b, LinkParams{});
    EXPECT_TRUE(net.connected(a, b));
    EXPECT_TRUE(net.connected(b, a));
    EXPECT_NE(net.link(a, b), nullptr);
    EXPECT_NE(net.link(b, a), nullptr);
    EXPECT_EQ(net.link(a, a), nullptr);
}

TEST(NetworkTest, InvalidNodeThrows) {
    sim::Simulator sim;
    Network net{sim};
    EXPECT_THROW((void)net.region_of(NodeId{5}), std::out_of_range);
    EXPECT_THROW((void)net.region_of(kInvalidNode), std::out_of_range);
}

TEST(NetworkTest, WanConnectUsesRegionDelay) {
    sim::Simulator sim;
    Network net{sim};
    WanTopology wan;
    const NodeId a = net.add_node("hk", Region::HongKong);
    const NodeId b = net.add_node("bos", Region::Boston);
    net.connect_wan(a, b, wan);
    sim::Time arrival;
    net.set_handler(b, [&](Packet&&) { arrival = sim.now(); });
    net.send(a, b, 100, "x", {});
    sim.run_all();
    EXPECT_GE(arrival, sim::Time::ms(105));
}

TEST(NetworkTest, MetricsRecordFlows) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    net.connect(a, b, LinkParams{});
    net.set_handler(b, [](Packet&&) {});
    net.send(a, b, 500, "avatar", {});
    sim.run_all();
    EXPECT_EQ(net.metrics().counter("net.tx.avatar"), 1u);
    EXPECT_EQ(net.metrics().counter("net.rx.avatar"), 1u);
    EXPECT_EQ(net.metrics().counter("net.tx_bytes.avatar"), 500u + kHeaderBytes);
    EXPECT_EQ(net.metrics().series("net.latency_ms.avatar").count(), 1u);
}

TEST(NetworkTest, PacketToHandlerlessNodeCounted) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    net.connect(a, b, LinkParams{});
    net.send(a, b, 10, "x", {});
    sim.run_all();
    EXPECT_EQ(net.metrics().counter("net.dropped_no_handler"), 1u);
}

// ------------------------------------------------------------------- demux

TEST(DemuxTest, RoutesByFlow) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    net.connect(a, b, LinkParams{});
    PacketDemux demux{net, b};
    int video = 0;
    int audio = 0;
    demux.on_flow("video", [&](Packet&&) { ++video; });
    demux.on_flow("audio", [&](Packet&&) { ++audio; });
    net.send(a, b, 10, "video", {});
    net.send(a, b, 10, "audio", {});
    net.send(a, b, 10, "unknown", {});
    sim.run_all();
    EXPECT_EQ(video, 1);
    EXPECT_EQ(audio, 1);
    EXPECT_EQ(net.metrics().counter("demux.unmatched"), 1u);
}

// ---------------------------------------------------------------- reliable

struct ReliableFixture : ::testing::Test {
    sim::Simulator sim{21};
    Network net{sim};
    NodeId a = net.add_node("a", Region::HongKong);
    NodeId b = net.add_node("b", Region::Guangzhou);
    PacketDemux demux_a{net, a};
    PacketDemux demux_b{net, b};

    void connect(double loss) {
        LinkParams params;
        params.latency = sim::Time::ms(5);
        params.loss = loss;
        net.connect(a, b, params);
    }
};

TEST_F(ReliableFixture, DeliversInOrderWithoutLoss) {
    connect(0.0);
    ReliableChannel ch{net, demux_a, demux_b, "stream"};
    std::vector<int> got;
    ch.on_delivered([&](net::Payload payload, sim::Time, int) {
        got.push_back(payload.take<int>());
    });
    for (int i = 0; i < 20; ++i) ch.send(100, i);
    sim.run_all();
    ASSERT_EQ(got.size(), 20u);
    for (int i = 0; i < 20; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(ch.retransmissions(), 0u);
    EXPECT_EQ(ch.in_flight(), 0u);
}

TEST_F(ReliableFixture, RecoversEverythingUnderHeavyLoss) {
    connect(0.3);
    ReliableChannel ch{net, demux_a, demux_b, "stream"};
    std::vector<int> got;
    ch.on_delivered([&](net::Payload payload, sim::Time, int) {
        got.push_back(payload.take<int>());
    });
    for (int i = 0; i < 100; ++i) ch.send(100, i);
    sim.run_all();
    ASSERT_EQ(got.size(), 100u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
    EXPECT_GT(ch.retransmissions(), 0u);
}

TEST_F(ReliableFixture, UnorderedModeDeliversEverythingOnce) {
    connect(0.25);
    ReliableOptions opts;
    opts.ordered = false;
    ReliableChannel ch{net, demux_a, demux_b, "stream", opts};
    std::multiset<int> got;
    ch.on_delivered([&](net::Payload payload, sim::Time, int) {
        got.insert(payload.take<int>());
    });
    for (int i = 0; i < 100; ++i) ch.send(100, i);
    sim.run_all();
    ASSERT_EQ(got.size(), 100u);  // exactly once each
    for (int i = 0; i < 100; ++i) EXPECT_EQ(got.count(i), 1u);
}

TEST_F(ReliableFixture, RttEstimateTracksPathRtt) {
    connect(0.0);
    ReliableChannel ch{net, demux_a, demux_b, "stream"};
    ch.on_delivered([](net::Payload, sim::Time, int) {});
    for (int i = 0; i < 30; ++i) {
        ch.send(100, i);
        sim.run_until(sim.now() + sim::Time::ms(50));
    }
    // Path RTT = 2 * 5 ms plus negligible overheads.
    EXPECT_NEAR(ch.smoothed_rtt_ms(), 10.0, 2.0);
    EXPECT_GE(ch.current_rto(), sim::Time::ms(20));  // rto_min floor
}

TEST_F(ReliableFixture, TransmissionCountReported) {
    connect(0.5);
    ReliableChannel ch{net, demux_a, demux_b, "stream"};
    int max_tx = 0;
    ch.on_delivered(
        [&](net::Payload, sim::Time, int tx) { max_tx = std::max(max_tx, tx); });
    for (int i = 0; i < 50; ++i) ch.send(100, i);
    sim.run_all();
    EXPECT_GT(max_tx, 1);
}

// --------------------------------------------------------------- token bucket

TEST(TokenBucketTest, BurstThenPaced) {
    sim::Simulator sim;
    TokenBucket tb{sim, 8000.0, 1000};  // 1000 B/s, 1000 B burst
    EXPECT_EQ(tb.earliest_send(1000), sim.now());
    tb.consume(1000);
    // Next kilobyte must wait ~1 second.
    const sim::Time t = tb.earliest_send(1000);
    EXPECT_NEAR((t - sim.now()).to_seconds(), 1.0, 0.01);
}

TEST(TokenBucketTest, RefillsOverTime) {
    sim::Simulator sim;
    TokenBucket tb{sim, 8000.0, 1000};
    tb.consume(1000);
    sim.schedule_at(sim::Time::seconds(0.5), [&] {
        // Half refilled: 500 bytes available.
        EXPECT_EQ(tb.earliest_send(500), sim.now());
        const sim::Time t = tb.earliest_send(1000);
        EXPECT_NEAR((t - sim.now()).to_seconds(), 0.5, 0.01);
    });
    sim.run_all();
}

TEST(TokenBucketTest, InvalidRateThrows) {
    sim::Simulator sim;
    EXPECT_THROW(TokenBucket(sim, 0.0, 100), std::invalid_argument);
    TokenBucket tb{sim, 100.0, 10};
    EXPECT_THROW(tb.set_rate_bps(-5.0), std::invalid_argument);
}

TEST(TokenBucketTest, RateChangeTakesEffect) {
    sim::Simulator sim;
    TokenBucket tb{sim, 8000.0, 100};
    tb.consume(100);
    tb.set_rate_bps(16000.0);
    const sim::Time t = tb.earliest_send(100);
    EXPECT_NEAR((t - sim.now()).to_seconds(), 0.05, 0.01);
}

TEST(PayloadTest, HoldsAndReadsTypedValue) {
    Payload p{42};
    EXPECT_FALSE(p.empty());
    EXPECT_TRUE(p.holds<int>());
    EXPECT_FALSE(p.holds<double>());
    EXPECT_EQ(p.get<int>(), 42);
}

TEST(PayloadTest, TypeMismatchThrowsAtAccessSite) {
    Payload p{std::string{"hello"}};
    EXPECT_THROW(p.get<int>(), std::runtime_error);
    EXPECT_THROW(p.take<int>(), std::runtime_error);
    EXPECT_THROW(Payload{}.get<int>(), std::runtime_error);
}

TEST(PayloadTest, TakeMovesOutAndEmpties) {
    Payload p{std::vector<int>{1, 2, 3}};
    const auto v = p.take<std::vector<int>>();
    EXPECT_EQ(v.size(), 3u);
    EXPECT_TRUE(p.empty());
}

TEST(PayloadTest, CopiesShareUntilTaken) {
    Payload a{std::string{"shared"}};
    Payload b = a;
    // take from a copy must not disturb the other holder.
    EXPECT_EQ(b.take<std::string>(), "shared");
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(a.get<std::string>(), "shared");
}

TEST(NodeContextTest, BindGetUnbindAreTyped) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId n = net.add_node("n", Region::HongKong);

    int edge_object = 7;
    double other_object = 1.5;
    net.context(n).bind<int>(&edge_object);
    net.context(n).bind<double>(&other_object);

    EXPECT_TRUE(net.context(n).has<int>());
    ASSERT_NE(net.context(n).get<int>(), nullptr);
    EXPECT_EQ(*net.context(n).get<int>(), 7);
    EXPECT_EQ(*net.context(n).get<double>(), 1.5);
    // Unbound types resolve to nullptr, never to a reinterpreted slot.
    EXPECT_EQ(net.context(n).get<float>(), nullptr);

    net.context(n).unbind<int>();
    EXPECT_FALSE(net.context(n).has<int>());
    EXPECT_EQ(net.context(n).get<int>(), nullptr);
    EXPECT_TRUE(net.context(n).has<double>());
}

TEST(NetworkFaultTest, DownLinkDropsAndCounts) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    net.connect(a, b, {});
    int received = 0;
    net.set_handler(b, [&](Packet&&) { ++received; });

    net.set_link_up(a, b, false);
    EXPECT_FALSE(net.link_up(a, b));
    EXPECT_FALSE(net.send(a, b, 64, "avatar", 1));
    sim.run_all();
    EXPECT_EQ(received, 0);
    EXPECT_EQ(net.metrics().counter("net.link_failed"), 1u);
    EXPECT_EQ(net.metrics().counter("net.link_down_drop.avatar"), 1u);

    net.set_link_up(a, b, true);
    EXPECT_TRUE(net.send(a, b, 64, "avatar", 1));
    sim.run_all();
    EXPECT_EQ(received, 1);
    EXPECT_EQ(net.metrics().counter("net.link_restored"), 1u);
}

TEST(NetworkFaultTest, DownNodeDropsInFlightDeliveries) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    LinkParams slow;
    slow.latency = sim::Time::ms(50);
    net.connect(a, b, slow);
    int received = 0;
    net.set_handler(b, [&](Packet&&) { ++received; });

    // Packet leaves while b is up, but b crashes before it lands.
    EXPECT_TRUE(net.send(a, b, 64, "x", 1));
    sim.schedule_at(sim::Time::ms(10), [&] { net.set_node_up(b, false); });
    sim.run_until(sim::Time::seconds(1.0));
    EXPECT_EQ(received, 0);
    EXPECT_EQ(net.metrics().counter("net.node_down_drop"), 1u);
    EXPECT_EQ(net.metrics().counter("net.node_crashed"), 1u);
}

TEST(NetworkFaultTest, SetLinkUpOnUnconnectedPairThrows) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    EXPECT_THROW(net.set_link_up(a, b, false), std::invalid_argument);
}

// ----------------------------------------------------------------- channel

TEST(ChannelTest, ConnectedSendDeliversAndChargesPriorityCounter) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    net.connect(a, b, LinkParams{});
    PacketDemux demux_b{net, b};
    int got = 0;
    demux_b.on_flow("avatar", [&](Packet&&) { ++got; });

    Channel tx = net.open_channel(
        {.src = a, .dst = b, .flow = "avatar", .options = {.priority = Priority::Realtime}});
    EXPECT_TRUE(tx.send(100, {}));
    sim.run_all();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(net.metrics().counter("net.prio_bytes",
                                    {{"flow", "avatar"}, {"priority", "realtime"}}),
              100 + kHeaderBytes);
    // No traffic was booked under the other classes.
    EXPECT_EQ(net.metrics().counter("net.prio_bytes",
                                    {{"flow", "avatar"}, {"priority", "control"}}),
              0u);
}

TEST(ChannelTest, UnconnectedFanOutSharesOnePayloadBox) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId src = net.add_node("src", Region::HongKong);
    const NodeId d1 = net.add_node("d1", Region::HongKong);
    const NodeId d2 = net.add_node("d2", Region::HongKong);
    net.connect(src, d1, LinkParams{});
    net.connect(src, d2, LinkParams{});
    std::vector<std::string> got;
    net.set_handler(d1, [&](Packet&& p) { got.push_back(p.payload.get<std::string>()); });
    net.set_handler(d2, [&](Packet&& p) { got.push_back(p.payload.get<std::string>()); });

    Channel tx = net.open_channel({.src = src, .flow = "chat"});
    EXPECT_FALSE(tx.connected());
    EXPECT_THROW(tx.send(10, {}), std::logic_error);  // no bound destination
    const Payload shared{std::string{"hello"}};
    EXPECT_TRUE(tx.send_to(d1, 10, shared));
    EXPECT_TRUE(tx.send_to(d2, 10, shared));
    sim.run_all();
    EXPECT_EQ(got, (std::vector<std::string>{"hello", "hello"}));
}

TEST(ChannelTest, UnconnectedReliableIsRejected) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    EXPECT_THROW(
        net.open_channel({.src = a,
                          .flow = "stream",
                          .options = {.reliability = Reliability::Reliable}}),
        std::logic_error);
}

TEST(ChannelTest, ReliableModeRetransmitsAndForbidsSendTo) {
    sim::Simulator sim{21};
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::Guangzhou);
    LinkParams params;
    params.latency = sim::Time::ms(5);
    params.loss = 0.3;
    net.connect(a, b, params);
    PacketDemux demux_a{net, a};
    PacketDemux demux_b{net, b};

    Channel ch = net.open_channel(
        {.src_demux = &demux_a,
         .dst_demux = &demux_b,
         .flow = "stream",
         .options = {.reliability = Reliability::Reliable, .priority = Priority::Bulk}});
    ASSERT_NE(ch.arq(), nullptr);
    EXPECT_THROW(ch.send_to(b, 100, {}), std::logic_error);
    std::vector<int> delivered;
    ch.on_delivered([&](Payload payload, sim::Time, int) {
        delivered.push_back(payload.take<int>());
    });
    for (int i = 0; i < 50; ++i) EXPECT_TRUE(ch.send(100, i));
    sim.run_all();
    ASSERT_EQ(delivered.size(), 50u);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(delivered[static_cast<std::size_t>(i)], i);
    EXPECT_GT(ch.arq()->retransmissions(), 0u);
    // Application sends are booked once as bulk; retransmissions stay
    // internal to the ARQ layer.
    EXPECT_EQ(net.metrics().counter("net.prio_bytes",
                                    {{"flow", "stream"}, {"priority", "bulk"}}),
              50u * (100 + kHeaderBytes));
}

TEST(ChannelTest, BestEffortChannelsHaveNoDeliveryCallbacks) {
    sim::Simulator sim;
    Network net{sim};
    const NodeId a = net.add_node("a", Region::HongKong);
    const NodeId b = net.add_node("b", Region::HongKong);
    Channel tx = net.open_channel({.src = a, .dst = b, .flow = "avatar"});
    EXPECT_EQ(tx.arq(), nullptr);
    EXPECT_THROW(tx.on_delivered([](Payload, sim::Time, int) {}), std::logic_error);
    EXPECT_THROW(tx.on_failed([](Payload, sim::Time, int) {}), std::logic_error);
}

}  // namespace
}  // namespace mvc::net
