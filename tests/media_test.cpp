// Tests for the media pipeline: video source statistics, packetization,
// receiver deadline accounting and quality model, audio and A/V sync.

#include <gtest/gtest.h>

#include "media/audio.hpp"
#include "media/video.hpp"
#include "sim/simulator.hpp"

namespace mvc::media {
namespace {

TEST(VideoProfileTest, LadderOrderedByBitrate) {
    EXPECT_LT(profile_360p().bitrate_bps, profile_720p().bitrate_bps);
    EXPECT_LT(profile_720p().bitrate_bps, profile_1080p().bitrate_bps);
}

TEST(VideoProfileTest, PsnrGrowsWithBitrate) {
    VideoProfile low = profile_720p();
    low.bitrate_bps = 1e6;
    VideoProfile high = profile_720p();
    high.bitrate_bps = 8e6;
    EXPECT_LT(encode_psnr_db(low), encode_psnr_db(high));
    EXPECT_GE(encode_psnr_db(low), 20.0);
    EXPECT_LE(encode_psnr_db(high), 50.0);
}

TEST(VideoSourceTest, FrameRateAndAverageBitrate) {
    sim::Simulator sim{91};
    const VideoProfile profile = profile_720p();
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
    VideoSource src{sim, "cam", profile, [&](VideoFrame&& f) {
                        ++frames;
                        bytes += f.size_bytes;
                    }};
    src.start();
    sim.run_until(sim::Time::seconds(30));
    EXPECT_EQ(frames, 900u);
    // Long-run byte rate within 15% of the configured bitrate.
    const double bps = static_cast<double>(bytes) * 8.0 / 30.0;
    EXPECT_NEAR(bps, profile.bitrate_bps, profile.bitrate_bps * 0.15);
}

TEST(VideoSourceTest, KeyframeCadence) {
    sim::Simulator sim{92};
    VideoProfile profile = profile_720p();
    profile.keyframe_interval = 30;
    std::vector<bool> keyflags;
    VideoSource src{sim, "cam", profile,
                    [&](VideoFrame&& f) { keyflags.push_back(f.keyframe); }};
    src.start();
    sim.run_until(sim::Time::seconds(3));
    ASSERT_GE(keyflags.size(), 90u);
    for (std::size_t i = 0; i < 90; ++i) {
        EXPECT_EQ(keyflags[i], i % 30 == 0) << "frame " << i;
    }
}

TEST(VideoSourceTest, KeyframesLargerThanDelta) {
    sim::Simulator sim{93};
    math::RunningStats key_bytes, delta_bytes;
    VideoSource src{sim, "cam", profile_720p(), [&](VideoFrame&& f) {
                        (f.keyframe ? key_bytes : delta_bytes)
                            .add(static_cast<double>(f.size_bytes));
                    }};
    src.start();
    sim.run_until(sim::Time::seconds(60));
    EXPECT_GT(key_bytes.mean(), delta_bytes.mean() * 3.0);
}

TEST(PacketizeTest, SplitsAtMtuAndSumsExactly) {
    VideoFrame f;
    f.index = 7;
    f.size_bytes = 3 * kVideoMtu + 100;
    f.keyframe = true;
    const auto packets = packetize(f);
    ASSERT_EQ(packets.size(), 4u);
    std::size_t total = 0;
    for (std::size_t i = 0; i < packets.size(); ++i) {
        EXPECT_EQ(packets[i].frame_index, 7u);
        EXPECT_EQ(packets[i].piece, i);
        EXPECT_EQ(packets[i].piece_count, 4u);
        EXPECT_TRUE(packets[i].keyframe);
        total += packets[i].size_bytes;
    }
    EXPECT_EQ(total, f.size_bytes);
    EXPECT_EQ(packets.back().size_bytes, 100u);
}

TEST(PacketizeTest, TinyFrameSinglePacket) {
    VideoFrame f;
    f.size_bytes = 10;
    const auto packets = packetize(f);
    ASSERT_EQ(packets.size(), 1u);
    EXPECT_EQ(packets[0].size_bytes, 10u);
}

TEST(VideoReceiverTest, CompleteFramesCounted) {
    sim::Simulator sim;
    VideoReceiver rx{sim, profile_720p(), sim::Time::ms(100)};
    VideoFrame f;
    f.index = 1;
    f.size_bytes = 2 * kVideoMtu;
    f.captured_at = sim.now();
    for (const auto& p : packetize(f)) rx.ingest(p);
    sim.run_all();
    EXPECT_EQ(rx.stats().frames_complete, 1u);
    EXPECT_EQ(rx.stats().frames_missed, 0u);
}

TEST(VideoReceiverTest, MissingPieceMissesDeadline) {
    sim::Simulator sim;
    VideoReceiver rx{sim, profile_720p(), sim::Time::ms(50)};
    VideoFrame f;
    f.index = 1;
    f.size_bytes = 3 * kVideoMtu;
    f.captured_at = sim.now();
    const auto packets = packetize(f);
    rx.ingest(packets[0]);
    rx.ingest(packets[2]);  // piece 1 lost
    sim.run_until(sim::Time::ms(200));
    EXPECT_EQ(rx.stats().frames_complete, 0u);
    EXPECT_EQ(rx.stats().frames_missed, 1u);
    EXPECT_GT(rx.stats().freeze_seconds, 0.0);
}

TEST(VideoReceiverTest, LatePieceAfterDeadlineDoesNotResurrect) {
    sim::Simulator sim;
    VideoReceiver rx{sim, profile_720p(), sim::Time::ms(50)};
    VideoFrame f;
    f.index = 1;
    f.size_bytes = 2 * kVideoMtu;
    f.captured_at = sim.now();
    const auto packets = packetize(f);
    rx.ingest(packets[0]);
    sim.run_until(sim::Time::ms(100));  // deadline passes
    rx.ingest(packets[1]);
    sim.run_all();
    EXPECT_EQ(rx.stats().frames_complete, 0u);
    EXPECT_EQ(rx.stats().frames_missed, 1u);
}

TEST(VideoReceiverTest, DuplicatesIgnored) {
    sim::Simulator sim;
    VideoReceiver rx{sim, profile_720p(), sim::Time::ms(100)};
    VideoFrame f;
    f.index = 1;
    f.size_bytes = kVideoMtu;
    f.captured_at = sim.now();
    const auto packets = packetize(f);
    rx.ingest(packets[0]);
    rx.ingest(packets[0]);
    sim.run_all();
    EXPECT_EQ(rx.stats().frames_complete, 1u);
}

TEST(VideoReceiverTest, FinishExpiresPending) {
    sim::Simulator sim;
    VideoReceiver rx{sim, profile_720p(), sim::Time::seconds(100)};
    VideoFrame f;
    f.index = 1;
    f.size_bytes = 2 * kVideoMtu;
    f.captured_at = sim.now();
    rx.ingest(packetize(f)[0]);
    rx.finish();
    EXPECT_EQ(rx.stats().frames_missed, 1u);
}

TEST(PlaybackStatsTest, QualityDegradesWithMisses) {
    const VideoProfile p = profile_720p();
    PlaybackStats clean;
    clean.frames_complete = 100;
    PlaybackStats lossy;
    lossy.frames_complete = 70;
    lossy.frames_missed = 30;
    lossy.freeze_seconds = 1.0;
    EXPECT_GT(clean.delivered_quality_db(p, 10.0), lossy.delivered_quality_db(p, 10.0));
    EXPECT_NEAR(clean.delivered_quality_db(p, 10.0), encode_psnr_db(p), 1e-9);
    EXPECT_GE(lossy.delivered_quality_db(p, 10.0), 20.0);
}

// ---------------------------------------------------------------------- audio

TEST(AudioSourceTest, FrameCadenceAndSizes) {
    sim::Simulator sim{94};
    AudioProfile profile;
    profile.voice_activity = 1.0;  // always talking
    std::uint64_t frames = 0;
    std::size_t bytes = 0;
    AudioSource src{sim, "mic", profile, [&](AudioFrame&& f) {
                        ++frames;
                        bytes += f.size_bytes;
                        EXPECT_TRUE(f.voiced);
                        EXPECT_GE(f.viseme, 1);
                        EXPECT_LE(f.viseme, 14);
                    }};
    src.start();
    sim.run_until(sim::Time::seconds(2));
    EXPECT_EQ(frames, 100u);  // 20 ms frames
    // 24 kbit/s => 60 bytes per voiced frame.
    EXPECT_NEAR(static_cast<double>(bytes) / 100.0, 60.0, 1.0);
}

TEST(AudioSourceTest, SilenceFramesSmallWithZeroViseme) {
    sim::Simulator sim{95};
    AudioProfile profile;
    profile.voice_activity = 0.0;
    AudioSource src{sim, "mic", profile, [&](AudioFrame&& f) {
                        EXPECT_FALSE(f.voiced);
                        EXPECT_EQ(f.viseme, 0);
                        EXPECT_LT(f.size_bytes, 20u);
                    }};
    src.start();
    sim.run_until(sim::Time::seconds(1));
}

TEST(AudioSourceTest, VoiceActivityRatio) {
    sim::Simulator sim{96};
    AudioProfile profile;
    profile.voice_activity = 0.4;
    int voiced = 0;
    int total = 0;
    AudioSource src{sim, "mic", profile, [&](AudioFrame&& f) {
                        ++total;
                        voiced += f.voiced ? 1 : 0;
                    }};
    src.start();
    sim.run_until(sim::Time::seconds(60));
    EXPECT_NEAR(static_cast<double>(voiced) / total, 0.4, 0.05);
}

TEST(AvSyncTest, SkewTracked) {
    AvSyncTracker sync;
    // Audio plays 80 ms after capture; video 120 ms: skew +40 (in tolerance).
    sync.on_audio_played(1, sim::Time::ms(0), sim::Time::ms(80));
    sync.on_video_played(1, sim::Time::ms(0), sim::Time::ms(120));
    EXPECT_EQ(sync.skew_ms().count(), 1u);
    EXPECT_NEAR(sync.skew_ms().mean(), 40.0, 1e-9);
    EXPECT_DOUBLE_EQ(sync.out_of_tolerance_ratio(), 0.0);
}

TEST(AvSyncTest, OutOfToleranceDetected) {
    AvSyncTracker sync;
    sync.on_audio_played(1, sim::Time::ms(0), sim::Time::ms(50));
    sync.on_video_played(1, sim::Time::ms(0), sim::Time::ms(200));  // +150 ms
    sync.on_video_played(2, sim::Time::ms(0), sim::Time::ms(60));   // +10 ms ok
    EXPECT_NEAR(sync.out_of_tolerance_ratio(), 0.5, 1e-9);
}

TEST(AvSyncTest, VideoBeforeAudioIgnored) {
    AvSyncTracker sync;
    sync.on_video_played(1, sim::Time::ms(0), sim::Time::ms(100));
    EXPECT_EQ(sync.skew_ms().count(), 0u);
}

}  // namespace
}  // namespace mvc::media
