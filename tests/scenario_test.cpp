// Tests for the declarative scenario engine: strict spec parsing with field
// paths and line/column context, lossless JSON round-trips, timeline ->
// FaultPlan compilation, deterministic world runs (classroom, relay+chaos,
// campus thread sweep), SLO evaluation, the mutation fuzzer's determinism,
// and the crash-regression corpus under tests/corpus/.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/fuzz.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "scenario/world.hpp"

namespace mvc::scenario {
namespace {

namespace fs = std::filesystem;

constexpr const char* kSmallClassroom = R"json({
  "scenario_version": 1,
  "name": "small",
  "world": "classroom",
  "seed": 9,
  "duration_s": 3,
  "hash_ms": 100,
  "classroom": {
    "course": "TEST101",
    "rooms": [
      {"name": "a", "region": "HongKong", "rows": 3, "cols": 3,
       "students": 2, "instructor": true},
      {"name": "b", "region": "Guangzhou", "rows": 3, "cols": 3, "students": 1}
    ],
    "remote": [{"region": "Seoul", "count": 1}],
    "schedule": [{"activity": "lecture", "minutes": 0.02}]
  },
  "timeline": [
    {"kind": "loss_burst", "at_s": 1, "duration_s": 0.5,
     "a": "edge/0", "b": "edge/1", "loss": 0.3},
    {"kind": "latency_spike", "at_s": 2, "duration_s": 0.5,
     "a": "edge/1", "b": "cloud", "extra_ms": 40}
  ],
  "slos": [{"metric": "scenario.hash_epochs", "min": 10}]
})json";

std::string corpus_dir() { return METACLASS_CORPUS_DIR; }
std::string scenario_dir() { return METACLASS_SCENARIO_DIR; }

std::string slurp(const fs::path& p) {
    std::ifstream in{p, std::ios::binary};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ------------------------------------------------------------------ parsing

TEST(SpecParseTest, FullDocument) {
    const ScenarioSpec s = scenario_from_text(kSmallClassroom);
    EXPECT_EQ(s.version, kSpecVersion);
    EXPECT_EQ(s.name, "small");
    EXPECT_EQ(s.world, WorldKind::Classroom);
    EXPECT_EQ(s.backend, BackendKind::Sim);
    EXPECT_EQ(s.seed, 9u);
    EXPECT_EQ(s.duration, sim::Time::seconds(3));
    ASSERT_EQ(s.classroom.rooms.size(), 2u);
    EXPECT_EQ(s.classroom.rooms[0].name, "a");
    EXPECT_EQ(s.classroom.rooms[1].region, net::Region::Guangzhou);
    EXPECT_EQ(s.classroom.rooms[0].students, 2u);
    EXPECT_TRUE(s.classroom.rooms[0].instructor);
    EXPECT_FALSE(s.classroom.rooms[1].instructor);
    ASSERT_EQ(s.classroom.remote.size(), 1u);
    EXPECT_EQ(s.classroom.remote[0].region, net::Region::Seoul);
    ASSERT_EQ(s.classroom.schedule.size(), 1u);
    EXPECT_EQ(s.classroom.schedule[0].kind, session::ActivityKind::Lecture);
    ASSERT_EQ(s.timeline.size(), 2u);
    EXPECT_EQ(s.timeline[0].kind, TimelineKind::LossBurst);
    EXPECT_EQ(s.timeline[1].kind, TimelineKind::LatencySpike);
    ASSERT_EQ(s.slos.size(), 1u);
    EXPECT_EQ(s.slos[0].metric, "scenario.hash_epochs");
}

TEST(SpecParseTest, VersionRequired) {
    EXPECT_THROW((void)scenario_from_text("{}"), SpecError);
    EXPECT_THROW((void)scenario_from_text(R"({"scenario_version": 2})"), SpecError);
}

TEST(SpecParseTest, UnknownKeyRejectedWithPath) {
    try {
        (void)scenario_from_text(R"({"scenario_version": 1, "wrold": 1})");
        FAIL() << "unknown key accepted";
    } catch (const SpecError& e) {
        EXPECT_NE(std::string{e.what()}.find("wrold"), std::string::npos);
    }
    // Nested unknown keys carry the dotted path.
    try {
        (void)scenario_from_text(
            R"({"scenario_version": 1,
                "classroom": {"rooms": [{"preset": "cwb", "colz": 5}]}})");
        FAIL() << "nested unknown key accepted";
    } catch (const SpecError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("classroom.rooms[0]"), std::string::npos) << what;
        EXPECT_NE(what.find("colz"), std::string::npos) << what;
    }
}

TEST(SpecParseTest, SyntaxErrorCarriesLineAndColumn) {
    try {
        (void)scenario_from_text("{\n  \"scenario_version\": 1,\n  \"name\": trunc\n}");
        FAIL() << "syntax error accepted";
    } catch (const SpecError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
        EXPECT_NE(what.find("column"), std::string::npos) << what;
    }
}

TEST(SpecParseTest, FieldErrorsCarryPaths) {
    try {
        (void)scenario_from_text(
            R"({"scenario_version": 1,
                "timeline": [{"kind": "loss_burst", "at_s": 1, "duration_s": 1,
                              "a": "edge/0", "b": "edge/1", "loss": 1.5}]})");
        FAIL() << "out-of-range loss accepted";
    } catch (const SpecError& e) {
        EXPECT_NE(std::string{e.what()}.find("timeline[0]"), std::string::npos)
            << e.what();
    }
}

TEST(SpecParseTest, WorldBackendCrossChecks) {
    // Classroom world only runs on the sim backend.
    EXPECT_THROW((void)scenario_from_text(
                     R"({"scenario_version": 1, "world": "classroom",
                         "backend": "chaos"})"),
                 SpecError);
    // Chaos windows need the chaos backend.
    EXPECT_THROW((void)scenario_from_text(
                     R"({"scenario_version": 1, "world": "relay",
                         "relay": {"clients": [{"count": 1, "region": "HongKong"}]},
                         "timeline": [{"kind": "chaos", "at_s": 1, "duration_s": 1,
                                       "a": "client/*", "b": "relay",
                                       "profile": {"drop": 0.1}}]})"),
                 SpecError);
    // The inactive world's section must be absent.
    EXPECT_THROW((void)scenario_from_text(
                     R"({"scenario_version": 1, "world": "classroom",
                         "relay": {"clients": [{"count": 1, "region": "HongKong"}]}})"),
                 SpecError);
}

// --------------------------------------------------------------- round-trip

TEST(SpecRoundTripTest, InlineSpecLossless) {
    const ScenarioSpec s = scenario_from_text(kSmallClassroom);
    const common::Json j1 = spec_to_json(s);
    const ScenarioSpec reparsed = scenario_from_json(j1);
    const common::Json j2 = spec_to_json(reparsed);
    EXPECT_EQ(j1.dump(2), j2.dump(2));
    EXPECT_EQ(spec_stamp(s), spec_stamp(reparsed));
}

TEST(SpecRoundTripTest, ShippedSpecsLossless) {
    std::size_t checked = 0;
    for (const auto& entry : fs::directory_iterator(scenario_dir())) {
        if (entry.path().extension() != ".json") continue;
        SCOPED_TRACE(entry.path().filename().string());
        const ScenarioSpec s = load_spec_file(entry.path().string());
        const common::Json j1 = spec_to_json(s);
        const common::Json j2 = spec_to_json(scenario_from_json(j1));
        EXPECT_EQ(j1.dump(2), j2.dump(2));
        ++checked;
    }
    EXPECT_GE(checked, 3u);  // exam, campus_event, breakout_groups at least
}

// --------------------------------------------------- timeline -> FaultPlan

TEST(TimelineCompileTest, EntriesLandInThePlan) {
    const ScenarioSpec s = scenario_from_text(kSmallClassroom);
    const auto world = build(s);
    ASSERT_NE(world->plan(), nullptr);
    const std::string plan = world->plan()->to_string();
    EXPECT_NE(plan.find("loss_burst_start"), std::string::npos) << plan;
    EXPECT_NE(plan.find("latency_spike_start"), std::string::npos) << plan;
}

TEST(TimelineCompileTest, UnknownNodeRefRejected) {
    ScenarioSpec s = scenario_from_text(kSmallClassroom);
    s.timeline[0].a = "edge/7";
    EXPECT_THROW((void)build(s), SpecError);
}

TEST(TimelineCompileTest, ClientWildcardExpands) {
    const ScenarioSpec s = load_spec_file(corpus_dir() +
                                          "/valid/relay_chaos.scenario.json");
    const auto world = build(s);
    const auto nodes = world->resolve("client/*");
    EXPECT_EQ(nodes.size(), 3u);  // the spec's one cohort of three
}

// ------------------------------------------------------------- determinism

TEST(ScenarioRunTest, ClassroomDeterministicForSeed) {
    const ScenarioSpec s = scenario_from_text(kSmallClassroom);
    const ScenarioReport a = run_scenario(s);
    const ScenarioReport b = run_scenario(s);
    ASSERT_FALSE(a.hashes.empty());
    EXPECT_EQ(a.hashes, b.hashes);
    EXPECT_EQ(a.metrics.dump(2), b.metrics.dump(2));
    EXPECT_TRUE(a.passed);
}

TEST(ScenarioRunTest, RelayChaosDeterministicForSeed) {
    const ScenarioSpec s = load_spec_file(corpus_dir() +
                                          "/valid/relay_chaos.scenario.json");
    const ScenarioReport a = run_scenario(s);
    const ScenarioReport b = run_scenario(s);
    ASSERT_FALSE(a.hashes.empty());
    EXPECT_EQ(a.hashes, b.hashes);
    EXPECT_EQ(a.metrics.dump(2), b.metrics.dump(2));
}

TEST(ScenarioRunTest, CampusInvariantUnderThreads) {
    const ScenarioSpec s = load_spec_file(corpus_dir() +
                                          "/valid/campus_small.scenario.json");
    const ScenarioReport one = run_scenario(s, 1);
    const ScenarioReport two = run_scenario(s, 2);
    ASSERT_FALSE(one.hashes.empty());
    EXPECT_EQ(one.hashes, two.hashes);
    EXPECT_EQ(one.metrics.dump(2), two.metrics.dump(2));
}

// -------------------------------------------------------------------- SLOs

TEST(SloTest, CounterSeriesAndMissingMetrics) {
    sim::MetricsRecorder m;
    m.count("widgets", 7);
    for (int i = 1; i <= 100; ++i) m.sample("lat_ms", static_cast<double>(i));
    EXPECT_DOUBLE_EQ(*metric_value(m, "widgets"), 7.0);
    EXPECT_DOUBLE_EQ(*metric_value(m, "lat_ms.count"), 100.0);
    EXPECT_DOUBLE_EQ(*metric_value(m, "lat_ms.p50"), 50.5);
    EXPECT_FALSE(metric_value(m, "nope").has_value());
    EXPECT_FALSE(metric_value(m, "lat_ms.p42").has_value());

    const std::vector<SloGate> gates = {
        {.metric = "widgets", .min = 1.0, .max = 10.0},
        {.metric = "lat_ms.p50", .max = 10.0},  // fails: 50.5 > 10
        {.metric = "typo.p95", .min = 0.0},     // fails: missing metric
    };
    const auto results = evaluate_slos(m, gates);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].passed);
    EXPECT_FALSE(results[1].passed);
    EXPECT_FALSE(results[2].passed);
    EXPECT_FALSE(results[2].value.has_value());
}

// -------------------------------------------------------------------- fuzz

TEST(FuzzTest, MutationsAreDeterministic) {
    const ScenarioSpec base = scenario_from_text(kSmallClassroom);
    const ScenarioSpec m1 = mutate_spec(base, 4);
    const ScenarioSpec m2 = mutate_spec(base, 4);
    EXPECT_EQ(spec_to_json(m1).dump(2), spec_to_json(m2).dump(2));
    // A different salt actually perturbs something.
    const ScenarioSpec m3 = mutate_spec(base, 5);
    EXPECT_NE(spec_to_json(m1).dump(2), spec_to_json(m3).dump(2));
}

TEST(FuzzTest, SmallSpecFuzzRunsClean) {
    const ScenarioSpec base = scenario_from_text(kSmallClassroom);
    FuzzOptions options;
    options.iterations = 4;
    options.duration_cap = sim::Time::seconds(1.5);
    const FuzzReport report = fuzz_specs(base, options);
    EXPECT_EQ(report.iterations, 4u);
    EXPECT_GT(report.ran, 0u);
    for (const FuzzFailure& f : report.failures)
        ADD_FAILURE() << "iteration " << f.iteration << ": " << f.what;
    EXPECT_TRUE(report.ok());
}

TEST(FuzzTest, TraceMutationsNeverCrashTheChecker) {
    // A tiny synthetic byte blob: the fuzzer's contract (verify never throws,
    // parse either succeeds or throws TraceError) must hold on arbitrary
    // garbage, not just recorded traces.
    std::vector<std::uint8_t> bytes(512);
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<std::uint8_t>((i * 37 + 11) & 0xff);
    FuzzOptions options;
    options.iterations = 64;
    const FuzzReport report = fuzz_trace(bytes, options);
    for (const FuzzFailure& f : report.failures)
        ADD_FAILURE() << "iteration " << f.iteration << ": " << f.what;
    EXPECT_TRUE(report.ok());
    // Same options -> same corruption schedule.
    const std::vector<std::uint8_t> a = mutate_trace(bytes, 9);
    const std::vector<std::uint8_t> b = mutate_trace(bytes, 9);
    EXPECT_EQ(a, b);
}

// ------------------------------------------------------------------ corpus

TEST(CorpusTest, ValidSpecsParseValidateAndRoundTrip) {
    std::size_t checked = 0;
    for (const auto& entry : fs::directory_iterator(corpus_dir() + "/valid")) {
        SCOPED_TRACE(entry.path().filename().string());
        const ScenarioSpec s = load_spec_file(entry.path().string());
        EXPECT_NO_THROW(validate_spec(s));
        const common::Json j1 = spec_to_json(s);
        EXPECT_EQ(j1.dump(2), spec_to_json(scenario_from_json(j1)).dump(2));
        ++checked;
    }
    EXPECT_GE(checked, 5u);
}

TEST(CorpusTest, BadSpecsAllRejectedAsSpecError) {
    std::size_t checked = 0;
    for (const auto& entry : fs::directory_iterator(corpus_dir() + "/bad")) {
        SCOPED_TRACE(entry.path().filename().string());
        EXPECT_THROW((void)scenario_from_text(slurp(entry.path())), SpecError);
        // The file-loading path wraps the same error with the path context.
        EXPECT_THROW((void)load_spec_file(entry.path().string()), SpecError);
        ++checked;
    }
    EXPECT_GE(checked, 10u);
}

}  // namespace
}  // namespace mvc::scenario
