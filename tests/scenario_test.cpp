// Tests for the scenario loader, runner, and the JSON report exporter.

#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace mvc::core {
namespace {

constexpr const char* kSmallScenario = R"json({
  "seed": 9,
  "course": "TEST101",
  "duration_s": 10,
  "rooms": [
    {"name": "a", "region": "HongKong", "rows": 3, "cols": 3,
     "students": 2, "instructor": true},
    {"name": "b", "region": "Guangzhou", "rows": 3, "cols": 3, "students": 1}
  ],
  "remote": [{"region": "Seoul", "count": 1}],
  "schedule": [{"activity": "lecture", "minutes": 1}]
})json";

TEST(ScenarioParseTest, FullDocument) {
    const Scenario s = scenario_from_text(kSmallScenario);
    EXPECT_EQ(s.config.seed, 9u);
    EXPECT_EQ(s.config.course, "TEST101");
    EXPECT_EQ(s.duration, sim::Time::seconds(10));
    ASSERT_EQ(s.config.rooms.size(), 2u);
    EXPECT_EQ(s.config.rooms[0].name, "a");
    EXPECT_EQ(s.config.rooms[1].region, net::Region::Guangzhou);
    ASSERT_EQ(s.room_specs.size(), 2u);
    EXPECT_EQ(s.room_specs[0].students, 2u);
    EXPECT_TRUE(s.room_specs[0].instructor);
    EXPECT_FALSE(s.room_specs[1].instructor);
    ASSERT_EQ(s.remote.size(), 1u);
    EXPECT_EQ(s.remote[0].region, net::Region::Seoul);
    ASSERT_EQ(s.schedule.size(), 1u);
    EXPECT_EQ(s.schedule[0].kind, session::ActivityKind::Lecture);
    EXPECT_EQ(s.schedule[0].duration, sim::Time::seconds(60));
    EXPECT_FALSE(s.lecture_media_room.has_value());
}

TEST(ScenarioParseTest, DefaultsWhenFieldsAbsent) {
    const Scenario s = scenario_from_text("{}");
    EXPECT_EQ(s.config.seed, 42u);
    EXPECT_EQ(s.config.rooms.size(), 2u);  // CWB + GZ defaults
    EXPECT_EQ(s.room_specs[0].students, 6u);
    EXPECT_TRUE(s.room_specs[0].instructor);
    EXPECT_TRUE(s.remote.empty());
}

TEST(ScenarioParseTest, UnknownRegionRejected) {
    EXPECT_THROW(scenario_from_text(R"({"rooms":[{"region":"Atlantis"}]})"),
                 std::runtime_error);
    EXPECT_THROW(scenario_from_text(R"({"remote":[{"region":"Mars"}]})"),
                 std::runtime_error);
}

TEST(ScenarioParseTest, UnknownActivityRejected) {
    EXPECT_THROW(scenario_from_text(R"({"schedule":[{"activity":"recess"}]})"),
                 std::runtime_error);
}

TEST(ScenarioParseTest, OvercrowdedRoomRejected) {
    EXPECT_THROW(
        scenario_from_text(R"({"rooms":[{"rows":2,"cols":2,"students":5}]})"),
        std::runtime_error);
}

TEST(ScenarioParseTest, MediaRoomRangeChecked) {
    EXPECT_THROW(scenario_from_text(R"({"lecture_media_room": 5})"),
                 std::runtime_error);
}

TEST(ScenarioParseTest, NonObjectRejected) {
    EXPECT_THROW(scenario_from_text("[1,2,3]"), std::runtime_error);
    EXPECT_THROW(scenario_from_text("not json at all"), common::JsonParseError);
}

TEST(ScenarioNameTest, RegionRoundTrip) {
    for (const net::Region r : net::all_regions()) {
        EXPECT_EQ(region_from_name(net::region_name(r)), r);
    }
    EXPECT_FALSE(region_from_name("Nowhere").has_value());
}

TEST(ScenarioNameTest, ActivityRoundTrip) {
    using session::ActivityKind;
    for (const ActivityKind k :
         {ActivityKind::Lecture, ActivityKind::Qa, ActivityKind::GamifiedBreakout,
          ActivityKind::LearnerPresentation, ActivityKind::VirtualLab}) {
        EXPECT_EQ(activity_from_name(session::activity_name(k)), k);
    }
}

TEST(ScenarioRunTest, ProducesPopulatedReport) {
    const Scenario s = scenario_from_text(kSmallScenario);
    const ClassReport report = run_scenario(s);
    EXPECT_EQ(report.physical_participants, 4u);  // 2 + 1 + instructor
    EXPECT_EQ(report.remote_participants, 1u);
    EXPECT_GT(report.mr_cross_campus_ms.count(), 0u);
    EXPECT_GT(report.avatar_bytes, 0u);
}

TEST(ScenarioRunTest, DeterministicForSeed) {
    const Scenario s = scenario_from_text(kSmallScenario);
    const ClassReport a = run_scenario(s);
    const ClassReport b = run_scenario(s);
    EXPECT_EQ(a.avatar_bytes, b.avatar_bytes);
    EXPECT_DOUBLE_EQ(a.mr_cross_campus_ms.mean(), b.mr_cross_campus_ms.mean());
}

TEST(ScenarioRunTest, MediaRoomEnablesBridge) {
    Scenario s = scenario_from_text(kSmallScenario);
    s.lecture_media_room = 0;
    s.duration = sim::Time::seconds(5);
    const ClassReport report = run_scenario(s);
    EXPECT_TRUE(report.media_enabled);
    EXPECT_GT(report.media_bytes, 0u);
}

TEST(ReportJsonTest, FieldsPresentAndTyped) {
    Scenario s = scenario_from_text(kSmallScenario);
    s.duration = sim::Time::seconds(5);
    const ClassReport report = run_scenario(s);
    const common::Json j = report_to_json(report);
    ASSERT_TRUE(j.is_object());
    EXPECT_DOUBLE_EQ(j.find("physical_participants")->as_number(), 4.0);
    const common::Json* lat = j.find("mr_cross_campus_ms");
    ASSERT_NE(lat, nullptr);
    EXPECT_GT(lat->find("n")->as_number(), 0.0);
    EXPECT_GT(lat->find("p95")->as_number(), 0.0);
    EXPECT_EQ(j.find("media"), nullptr);  // media off in this scenario
    // The JSON dump parses back.
    EXPECT_NO_THROW((void)common::Json::parse(j.dump(2)));
}

TEST(ReportJsonTest, SeriesSerialization) {
    math::SampleSeries s;
    for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
    const common::Json j = series_to_json(s);
    EXPECT_DOUBLE_EQ(j.find("n")->as_number(), 100.0);
    EXPECT_DOUBLE_EQ(j.find("p50")->as_number(), 50.5);
}

}  // namespace
}  // namespace mvc::core
