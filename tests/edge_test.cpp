// Tests for the edge layer: seat maps, Hungarian assignment (verified
// against brute force), pose retargeting, and the edge server end to end
// over a simulated classroom pair.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "edge/edge_server.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "edge/retarget.hpp"
#include "edge/seats.hpp"

namespace mvc::edge {
namespace {

// ------------------------------------------------------------------- SeatMap

TEST(SeatMapTest, GridGeometry) {
    const SeatMap seats = SeatMap::grid(3, 4, 1.0, 2.0);
    EXPECT_EQ(seats.size(), 12u);
    EXPECT_EQ(seats.vacant_count(), 12u);
    // First seat: leftmost column, first row.
    EXPECT_NEAR(seats.seat(0).pose.position.x, -1.5, 1e-9);
    EXPECT_NEAR(seats.seat(0).pose.position.z, 2.0, 1e-9);
    // Last seat: rightmost column, last row.
    EXPECT_NEAR(seats.seat(11).pose.position.x, 1.5, 1e-9);
    EXPECT_NEAR(seats.seat(11).pose.position.z, 4.0, 1e-9);
}

TEST(SeatMapTest, OccupyAndVacate) {
    SeatMap seats = SeatMap::grid(2, 2);
    EXPECT_TRUE(seats.occupy(1, ParticipantId{7}));
    EXPECT_FALSE(seats.occupy(1, ParticipantId{8}));  // already taken
    EXPECT_EQ(seats.vacant_count(), 3u);
    EXPECT_EQ(seats.seat_of(ParticipantId{7}), std::optional<std::size_t>{1});
    EXPECT_FALSE(seats.seat_of(ParticipantId{8}).has_value());
    seats.vacate(1);
    EXPECT_EQ(seats.vacant_count(), 4u);
    EXPECT_FALSE(seats.seat_of(ParticipantId{7}).has_value());
}

TEST(SeatMapTest, VacantIndicesSkipOccupied) {
    SeatMap seats = SeatMap::grid(1, 3);
    seats.occupy(1, ParticipantId{1});
    const auto vacant = seats.vacant_indices();
    EXPECT_EQ(vacant, (std::vector<std::size_t>{0, 2}));
}

// ----------------------------------------------------------------- Hungarian

double brute_force_best(const std::vector<std::vector<double>>& cost) {
    const std::size_t n = cost.size();
    const std::size_t m = cost[0].size();
    std::vector<std::size_t> cols(m);
    std::iota(cols.begin(), cols.end(), 0u);
    double best = 1e300;
    // Try every permutation of columns; first n entries map to rows.
    std::sort(cols.begin(), cols.end());
    do {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) total += cost[i][cols[i]];
        best = std::min(best, total);
    } while (std::next_permutation(cols.begin(), cols.end()));
    return best;
}

TEST(HungarianTest, MatchesBruteForceOnRandomInstances) {
    std::mt19937 gen{61};
    std::uniform_real_distribution<double> d{0.0, 10.0};
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 2 + gen() % 4;  // rows 2..5
        const std::size_t m = n + gen() % 3;  // cols n..n+2
        std::vector<std::vector<double>> cost(n, std::vector<double>(m));
        for (auto& row : cost) {
            for (auto& c : row) c = d(gen);
        }
        const auto match = hungarian(cost);
        double total = 0.0;
        std::set<std::size_t> used;
        for (std::size_t i = 0; i < n; ++i) {
            total += cost[i][match[i]];
            used.insert(match[i]);
        }
        EXPECT_EQ(used.size(), n) << "assignment must be injective";
        EXPECT_NEAR(total, brute_force_best(cost), 1e-9);
    }
}

TEST(HungarianTest, IdentityOnDiagonalCosts) {
    // Strong diagonal preference must recover the identity matching.
    std::vector<std::vector<double>> cost(4, std::vector<double>(4, 10.0));
    for (std::size_t i = 0; i < 4; ++i) cost[i][i] = 0.0;
    const auto match = hungarian(cost);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(match[i], i);
}

TEST(HungarianTest, RejectsBadShapes) {
    EXPECT_THROW((void)hungarian({{1.0, 2.0}, {3.0}}), std::invalid_argument);
    EXPECT_THROW((void)hungarian({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}}),
                 std::invalid_argument);
    EXPECT_TRUE(hungarian({}).empty());
}

// ----------------------------------------------------------- seat assignment

TEST(SeatAssignmentTest, PreservesRelativeGeometry) {
    // Remote trio seated left-middle-right must map to seats in the same
    // left-to-right order.
    SeatMap seats = SeatMap::grid(1, 5, 1.0);
    const std::vector<SeatRequest> requests{
        {ParticipantId{1}, {-2.0, 0, 0}},
        {ParticipantId{2}, {0.0, 0, 0}},
        {ParticipantId{3}, {2.0, 0, 0}},
    };
    const AssignmentResult res = assign_seats_optimal(seats, requests);
    ASSERT_EQ(res.assignments.size(), 3u);
    double prev_x = -1e9;
    for (const ParticipantId who : {ParticipantId{1}, ParticipantId{2}, ParticipantId{3}}) {
        const auto it = std::find_if(res.assignments.begin(), res.assignments.end(),
                                     [who](const SeatAssignment& a) {
                                         return a.participant == who;
                                     });
        ASSERT_NE(it, res.assignments.end());
        const double x = seats.seat(it->seat_index).pose.position.x;
        EXPECT_GT(x, prev_x);
        prev_x = x;
    }
}

TEST(SeatAssignmentTest, OptimalNeverWorseThanGreedy) {
    std::mt19937 gen{62};
    std::uniform_real_distribution<double> d{-5.0, 5.0};
    for (int trial = 0; trial < 20; ++trial) {
        SeatMap seats = SeatMap::grid(3, 4);
        std::vector<SeatRequest> requests;
        for (std::uint32_t i = 1; i <= 8; ++i) {
            requests.push_back({ParticipantId{i}, {d(gen), 0.0, d(gen)}});
        }
        const double optimal = assign_seats_optimal(seats, requests).total_cost;
        const double greedy = assign_seats_greedy(seats, requests).total_cost;
        EXPECT_LE(optimal, greedy + 1e-9);
    }
}

TEST(SeatAssignmentTest, OverflowReportsUnseated) {
    SeatMap seats = SeatMap::grid(1, 2);
    std::vector<SeatRequest> requests;
    for (std::uint32_t i = 1; i <= 4; ++i) {
        requests.push_back({ParticipantId{i}, {static_cast<double>(i), 0, 0}});
    }
    const AssignmentResult res = assign_seats_optimal(seats, requests);
    EXPECT_EQ(res.assignments.size(), 2u);
    EXPECT_EQ(res.unseated.size(), 2u);
}

TEST(SeatAssignmentTest, OccupiedSeatsExcluded) {
    SeatMap seats = SeatMap::grid(1, 3);
    seats.occupy(0, ParticipantId{99});
    seats.occupy(2, ParticipantId{98});
    const AssignmentResult res =
        assign_seats_optimal(seats, {{ParticipantId{1}, {0, 0, 0}}});
    ASSERT_EQ(res.assignments.size(), 1u);
    EXPECT_EQ(res.assignments[0].seat_index, 1u);
}

TEST(SeatAssignmentTest, EmptyRequestsNoop) {
    const SeatMap seats = SeatMap::grid(2, 2);
    const AssignmentResult res = assign_seats_optimal(seats, {});
    EXPECT_TRUE(res.assignments.empty());
    EXPECT_TRUE(res.unseated.empty());
}

// ----------------------------------------------------------------- retarget

avatar::AvatarState make_state(const math::Pose& root) {
    avatar::AvatarState s;
    s.participant = ParticipantId{1};
    s.root.pose = root;
    s.body.head = {root.position + math::Vec3{0, 0.65, 0}, root.orientation};
    s.body.left_hand = {root.position + math::Vec3{-0.25, 0.35, 0}, root.orientation};
    s.body.right_hand = {root.position + math::Vec3{0.25, 0.35, 0}, root.orientation};
    return s;
}

TEST(RetargetTest, UnboundReturnsNullopt) {
    const PoseRetargeter rt;
    EXPECT_FALSE(rt.retarget(make_state({})).has_value());
}

TEST(RetargetTest, AnchorMapsExactlyToSeat) {
    PoseRetargeter rt;
    const math::Pose anchor{{10, 0, 5}, math::Quat::from_axis_angle(math::Vec3::unit_y(), 0.3)};
    const math::Pose seat{{-2, 0, 3}, math::Quat::identity()};
    rt.bind(ParticipantId{1}, anchor, seat);
    const auto out = rt.retarget(make_state(anchor));
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(math::approx_equal(out->root.pose.position, seat.position, 1e-9));
    EXPECT_NEAR(math::angular_distance(out->root.pose.orientation, seat.orientation), 0.0,
                1e-9);
}

TEST(RetargetTest, LocalMotionPreserved) {
    PoseRetargeter rt;
    const math::Pose anchor{{10, 0, 5}, math::Quat::identity()};
    const math::Pose seat{{0, 0, 0},
                          math::Quat::from_axis_angle(math::Vec3::unit_y(), 1.5707963)};
    rt.bind(ParticipantId{1}, anchor, seat);
    // Lean 0.3 m forward (-z) in the source frame.
    math::Pose leaned = anchor;
    leaned.position += math::Vec3{0, 0, -0.3};
    const auto out = rt.retarget(make_state(leaned));
    ASSERT_TRUE(out.has_value());
    // The seat frame is rotated 90 deg about y: local -z becomes world -x.
    EXPECT_NEAR(out->root.pose.position.distance_to(seat.position), 0.3, 1e-6);
    EXPECT_NEAR(out->root.pose.position.x, -0.3, 1e-6);
}

TEST(RetargetTest, HeadOffsetSurvives) {
    PoseRetargeter rt;
    const math::Pose anchor{{4, 0, 4}, math::Quat::identity()};
    const math::Pose seat{{1, 0, 1}, math::Quat::identity()};
    rt.bind(ParticipantId{1}, anchor, seat);
    const auto out = rt.retarget(make_state(anchor));
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(math::approx_equal(out->body.head.position - out->root.pose.position,
                                   {0, 0.65, 0}, 1e-9));
}

TEST(RetargetTest, RoamClampedToSeatRadius) {
    RetargetParams params;
    params.roam_radius_m = 0.5;
    PoseRetargeter rt{params};
    const math::Pose anchor{{0, 0, 0}, math::Quat::identity()};
    const math::Pose seat{{2, 0, 2}, math::Quat::identity()};
    rt.bind(ParticipantId{1}, anchor, seat);
    // Walk 3 m away in the source room.
    math::Pose walked = anchor;
    walked.position += math::Vec3{3, 0, 0};
    const auto out = rt.retarget(make_state(walked));
    ASSERT_TRUE(out.has_value());
    const math::Vec3 offset = out->root.pose.position - seat.position;
    EXPECT_LE(math::Vec3(offset.x, 0, offset.z).norm(), 0.5 + 1e-9);
    EXPECT_GT(rt.clamped(), 0u);
}

TEST(RetargetTest, VelocityRotatedIntoSeatFrame) {
    PoseRetargeter rt;
    const math::Pose anchor{{0, 0, 0}, math::Quat::identity()};
    const math::Pose seat{{0, 0, 0},
                          math::Quat::from_axis_angle(math::Vec3::unit_y(), 3.14159265)};
    rt.bind(ParticipantId{1}, anchor, seat);
    avatar::AvatarState s = make_state(anchor);
    s.root.linear_velocity = {1, 0, 0};
    const auto out = rt.retarget(s);
    ASSERT_TRUE(out.has_value());
    EXPECT_NEAR(out->root.linear_velocity.x, -1.0, 1e-6);
}

TEST(RetargetTest, UnbindForgets) {
    PoseRetargeter rt;
    rt.bind(ParticipantId{1}, {}, {});
    EXPECT_TRUE(rt.bound(ParticipantId{1}));
    rt.unbind(ParticipantId{1});
    EXPECT_FALSE(rt.bound(ParticipantId{1}));
}

// --------------------------------------------------------------- EdgeServer

struct EdgePairFixture : ::testing::Test {
    sim::Simulator sim{71};
    net::Network net{sim};
    net::WanTopology wan;
    net::NodeId node_a = net.add_node("edge-a", net::Region::HongKong);
    net::NodeId node_b = net.add_node("edge-b", net::Region::Guangzhou);
    EdgeServer server_a{net, node_a, config("a", 1), SeatMap::grid(3, 3)};
    EdgeServer server_b{net, node_b, config("b", 2), SeatMap::grid(3, 3)};

    static EdgeServerConfig config(const std::string& name, std::uint32_t room) {
        EdgeServerConfig c;
        c.name = name;
        c.room = ClassroomId{room};
        return c;
    }

    void SetUp() override {
        net.connect_wan(node_a, node_b, wan);
        server_a.add_peer(node_b);
        server_b.add_peer(node_a);
    }

    /// Feed clean headset samples for `who` in room A moving on a circle.
    void drive_participant(ParticipantId who, double seconds) {
        for (double t = 0.0; t < seconds; t += 1.0 / 90.0) {
            sensing::SensorSample s;
            s.participant = who;
            s.captured_at = sim::Time::seconds(t);
            s.source = sensing::SensorSource::Headset;
            s.pose.position = {std::cos(t), 0.0, 2.0 + std::sin(t)};
            s.expression.assign(4, 0.5);
            sim.schedule_at(sim::Time::seconds(t), [this, s] {
                server_a.ingest_sample(sensing::SensorSample{s});
            });
        }
    }
};

TEST_F(EdgePairFixture, RemoteAvatarAppearsAndGetsSeat) {
    server_a.add_local_participant(ParticipantId{1}, 0);
    drive_participant(ParticipantId{1}, 3.0);
    server_a.start();
    server_b.start();
    sim.run_until(sim::Time::seconds(3));

    const auto remotes = server_b.remote_participants();
    ASSERT_EQ(remotes.size(), 1u);
    EXPECT_EQ(remotes[0], ParticipantId{1});
    EXPECT_EQ(server_b.seats().vacant_count(), 8u);  // one seat taken
    EXPECT_TRUE(server_b.seats().seat_of(ParticipantId{1}).has_value());
    EXPECT_GT(server_b.avatar_packets_in(), 0u);
}

TEST_F(EdgePairFixture, DisplayedAvatarSitsAtAssignedSeat) {
    server_a.add_local_participant(ParticipantId{1}, 0);
    drive_participant(ParticipantId{1}, 5.0);
    server_a.start();
    server_b.start();
    sim.run_until(sim::Time::seconds(5));

    const auto seat_index = server_b.seats().seat_of(ParticipantId{1});
    ASSERT_TRUE(seat_index.has_value());
    const math::Pose seat = server_b.seats().seat(*seat_index).pose;
    const auto shown = server_b.display_remote(ParticipantId{1}, sim.now());
    ASSERT_TRUE(shown.has_value());
    // The circling participant stays within the roam radius of the seat.
    const math::Vec3 offset = shown->root.pose.position - seat.position;
    EXPECT_LE(math::Vec3(offset.x, 0, offset.z).norm(), 1.2 + 1e-6);
}

TEST_F(EdgePairFixture, DisplayLatencyIsBounded) {
    server_a.add_local_participant(ParticipantId{1}, 0);
    drive_participant(ParticipantId{1}, 5.0);
    server_a.start();
    server_b.start();
    sim.run_until(sim::Time::seconds(5));

    const auto shown = server_b.display_remote(ParticipantId{1}, sim.now());
    ASSERT_TRUE(shown.has_value());
    const double latency_ms = (sim.now() - shown->captured_at).to_ms();
    // CWB-GZ one-way ~4 ms + jitter buffer: far below the 100 ms budget.
    EXPECT_LT(latency_ms, 80.0);
    EXPECT_GT(latency_ms, 0.0);
}

TEST_F(EdgePairFixture, LocalStateRequiresFreshSamples) {
    server_a.add_local_participant(ParticipantId{1}, 0);
    EXPECT_FALSE(server_a.local_state(ParticipantId{1}, sim.now()).has_value());
    drive_participant(ParticipantId{1}, 1.0);
    server_a.start();
    server_b.start();
    sim.run_until(sim::Time::seconds(1));
    EXPECT_TRUE(server_a.local_state(ParticipantId{1}, sim.now()).has_value());
    // 2 s after the last sample the track is stale.
    sim.run_until(sim::Time::seconds(3));
    EXPECT_FALSE(server_a.local_state(ParticipantId{1}, sim.now()).has_value());
}

TEST_F(EdgePairFixture, RemoveLocalVacatesSeatAndStopsStream) {
    server_a.add_local_participant(ParticipantId{1}, 4);
    EXPECT_EQ(server_a.seats().vacant_count(), 8u);
    server_a.remove_local_participant(ParticipantId{1});
    EXPECT_EQ(server_a.seats().vacant_count(), 9u);
    EXPECT_EQ(server_a.local_count(), 0u);
}

TEST_F(EdgePairFixture, ReservedSeatSurvivesArrivalRace) {
    // Tiny destination room: 2 seats. Reserve one for participant 3, then
    // flood with participants 1 and 2 whose streams arrive first.
    EdgeServer tiny{net, net.add_node("tiny2", net::Region::Guangzhou),
                    config("tiny2", 4), SeatMap::grid(1, 2)};
    net.connect_wan(node_a, tiny.node(), wan);
    server_a.add_peer(tiny.node());

    const auto reserved = tiny.reserve_seat(ParticipantId{3});
    ASSERT_TRUE(reserved.has_value());
    // Idempotent: reserving again returns the same seat.
    EXPECT_EQ(tiny.reserve_seat(ParticipantId{3}), reserved);

    for (std::uint32_t i = 1; i <= 3; ++i) {
        server_a.add_local_participant(ParticipantId{i});
        drive_participant(ParticipantId{i}, 3.0);
    }
    server_a.start();
    tiny.start();
    sim.run_until(sim::Time::seconds(3));

    // Participant 3 holds the reserved seat; only one of 1/2 found a seat.
    EXPECT_EQ(tiny.seats().seat_of(ParticipantId{3}), reserved);
    EXPECT_TRUE(tiny.display_remote(ParticipantId{3}, sim.now()).has_value());
    EXPECT_EQ(tiny.seats().vacant_count(), 0u);
    EXPECT_GT(tiny.seats_exhausted(), 0u);

    // Room now full: further reservations fail.
    EXPECT_FALSE(tiny.reserve_seat(ParticipantId{9}).has_value());
}

TEST_F(EdgePairFixture, LinkOutageRecoversViaKeyframes) {
    server_a.add_local_participant(ParticipantId{1}, 0);
    drive_participant(ParticipantId{1}, 12.0);
    server_a.start();
    server_b.start();
    sim.run_until(sim::Time::seconds(3));
    ASSERT_TRUE(server_b.display_remote(ParticipantId{1}, sim.now()).has_value());

    // Total outage: every packet on the CWB->GZ link is lost for 3 s.
    net::Link* link = net.link(node_a, node_b);
    ASSERT_NE(link, nullptr);
    net::LinkParams broken = link->params();
    broken.loss = 1.0;
    const net::LinkParams healthy = link->params();
    link->set_params(broken);
    sim.run_until(sim::Time::seconds(6));

    // The displayed avatar has gone stale: its capture timestamp lags far
    // behind now (the jitter buffer can only extrapolate briefly).
    {
        const auto shown = server_b.display_remote(ParticipantId{1}, sim.now());
        ASSERT_TRUE(shown.has_value());
        EXPECT_GT((sim.now() - shown->captured_at).to_ms(), 1000.0);
    }

    // Heal the link; keyframes resynchronize the replica within ~2 s even
    // though the delta chain was broken by the gap.
    link->set_params(healthy);
    sim.run_until(sim::Time::seconds(9));
    {
        const auto shown = server_b.display_remote(ParticipantId{1}, sim.now());
        ASSERT_TRUE(shown.has_value());
        EXPECT_LT((sim.now() - shown->captured_at).to_ms(), 100.0);
        // And the pose is coherent again: within the roam radius of the seat.
        const auto seat_index = server_b.seats().seat_of(ParticipantId{1});
        ASSERT_TRUE(seat_index.has_value());
        const math::Vec3 offset = shown->root.pose.position -
                                  server_b.seats().seat(*seat_index).pose.position;
        EXPECT_LT(math::Vec3(offset.x, 0, offset.z).norm(), 1.5);
    }
}

TEST_F(EdgePairFixture, AsymmetricDegradationOnlyAffectsOneDirection) {
    server_a.add_local_participant(ParticipantId{1}, 0);
    server_b.add_local_participant(ParticipantId{2}, 0);
    drive_participant(ParticipantId{1}, 10.0);
    // Drive participant 2 from room B symmetrically.
    for (double t = 0.0; t < 10.0; t += 1.0 / 90.0) {
        sensing::SensorSample s;
        s.participant = ParticipantId{2};
        s.captured_at = sim::Time::seconds(t);
        s.source = sensing::SensorSource::Headset;
        s.pose.position = {std::sin(t), 0.0, 2.0 + std::cos(t)};
        sim.schedule_at(sim::Time::seconds(t), [this, s] {
            server_b.ingest_sample(sensing::SensorSample{s});
        });
    }
    server_a.start();
    server_b.start();
    sim.run_until(sim::Time::seconds(3));

    // Degrade only A->B.
    net::Link* ab = net.link(node_a, node_b);
    net::LinkParams bad = ab->params();
    bad.loss = 1.0;
    ab->set_params(bad);
    sim.run_until(sim::Time::seconds(8));

    const auto b_view = server_b.display_remote(ParticipantId{1}, sim.now());
    const auto a_view = server_a.display_remote(ParticipantId{2}, sim.now());
    ASSERT_TRUE(b_view.has_value());
    ASSERT_TRUE(a_view.has_value());
    EXPECT_GT((sim.now() - b_view->captured_at).to_ms(), 1000.0);  // stale
    EXPECT_LT((sim.now() - a_view->captured_at).to_ms(), 100.0);   // healthy
}

TEST_F(EdgePairFixture, SeatsExhaustionCounted) {
    // Tiny destination room: 1 seat, 3 remote participants.
    EdgeServer tiny{net, net.add_node("tiny", net::Region::Guangzhou),
                    config("tiny", 3), SeatMap::grid(1, 1)};
    net.connect_wan(node_a, tiny.node(), wan);
    server_a.add_peer(tiny.node());
    for (std::uint32_t i = 1; i <= 3; ++i) {
        server_a.add_local_participant(ParticipantId{i});
        drive_participant(ParticipantId{i}, 2.0);
    }
    server_a.start();
    tiny.start();
    sim.run_until(sim::Time::seconds(2));
    EXPECT_GT(tiny.seats_exhausted(), 0u);
    EXPECT_EQ(tiny.seats().vacant_count(), 0u);
}

}  // namespace
}  // namespace mvc::edge
