// Integration tests across the whole stack: the MetaverseClassroom blueprint
// running the paper's unit case (2 MR classrooms + VR cloud classroom),
// checking latency budgets, seat handling, traffic shape, determinism and
// the regional-mesh option.

#include <gtest/gtest.h>

#include "core/classroom.hpp"

namespace mvc::core {
namespace {

ClassroomConfig small_config(std::uint64_t seed = 7) {
    ClassroomConfig config;
    config.seed = seed;
    return config;
}

struct RunResult {
    ClassReport report;
    std::size_t remote_seen_in_room0{0};
};

RunResult run_small_class(const ClassroomConfig& config, double seconds = 20.0,
                          int cwb_students = 3, int gz_students = 2,
                          int remote_students = 2) {
    MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    for (int i = 0; i < cwb_students; ++i) classroom.add_physical_student(0);
    for (int i = 0; i < gz_students; ++i) classroom.add_physical_student(1);
    for (int i = 0; i < remote_students; ++i) {
        classroom.add_remote_student(i % 2 == 0 ? net::Region::Seoul
                                                : net::Region::Boston);
    }
    classroom.start();
    classroom.run_for(sim::Time::seconds(seconds));
    RunResult out;
    out.report = classroom.report();
    out.remote_seen_in_room0 = classroom.edge_server(0).remote_participants().size();
    return out;
}

TEST(MetaverseClassroomTest, DefaultBuildIsTwoCampusesPlusCloud) {
    MetaverseClassroom classroom{small_config()};
    EXPECT_EQ(classroom.room_count(), 2u);
    // Nodes: 2 edges + cloud.
    EXPECT_EQ(classroom.network().node_count(), 3u);
}

TEST(MetaverseClassroomTest, CrossCampusLatencyUnderBudget) {
    const RunResult r = run_small_class(small_config());
    ASSERT_GT(r.report.mr_cross_campus_ms.count(), 0u);
    // The paper's interactivity requirement: under 100 ms; CWB-GZ should be
    // far under.
    EXPECT_LT(r.report.mr_cross_campus_ms.p95(), 100.0);
    EXPECT_LT(r.report.mr_cross_campus_ms.median(), 50.0);
}

TEST(MetaverseClassroomTest, EveryPhysicalParticipantAppearsRemotely) {
    ClassroomConfig config = small_config();
    MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    const auto s1 = classroom.add_physical_student(0);
    const auto s2 = classroom.add_physical_student(1);
    classroom.start();
    classroom.run_for(sim::Time::seconds(10));
    // GZ (room 1) must host avatars of the CWB instructor + student.
    const auto in_gz = classroom.edge_server(1).remote_participants();
    EXPECT_EQ(in_gz.size(), 2u);
    // CWB hosts the GZ student's avatar.
    const auto in_cwb = classroom.edge_server(0).remote_participants();
    ASSERT_EQ(in_cwb.size(), 1u);
    EXPECT_EQ(in_cwb[0], s2);
    // And each remote avatar received a seat.
    EXPECT_TRUE(classroom.edge_server(0).seats().seat_of(s2).has_value());
    EXPECT_TRUE(classroom.edge_server(1).seats().seat_of(s1).has_value());
}

TEST(MetaverseClassroomTest, RemoteVrStudentsVisibleInPhysicalRooms) {
    const RunResult r = run_small_class(small_config(), 20.0, 2, 1, 3);
    // Room 0 sees: 1 GZ student + 3 VR students = 4 remote avatars.
    EXPECT_EQ(r.remote_seen_in_room0, 4u);
}

TEST(MetaverseClassroomTest, VrClientsReceiveClassStreams) {
    ClassroomConfig config = small_config();
    MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    classroom.add_physical_student(0);
    const auto remote = classroom.add_remote_student(net::Region::Seoul);
    classroom.start();
    classroom.run_for(sim::Time::seconds(10));
    EXPECT_GT(classroom.remote_client(remote).updates_received(), 0u);
    // The VR client reconstructs the instructor's avatar.
    EXPECT_GE(classroom.remote_client(remote).visible_peers(), 1u);
}

TEST(MetaverseClassroomTest, AvatarTrafficBoundedAndCounted) {
    const RunResult r = run_small_class(small_config());
    EXPECT_GT(r.report.avatar_bytes, 0u);
    EXPECT_GE(r.report.total_bytes, r.report.avatar_bytes);
    // 8 participants for 20 s: avatar sync must stay far below a single
    // 2.5 Mbit/s video stream's volume (~6.25 MB over the window).
    EXPECT_LT(r.report.avatar_bytes, 6'250'000u);
}

TEST(MetaverseClassroomTest, DeterministicAcrossRunsWithSameSeed) {
    const RunResult a = run_small_class(small_config(123), 10.0);
    const RunResult b = run_small_class(small_config(123), 10.0);
    EXPECT_EQ(a.report.avatar_bytes, b.report.avatar_bytes);
    EXPECT_EQ(a.report.mr_cross_campus_ms.count(), b.report.mr_cross_campus_ms.count());
    EXPECT_DOUBLE_EQ(a.report.mr_cross_campus_ms.mean(),
                     b.report.mr_cross_campus_ms.mean());
}

TEST(MetaverseClassroomTest, DifferentSeedsDiffer) {
    const RunResult a = run_small_class(small_config(123), 10.0);
    const RunResult b = run_small_class(small_config(456), 10.0);
    EXPECT_NE(a.report.avatar_bytes, b.report.avatar_bytes);
}

TEST(MetaverseClassroomTest, RegionalMeshServesRemoteStudents) {
    ClassroomConfig config = small_config();
    config.regional_mesh = true;
    MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    const auto r1 = classroom.add_remote_student(net::Region::Boston);
    const auto r2 = classroom.add_remote_student(net::Region::Boston);
    classroom.start();
    classroom.run_for(sim::Time::seconds(10));
    // Boston pair exchanges through the local relay.
    EXPECT_GT(classroom.remote_client(r1).updates_received(), 0u);
    EXPECT_GT(classroom.remote_client(r2).updates_received(), 0u);
}

TEST(MetaverseClassroomTest, HandRaisesProduceSessionEvents) {
    ClassroomConfig config = small_config();
    MetaverseClassroom classroom{config};
    for (int i = 0; i < 5; ++i) classroom.add_physical_student(0);
    classroom.start();
    classroom.run_for(sim::Time::seconds(120));
    EXPECT_GT(classroom.class_session().event_count(session::InteractionKind::HandRaise),
              0u);
    EXPECT_GT(classroom.report().participation_ratio, 0.0);
}

TEST(MetaverseClassroomTest, GroundTruthOnlyForPhysical) {
    ClassroomConfig config = small_config();
    MetaverseClassroom classroom{config};
    const auto phys = classroom.add_physical_student(0);
    const auto remote = classroom.add_remote_student(net::Region::Seoul);
    classroom.start();
    classroom.run_for(sim::Time::seconds(1));
    EXPECT_TRUE(classroom.ground_truth(phys, classroom.simulator().now()).has_value());
    EXPECT_FALSE(classroom.ground_truth(remote, classroom.simulator().now()).has_value());
}

TEST(MetaverseClassroomTest, DisplayedRemoteTracksGroundTruthMotion) {
    // The retargeted avatar in room 1 must reproduce the *relative* motion
    // of the tracked participant in room 0 (same displacement magnitudes).
    ClassroomConfig config = small_config();
    MetaverseClassroom classroom{config};
    const auto who = classroom.add_physical_student(0);
    classroom.start();
    classroom.run_for(sim::Time::seconds(5));

    auto& room1 = classroom.edge_server(1);
    const auto seat_index = room1.seats().seat_of(who);
    ASSERT_TRUE(seat_index.has_value());
    const math::Vec3 seat_pos = room1.seats().seat(*seat_index).pose.position;

    // Track displayed offsets over 5 more seconds; the seated sway is ~5 cm,
    // so displayed motion must stay within centimetres of the seat.
    double max_offset = 0.0;
    for (int i = 0; i < 50; ++i) {
        classroom.run_for(sim::Time::ms(100));
        const auto shown = room1.display_remote(who, classroom.simulator().now());
        ASSERT_TRUE(shown.has_value());
        max_offset = std::max(max_offset,
                              shown->root.pose.position.distance_to(seat_pos));
    }
    EXPECT_LT(max_offset, 0.4);
    EXPECT_GT(max_offset, 0.001);  // it does move
}

TEST(MetaverseClassroomTest, RoomCapacityEnforced) {
    ClassroomConfig config = small_config();
    config.rooms = {cwb_room_config()};
    config.rooms[0].seat_rows = 1;
    config.rooms[0].seat_cols = 2;
    MetaverseClassroom classroom{config};
    classroom.add_physical_student(0);
    classroom.add_physical_student(0);
    EXPECT_THROW(classroom.add_physical_student(0), std::runtime_error);
}

TEST(MetaverseClassroomTest, StopHaltsTraffic) {
    ClassroomConfig config = small_config();
    MetaverseClassroom classroom{config};
    classroom.add_physical_student(0);
    classroom.add_physical_student(1);
    classroom.start();
    classroom.run_for(sim::Time::seconds(5));
    classroom.stop();
    const std::uint64_t bytes_at_stop = classroom.network().total_bytes_sent();
    classroom.run_for(sim::Time::seconds(5));
    EXPECT_EQ(classroom.network().total_bytes_sent(), bytes_at_stop);
}

TEST(MetaverseClassroomTest, ReportSummaryMentionsKeyFields) {
    const RunResult r = run_small_class(small_config(), 10.0);
    const std::string s = r.report.summary();
    EXPECT_NE(s.find("participants"), std::string::npos);
    EXPECT_NE(s.find("avatar bytes"), std::string::npos);
    EXPECT_NE(s.find("cross-campus"), std::string::npos);
}

TEST(EventBusTest, HandRaisesVisibleAcrossCampusesOnSyncedClocks) {
    ClassroomConfig config = small_config();
    MetaverseClassroom classroom{config};
    for (int i = 0; i < 6; ++i) classroom.add_physical_student(0);
    for (int i = 0; i < 4; ++i) classroom.add_physical_student(1);
    classroom.start();
    classroom.run_for(sim::Time::seconds(120));
    const ClassReport r = classroom.report();
    ASSERT_GT(r.event_visibility_ms.count(), 0u);
    // CWB-GZ one-way is ~4 ms; clock-sync error adds sub-millisecond noise.
    // The injected boot offsets are hundreds of ms, so any gross sync
    // failure would blow this bound immediately.
    EXPECT_GT(r.event_visibility_ms.median(), 0.0);
    EXPECT_LT(r.event_visibility_ms.p95(), 30.0);
    EXPECT_LT(r.clock_sync_error_ms, 5.0);
}

TEST(EventBusTest, DisabledBusRecordsNothing) {
    ClassroomConfig config = small_config();
    config.event_bus = false;
    MetaverseClassroom classroom{config};
    for (int i = 0; i < 4; ++i) classroom.add_physical_student(0);
    classroom.add_physical_student(1);
    classroom.start();
    classroom.run_for(sim::Time::seconds(60));
    const ClassReport r = classroom.report();
    EXPECT_EQ(r.event_visibility_ms.count(), 0u);
    EXPECT_DOUBLE_EQ(r.clock_sync_error_ms, 0.0);
}

TEST(GuestSpeakerTest, SpeakerVisibleEverywhereWithRole) {
    ClassroomConfig config = small_config();
    MetaverseClassroom classroom{config};
    classroom.add_physical_student(0);
    const auto guest = classroom.add_guest_speaker(net::Region::London, "dr-visitor");
    classroom.start();
    classroom.run_for(sim::Time::seconds(10));

    const auto* enrolled = classroom.class_session().find(guest);
    ASSERT_NE(enrolled, nullptr);
    EXPECT_EQ(enrolled->role, session::Role::GuestSpeaker);
    EXPECT_EQ(enrolled->name, "dr-visitor");
    // The guest's avatar takes a seat in both MR rooms.
    EXPECT_TRUE(classroom.edge_server(0).seats().seat_of(guest).has_value());
    EXPECT_TRUE(classroom.edge_server(1).seats().seat_of(guest).has_value());
    // Guests gesture a lot: their stream actually flows.
    EXPECT_GT(classroom.remote_client(guest).updates_sent(), 30u);
}

TEST(MediaBridgeTest, LectureMediaReachesTheOtherCampus) {
    ClassroomConfig config = small_config();
    MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    classroom.add_physical_student(1);
    classroom.enable_lecture_media(0);
    classroom.start();
    classroom.run_for(sim::Time::seconds(15));
    const ClassReport r = classroom.report();
    ASSERT_TRUE(r.media_enabled);
    EXPECT_GT(r.media_bytes, 1'000'000u);  // ~3.5 Mbit/s for 15 s
    // CWB->GZ is a clean short path: the camera arrives at near-encode
    // quality and lip sync stays inside tolerance.
    EXPECT_GT(r.media_worst_camera_db, 30.0);
    EXPECT_LT(std::abs(r.media_av_skew_p95_ms), 45.0);
}

TEST(MediaBridgeTest, VisemesArriveAtDestinations) {
    ClassroomConfig config = small_config();
    MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    classroom.enable_lecture_media(0);
    classroom.start();
    classroom.run_for(sim::Time::seconds(10));
    auto& bridge = classroom.media_bridge();
    ASSERT_EQ(bridge.destination_count(), 1u);  // the GZ room
    (void)classroom.report();  // finishes receiver accounting
    EXPECT_GT(bridge.sink(0).audio_frames, 400u);  // 20 ms frames for 10 s
    EXPECT_EQ(bridge.sink(0).camera.frames_missed, 0u);
}

TEST(MediaBridgeTest, MediaCountsSeparatelyFromAvatarTraffic) {
    ClassroomConfig config = small_config();
    MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    classroom.add_physical_student(1);
    classroom.enable_lecture_media(0);
    classroom.start();
    classroom.run_for(sim::Time::seconds(10));
    const ClassReport r = classroom.report();
    // Avatar bytes stay tiny next to the video bytes (the E2 claim inside
    // the integrated system).
    EXPECT_LT(r.avatar_bytes, r.media_bytes / 5);
    EXPECT_GT(r.total_bytes, r.media_bytes);  // total includes both
}

TEST(MediaBridgeTest, EnableAfterStartThrows) {
    MetaverseClassroom classroom{small_config()};
    classroom.add_instructor(0);
    classroom.start();
    EXPECT_THROW(classroom.enable_lecture_media(0), std::logic_error);
}

TEST(MetaverseClassroomTest, SingleRoomConfigWorks) {
    ClassroomConfig config = small_config();
    config.rooms = {cwb_room_config()};
    MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    const auto remote = classroom.add_remote_student(net::Region::London);
    classroom.start();
    classroom.run_for(sim::Time::seconds(10));
    EXPECT_GT(classroom.remote_client(remote).updates_received(), 0u);
    EXPECT_EQ(classroom.edge_server(0).remote_participants().size(), 1u);
}

}  // namespace
}  // namespace mvc::core
