// Tests for the session layer: participants, behaviour scripts, activity
// scheduling/teams, the content ledger, privacy filtering and session stats.

#include <gtest/gtest.h>

#include "session/behaviour.hpp"
#include "session/session.hpp"

namespace mvc::session {
namespace {

// ---------------------------------------------------------------- behaviour

TEST(SeatedBehaviourTest, StaysNearSeat) {
    sim::Rng rng{1};
    const math::Pose seat{{2, 0, 3}, math::Quat::identity()};
    SeatedBehaviour b{rng, seat};
    for (double t = 0.0; t < 60.0; t += 0.1) {
        const auto gt = b.truth(sim::Time::seconds(t));
        EXPECT_LT(gt.kinematics.pose.position.distance_to(seat.position), 0.3)
            << "t=" << t;
    }
}

TEST(SeatedBehaviourTest, ExpressionChannelsBounded) {
    sim::Rng rng{2};
    SeatedBehaviour b{rng, {}};
    for (double t = 0.0; t < 120.0; t += 0.05) {
        const auto gt = b.truth(sim::Time::seconds(t));
        for (const double e : gt.expression) {
            EXPECT_GE(e, 0.0);
            EXPECT_LE(e, 1.0);
        }
    }
}

TEST(SeatedBehaviourTest, HandRaisesHappen) {
    sim::Rng rng{3};
    SeatedBehaviourParams params;
    params.hand_raise_rate = 10.0;  // frequent for the test
    SeatedBehaviour b{rng, {}, params};
    int raises = 0;
    bool prev = false;
    for (double t = 0.0; t < 300.0; t += 0.1) {
        (void)b.truth(sim::Time::seconds(t));
        const bool raised = b.hand_raised();
        if (raised && !prev) ++raises;
        prev = raised;
    }
    EXPECT_GT(raises, 10);
}

TEST(SeatedBehaviourTest, DifferentSeedsDifferentPhases) {
    const math::Pose seat{};
    SeatedBehaviour a{sim::Rng{10}, seat};
    SeatedBehaviour b{sim::Rng{11}, seat};
    const auto ga = a.truth(sim::Time::seconds(1.0));
    const auto gb = b.truth(sim::Time::seconds(1.0));
    EXPECT_GT(ga.kinematics.pose.position.distance_to(gb.kinematics.pose.position), 1e-6);
}

TEST(InstructorBehaviourTest, PacesWithinTeachingArea) {
    sim::Rng rng{4};
    const math::Pose lectern{{0, 0, 0.5}, math::Quat::identity()};
    InstructorBehaviourParams params;
    params.pace_extent_m = 2.0;
    InstructorBehaviour b{rng, lectern, params};
    for (double t = 0.0; t < 120.0; t += 0.2) {
        const auto gt = b.truth(sim::Time::seconds(t));
        EXPECT_LT(std::abs(gt.kinematics.pose.position.x), 2.1);
        EXPECT_LT(std::abs(gt.kinematics.pose.position.z - 0.5), 1.0);
    }
}

TEST(InstructorBehaviourTest, SpeakingRatioRoughlyRespected) {
    sim::Rng rng{5};
    InstructorBehaviourParams params;
    params.speaking_ratio = 0.7;
    InstructorBehaviour b{rng, {}, params};
    int speaking = 0;
    int total = 0;
    for (double t = 0.0; t < 600.0; t += 0.5) {
        ++total;
        speaking += b.speaking(sim::Time::seconds(t)) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(speaking) / total, 0.7, 0.1);
}

TEST(InstructorBehaviourTest, SpeakingDrivesMouthChannels) {
    sim::Rng rng{6};
    InstructorBehaviour b{rng, {}};
    bool saw_mouth_active = false;
    for (double t = 0.0; t < 60.0; t += 0.1) {
        const auto gt = b.truth(sim::Time::seconds(t));
        if (b.speaking(sim::Time::seconds(t)) && gt.expression[1] > 0.5) {
            saw_mouth_active = true;
        }
    }
    EXPECT_TRUE(saw_mouth_active);
}

// ----------------------------------------------------------------- activity

TEST(ActivityTest, ScheduleBlocksAreContiguous) {
    ActivitySchedule sched;
    sched.append(ActivityKind::Lecture, sim::Time::seconds(600));
    sched.append(ActivityKind::Qa, sim::Time::seconds(300));
    sched.append(ActivityKind::GamifiedBreakout, sim::Time::seconds(900), 4);
    EXPECT_EQ(sched.total_duration(), sim::Time::seconds(1800));
    EXPECT_EQ(sched.active_at(sim::Time::seconds(100))->kind, ActivityKind::Lecture);
    EXPECT_EQ(sched.active_at(sim::Time::seconds(700))->kind, ActivityKind::Qa);
    EXPECT_EQ(sched.active_at(sim::Time::seconds(1000))->kind,
              ActivityKind::GamifiedBreakout);
    EXPECT_EQ(sched.active_at(sim::Time::seconds(2000)), nullptr);
}

TEST(ActivityTest, BoundaryBelongsToNextBlock) {
    ActivitySchedule sched;
    sched.append(ActivityKind::Lecture, sim::Time::seconds(10));
    sched.append(ActivityKind::Qa, sim::Time::seconds(10));
    EXPECT_EQ(sched.active_at(sim::Time::seconds(10))->kind, ActivityKind::Qa);
}

TEST(ActivityTest, ZeroDurationRejected) {
    ActivitySchedule sched;
    EXPECT_THROW(sched.append(ActivityKind::Lecture, sim::Time::zero()),
                 std::invalid_argument);
}

TEST(ActivityTest, TraitsDifferentiateActivities) {
    EXPECT_GT(traits_of(ActivityKind::Lecture).instructor_speaking,
              traits_of(ActivityKind::GamifiedBreakout).instructor_speaking);
    EXPECT_GT(traits_of(ActivityKind::GamifiedBreakout).student_speaking,
              traits_of(ActivityKind::Lecture).student_speaking);
    EXPECT_TRUE(traits_of(ActivityKind::VirtualLab).students_move);
    EXPECT_FALSE(traits_of(ActivityKind::Lecture).students_move);
}

TEST(ActivityTest, TeamsRoundRobinMixesIds) {
    std::vector<ParticipantId> everyone;
    for (std::uint32_t i = 1; i <= 10; ++i) everyone.push_back(ParticipantId{i});
    const auto teams = ActivitySchedule::form_teams(everyone, 4);
    ASSERT_EQ(teams.size(), 3u);  // ceil(10/4)
    // Everyone appears exactly once.
    std::set<ParticipantId> seen;
    for (const auto& team : teams) {
        for (const ParticipantId p : team) EXPECT_TRUE(seen.insert(p).second);
    }
    EXPECT_EQ(seen.size(), 10u);
    // Round-robin deal: consecutive ids land in different teams.
    EXPECT_NE(teams[0][0], teams[0][1]);
    EXPECT_EQ(teams[0][0], ParticipantId{1});
    EXPECT_EQ(teams[1][0], ParticipantId{2});
}

TEST(ActivityTest, TeamSizeZeroIsWholeClass) {
    std::vector<ParticipantId> everyone{ParticipantId{1}, ParticipantId{2}};
    const auto teams = ActivitySchedule::form_teams(everyone, 0);
    ASSERT_EQ(teams.size(), 1u);
    EXPECT_EQ(teams[0].size(), 2u);
    EXPECT_TRUE(ActivitySchedule::form_teams({}, 4).empty());
}

// ------------------------------------------------------------------ content

ContentItem item_by(std::uint32_t creator, ContentKind kind) {
    ContentItem item;
    item.creator = ParticipantId{creator};
    item.kind = kind;
    item.title = "x";
    return item;
}

TEST(ContentLedgerTest, CreditsAccrueByKind) {
    ContentLedger ledger;
    ledger.add(item_by(1, ContentKind::Model3d));
    ledger.add(item_by(1, ContentKind::Annotation));
    ledger.add(item_by(2, ContentKind::Slide));
    EXPECT_DOUBLE_EQ(ledger.credits_of(ParticipantId{1}), 5.5);
    EXPECT_DOUBLE_EQ(ledger.credits_of(ParticipantId{2}), 2.0);
    EXPECT_DOUBLE_EQ(ledger.credits_of(ParticipantId{3}), 0.0);
}

TEST(ContentLedgerTest, LeaderboardSorted) {
    ContentLedger ledger;
    ledger.add(item_by(1, ContentKind::Annotation));
    ledger.add(item_by(2, ContentKind::Model3d));
    ledger.add(item_by(3, ContentKind::Slide));
    const auto board = ledger.leaderboard();
    ASSERT_EQ(board.size(), 3u);
    EXPECT_EQ(board[0].first, ParticipantId{2});
    EXPECT_EQ(board[1].first, ParticipantId{3});
    EXPECT_EQ(board[2].first, ParticipantId{1});
}

TEST(ContentLedgerTest, IdsAssignedAndFindable) {
    ContentLedger ledger;
    const ContentId id = ledger.add(item_by(1, ContentKind::Slide));
    EXPECT_TRUE(id.valid());
    ASSERT_NE(ledger.find(id), nullptr);
    EXPECT_EQ(ledger.find(id)->creator, ParticipantId{1});
    EXPECT_EQ(ledger.find(ContentId{999}), nullptr);
}

TEST(PrivacyFilterTest, PersonAnchorNeedsConsent) {
    PrivacyFilter filter;
    ContentItem overlay = item_by(1, ContentKind::Annotation);
    overlay.anchored_to_person = true;
    overlay.anchor_person = ParticipantId{2};
    EXPECT_EQ(filter.evaluate(overlay).verdict, PrivacyVerdict::RequiresConsent);
    overlay.anchor_consent = true;
    EXPECT_EQ(filter.evaluate(overlay).verdict, PrivacyVerdict::Allowed);
    EXPECT_EQ(filter.evaluated(), 2u);
    EXPECT_EQ(filter.blocked(), 1u);
}

TEST(PrivacyFilterTest, ClassWideRecordingNeedsApproval) {
    PrivacyFilter filter;
    ContentItem rec = item_by(1, ContentKind::Recording);
    rec.scope = AudienceScope::Class;
    EXPECT_EQ(filter.evaluate(rec, false).verdict, PrivacyVerdict::Blocked);
    EXPECT_EQ(filter.evaluate(rec, true).verdict, PrivacyVerdict::Allowed);
    rec.scope = AudienceScope::Team;  // team-scoped recording fine
    EXPECT_EQ(filter.evaluate(rec, false).verdict, PrivacyVerdict::Allowed);
}

TEST(PrivacyFilterTest, PolicyCanBeRelaxed) {
    PrivacyPolicy policy;
    policy.person_anchors_need_consent = false;
    PrivacyFilter filter{policy};
    ContentItem overlay = item_by(1, ContentKind::Annotation);
    overlay.anchored_to_person = true;
    EXPECT_EQ(filter.evaluate(overlay).verdict, PrivacyVerdict::Allowed);
}

// ------------------------------------------------------------------ session

TEST(ClassSessionTest, EnrollAssignsSequentialIds) {
    ClassSession cs{"COMP0000"};
    Participant a;
    a.role = Role::Instructor;
    Participant b;
    const ParticipantId ia = cs.enroll(std::move(a));
    const ParticipantId ib = cs.enroll(std::move(b));
    EXPECT_TRUE(ia.valid());
    EXPECT_NE(ia, ib);
    EXPECT_EQ(cs.roster().size(), 2u);
    ASSERT_NE(cs.find(ia), nullptr);
    EXPECT_EQ(cs.find(ia)->role, Role::Instructor);
    EXPECT_EQ(cs.find(ParticipantId{99}), nullptr);
}

TEST(ClassSessionTest, CountsByAttendance) {
    ClassSession cs{"X"};
    Participant phys;
    phys.attendance = PhysicalAttendance{ClassroomId{1}, 0};
    Participant phys2;
    phys2.attendance = PhysicalAttendance{ClassroomId{2}, 0};
    Participant remote;
    remote.attendance = RemoteAttendance{net::Region::Boston};
    cs.enroll(std::move(phys));
    cs.enroll(std::move(phys2));
    cs.enroll(std::move(remote));
    EXPECT_EQ(cs.physical_count(ClassroomId{1}), 1u);
    EXPECT_EQ(cs.physical_count(ClassroomId{2}), 1u);
    EXPECT_EQ(cs.remote_count(), 1u);
}

TEST(ClassSessionTest, EventsTaggedWithActivity) {
    ClassSession cs{"X"};
    const ParticipantId p = cs.enroll(Participant{});
    const ActivityId lecture = cs.schedule().append(ActivityKind::Lecture,
                                                    sim::Time::seconds(100));
    cs.record_event(sim::Time::seconds(50), p, InteractionKind::Question);
    cs.record_event(sim::Time::seconds(150), p, InteractionKind::Answer);  // after end
    ASSERT_EQ(cs.events().size(), 2u);
    EXPECT_EQ(cs.events()[0].during, std::optional<ActivityId>{lecture});
    EXPECT_FALSE(cs.events()[1].during.has_value());
    EXPECT_EQ(cs.event_count(InteractionKind::Question), 1u);
}

TEST(ClassSessionTest, ParticipationRatio) {
    ClassSession cs{"X"};
    const ParticipantId a = cs.enroll(Participant{});
    cs.enroll(Participant{});
    cs.enroll(Participant{});
    EXPECT_DOUBLE_EQ(cs.participation_ratio(), 0.0);
    cs.record_event(sim::Time::zero(), a, InteractionKind::HandRaise);
    cs.record_event(sim::Time::zero(), a, InteractionKind::Question);
    EXPECT_NEAR(cs.participation_ratio(), 1.0 / 3.0, 1e-9);
}

TEST(ClassSessionTest, ContributeScreensThroughPrivacy) {
    ClassSession cs{"X"};
    const ParticipantId p = cs.enroll(Participant{});
    ContentItem fine = item_by(p.value(), ContentKind::Slide);
    EXPECT_TRUE(cs.contribute(fine).has_value());
    ContentItem shady = item_by(p.value(), ContentKind::Annotation);
    shady.anchored_to_person = true;
    EXPECT_FALSE(cs.contribute(shady).has_value());
    EXPECT_EQ(cs.ledger().size(), 1u);
}

TEST(ClassSessionTest, RoleQueries) {
    ClassSession cs{"X"};
    Participant instructor;
    instructor.role = Role::Instructor;
    Participant student;
    const ParticipantId ii = cs.enroll(std::move(instructor));
    cs.enroll(std::move(student));
    const auto instructors = cs.ids_with_role(Role::Instructor);
    ASSERT_EQ(instructors.size(), 1u);
    EXPECT_EQ(instructors[0], ii);
    EXPECT_EQ(cs.ids_with_role(Role::Student).size(), 1u);
    EXPECT_TRUE(cs.ids_with_role(Role::GuestSpeaker).empty());
}

TEST(RoleTest, NamesDistinct) {
    std::set<std::string_view> names;
    for (const Role r : {Role::Student, Role::Instructor, Role::TeachingAssistant,
                         Role::GuestSpeaker, Role::Auditor}) {
        names.insert(role_name(r));
    }
    EXPECT_EQ(names.size(), 5u);
}

TEST(ActivityNameTest, NamesDistinct) {
    std::set<std::string_view> names;
    for (const ActivityKind k :
         {ActivityKind::Lecture, ActivityKind::Qa, ActivityKind::GamifiedBreakout,
          ActivityKind::LearnerPresentation, ActivityKind::VirtualLab}) {
        names.insert(activity_name(k));
    }
    EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace mvc::session
