// Crash-recovery subsystem tests: the checksummed checkpoint codec (known
// CRC vectors, seeded-random round-trip fuzzing, corruption detection), the
// durable CheckpointStore ring, the periodic Checkpointer, the hysteresis
// AdmissionGate, reconnect resync over the transport, and the end-to-end
// crash/restore + overload paths through EdgeServer and MetaverseClassroom.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "avatar/codec.hpp"
#include "core/classroom.hpp"
#include "edge/edge_server.hpp"
#include "edge/seats.hpp"
#include "fault/fault_plan.hpp"
#include "recovery/admission.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/checkpointer.hpp"
#include "recovery/resync.hpp"
#include "recovery/store.hpp"
#include "sim/rng.hpp"
#include "sync/wire.hpp"

namespace mvc::recovery {
namespace {

// ---------------------------------------------------------- checkpoint codec

TEST(CheckpointCodecTest, Crc32MatchesKnownVector) {
    // The canonical IEEE 802.3 check value for "123456789".
    const std::string s = "123456789";
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    EXPECT_EQ(crc32({p, s.size()}), 0xCBF43926u);
    EXPECT_EQ(crc32({p, std::size_t{0}}), 0x00000000u);
}

TEST(CheckpointCodecTest, EmptyCheckpointRoundTrips) {
    ClassroomCheckpoint cp;
    cp.node = "edge-cwb";
    cp.sequence = 7;
    cp.taken_at_ns = sim::Time::seconds(12.5).nanos();
    const auto bytes = encode_checkpoint(cp);
    const ClassroomCheckpoint back = decode_checkpoint(bytes);
    EXPECT_EQ(back, cp);
}

math::Pose random_pose(sim::Rng& rng) {
    math::Pose p;
    p.position = {rng.uniform(-10, 10), rng.uniform(0, 3), rng.uniform(-10, 10)};
    // Unnormalised quaternions are fine: the codec stores raw components.
    p.orientation = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1),
                     rng.uniform(-1, 1)};
    return p;
}

std::string random_name(sim::Rng& rng) {
    static const char* kNames[] = {"ada", "bo", "chen", "dara", "", "a-very-long-name"};
    return kNames[rng.index(6)];
}

ClassroomCheckpoint random_checkpoint(sim::Rng& rng) {
    ClassroomCheckpoint cp;
    cp.node = "edge-" + random_name(rng);
    cp.sequence = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    cp.taken_at_ns = rng.uniform_int(0, 60'000'000'000);
    for (std::int64_t i = 0, n = rng.uniform_int(0, 5); i < n; ++i) {
        cp.seats.push_back(SeatRecord{
            static_cast<std::uint32_t>(rng.uniform_int(0, 40)),
            ParticipantId{static_cast<std::uint32_t>(rng.uniform_int(1, 99))}});
    }
    for (std::int64_t i = 0, n = rng.uniform_int(0, 3); i < n; ++i) {
        cp.reservations.push_back(ReservationRecord{
            ParticipantId{static_cast<std::uint32_t>(rng.uniform_int(1, 99))},
            static_cast<std::uint32_t>(rng.uniform_int(0, 40))});
    }
    for (std::int64_t i = 0, n = rng.uniform_int(0, 6); i < n; ++i) {
        MemberRecord m;
        m.id = ParticipantId{static_cast<std::uint32_t>(rng.uniform_int(1, 99))};
        m.name = random_name(rng);
        m.role = static_cast<std::uint8_t>(rng.uniform_int(0, 4));
        m.device = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
        m.physical = rng.chance(0.5);
        if (m.physical) {
            m.room = ClassroomId{static_cast<std::uint32_t>(rng.uniform_int(1, 3))};
            m.seat_index = static_cast<std::uint32_t>(rng.uniform_int(0, 40));
        } else {
            m.region = static_cast<std::uint8_t>(rng.uniform_int(0, 5));
        }
        cp.members.push_back(std::move(m));
    }
    for (std::int64_t i = 0, n = rng.uniform_int(0, 4); i < n; ++i) {
        ContentRecord c;
        c.id = ContentId{static_cast<std::uint32_t>(rng.uniform_int(1, 500))};
        c.creator = ParticipantId{static_cast<std::uint32_t>(rng.uniform_int(1, 99))};
        c.kind = static_cast<std::uint8_t>(rng.uniform_int(0, 4));
        c.scope = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
        c.title = "item-" + std::to_string(rng.uniform_int(0, 1000));
        c.size_bytes = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
        c.created_at_ns = rng.uniform_int(0, 60'000'000'000);
        c.anchored_to_person = rng.chance(0.3);
        c.anchor_person =
            ParticipantId{static_cast<std::uint32_t>(rng.uniform_int(0, 99))};
        c.anchor_consent = rng.chance(0.5);
        cp.content.push_back(std::move(c));
    }
    for (std::int64_t i = 0, n = rng.uniform_int(0, 4); i < n; ++i) {
        ReplicaRecord r;
        r.participant = ParticipantId{static_cast<std::uint32_t>(rng.uniform_int(1, 99))};
        r.source_room = ClassroomId{static_cast<std::uint32_t>(rng.uniform_int(1, 3))};
        r.anchored = rng.chance(0.7);
        r.has_seat = r.anchored;
        r.seat_index = static_cast<std::uint32_t>(rng.uniform_int(0, 40));
        r.source_anchor = random_pose(rng);
        r.seat_pose = random_pose(rng);
        r.captured_at_ns = rng.uniform_int(0, 60'000'000'000);
        for (std::int64_t b = 0, nb = rng.uniform_int(0, 80); b < nb; ++b) {
            r.reference.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
        }
        cp.replicas.push_back(std::move(r));
    }
    return cp;
}

TEST(CheckpointCodecTest, FuzzRoundTripSeededRandomStates) {
    sim::Rng rng{2024};
    for (int trial = 0; trial < 50; ++trial) {
        const ClassroomCheckpoint cp = random_checkpoint(rng);
        const auto bytes = encode_checkpoint(cp);
        const ClassroomCheckpoint back = decode_checkpoint(bytes);
        EXPECT_EQ(back, cp) << "trial " << trial;
    }
}

TEST(CheckpointCodecTest, EverySingleByteFlipIsDetected) {
    sim::Rng rng{7};
    const ClassroomCheckpoint cp = random_checkpoint(rng);
    const auto bytes = encode_checkpoint(cp);
    ASSERT_GT(bytes.size(), 14u);
    // Flip every byte in turn (body, header, and the CRC itself): the
    // checksum — or for CRC-field flips, the mismatch against the body —
    // must reject each one.
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        auto corrupt = bytes;
        corrupt[i] ^= 0x40;
        EXPECT_THROW(decode_checkpoint(corrupt), CheckpointError) << "byte " << i;
    }
}

TEST(CheckpointCodecTest, SingleBitFlipsDetected) {
    sim::Rng rng{8};
    const ClassroomCheckpoint cp = random_checkpoint(rng);
    const auto bytes = encode_checkpoint(cp);
    for (int trial = 0; trial < 64; ++trial) {
        auto corrupt = bytes;
        const std::size_t byte = rng.index(corrupt.size());
        corrupt[byte] ^= static_cast<std::uint8_t>(1u << rng.index(8));
        EXPECT_THROW(decode_checkpoint(corrupt), CheckpointError);
    }
}

TEST(CheckpointCodecTest, TruncationAndTrailingBytesRejected) {
    ClassroomCheckpoint cp;
    cp.node = "edge";
    const auto bytes = encode_checkpoint(cp);
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + static_cast<long>(keep));
        EXPECT_THROW(decode_checkpoint(prefix), CheckpointError) << "keep " << keep;
    }
    auto padded = bytes;
    padded.push_back(0);
    EXPECT_THROW(decode_checkpoint(padded), CheckpointError);
}

// Patch the trailing CRC so only the targeted header corruption is visible.
std::vector<std::uint8_t> with_fixed_crc(std::vector<std::uint8_t> bytes) {
    const std::uint32_t c = crc32({bytes.data(), bytes.size() - 4});
    for (int i = 0; i < 4; ++i) {
        bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(c >> (8 * i));
    }
    return bytes;
}

TEST(CheckpointCodecTest, BadMagicAndUnknownVersionRejected) {
    ClassroomCheckpoint cp;
    cp.node = "edge";
    const auto bytes = encode_checkpoint(cp);

    auto bad_magic = bytes;
    bad_magic[0] ^= 0xFF;
    EXPECT_THROW(decode_checkpoint(with_fixed_crc(bad_magic)), CheckpointError);

    auto bad_version = bytes;
    bad_version[4] = 0x7F;  // version is the little-endian u16 after the magic
    EXPECT_THROW(decode_checkpoint(with_fixed_crc(bad_version)), CheckpointError);
}

// ------------------------------------------------------------------- store

TEST(CheckpointStoreTest, RingRetainsNewestPerOwner) {
    CheckpointStore store{3};
    for (std::uint8_t i = 1; i <= 5; ++i) {
        store.put("edge-a", std::vector<std::uint8_t>{i, i});
    }
    store.put("edge-b", std::vector<std::uint8_t>{9});
    EXPECT_EQ(store.count("edge-a"), 3u);
    EXPECT_EQ(store.count("edge-b"), 1u);
    EXPECT_EQ(store.count("absent"), 0u);
    EXPECT_EQ(store.total_puts(), 6u);
    EXPECT_EQ(store.bytes_stored("edge-a"), 6u);
    const auto latest = store.latest("edge-a");
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(*latest, (std::vector<std::uint8_t>{5, 5}));
    EXPECT_FALSE(store.latest("absent").has_value());
}

// -------------------------------------------------------------- checkpointer

TEST(CheckpointerTest, PeriodicCadencePauseAndResume) {
    sim::Simulator sim{3};
    sim::MetricsRecorder metrics;
    CheckpointStore store{3};
    RecoveryParams params;
    params.enabled = true;
    params.checkpoint_interval = sim::Time::seconds(2.0);
    params.store = &store;
    int captures = 0;
    Checkpointer ck{sim, metrics, params, "edge-a", [&](ClassroomCheckpoint& cp) {
                        ++captures;
                        cp.seats.push_back(SeatRecord{1, ParticipantId{2}});
                    }};
    ck.start();
    sim.run_until(sim::Time::seconds(10.0));
    EXPECT_EQ(ck.taken(), 5u);  // t = 2,4,6,8,10
    EXPECT_EQ(captures, 5);
    EXPECT_EQ(store.count("edge-a"), 3u);  // ring kept the newest three

    ck.pause();  // crash: a down process takes no checkpoints
    sim.run_until(sim::Time::seconds(20.0));
    EXPECT_EQ(ck.taken(), 5u);

    ck.resume();
    sim.run_until(sim::Time::seconds(24.0));
    EXPECT_EQ(ck.taken(), 7u);

    // Checkpoints carry monotonic sequence numbers and decode cleanly.
    const ClassroomCheckpoint cp = decode_checkpoint(*store.latest("edge-a"));
    EXPECT_EQ(cp.sequence, 7u);
    EXPECT_EQ(cp.node, "edge-a");
    EXPECT_EQ(cp.taken_at(), sim::Time::seconds(24.0));
    ASSERT_EQ(cp.seats.size(), 1u);
}

// ----------------------------------------------------------- admission gate

TEST(AdmissionGateTest, HysteresisEnterHoldExit) {
    AdmissionParams p;
    p.enabled = true;
    p.queue_capacity = 64;
    p.shed_enter_depth = 32;
    p.shed_exit_depth = 8;
    p.hold = sim::Time::ms(100);
    AdmissionGate gate{p};

    // Above enter but not held long enough: no flip.
    EXPECT_FALSE(gate.update(40, sim::Time::ms(0)));
    EXPECT_FALSE(gate.update(40, sim::Time::ms(50)));
    EXPECT_FALSE(gate.shedding());
    // Hold elapsed: start shedding.
    EXPECT_TRUE(gate.update(40, sim::Time::ms(100)));
    EXPECT_TRUE(gate.shedding());
    // Mid-band depth keeps the state (hysteresis gap).
    EXPECT_FALSE(gate.update(20, sim::Time::ms(150)));
    EXPECT_TRUE(gate.shedding());
    // Below exit, but the hold must elapse down there too.
    EXPECT_FALSE(gate.update(4, sim::Time::ms(200)));
    EXPECT_TRUE(gate.update(4, sim::Time::ms(300)));
    EXPECT_FALSE(gate.shedding());
    EXPECT_EQ(gate.transitions(), 2u);
}

TEST(AdmissionGateTest, OscillationAcrossMidBandNeverFlaps) {
    AdmissionParams p;
    p.enabled = true;
    p.shed_enter_depth = 32;
    p.shed_exit_depth = 8;
    p.hold = sim::Time::ms(100);
    AdmissionGate gate{p};
    // Depth bouncing between the thresholds resets both hold clocks.
    for (int t = 0; t < 2000; t += 10) {
        gate.update(t % 20 == 0 ? 31 : 9, sim::Time::ms(t));
    }
    EXPECT_EQ(gate.transitions(), 0u);
    EXPECT_FALSE(gate.shedding());
}

// ------------------------------------------------------------------ resync

struct ResyncRig {
    sim::Simulator sim{5};
    net::Network net{sim};
    net::NodeId a = net.add_node("a", net::Region::HongKong);
    net::NodeId b = net.add_node("b", net::Region::Guangzhou);
    net::PacketDemux demux_a{net, a};
    net::PacketDemux demux_b{net, b};

    ResyncRig() {
        net::WanTopology wan;
        net.connect_wan(a, b, wan);
    }
};

std::vector<ResyncEntry> two_entries() {
    std::vector<ResyncEntry> entries(2);
    entries[0].participant = ParticipantId{1};
    entries[0].source_room = ClassroomId{1};
    entries[0].bytes = {1, 2, 3};
    entries[1].participant = ParticipantId{2};
    entries[1].source_room = ClassroomId{1};
    entries[1].bytes = {4, 5};
    return entries;
}

TEST(ResyncTest, OneRoundTripDeliversSnapshotAndForcesKeyframes) {
    ResyncRig rig;
    int keyframes_forced = 0;
    ResyncResponder responder{rig.net, rig.demux_a, two_entries,
                              [&] { ++keyframes_forced; }};
    std::vector<ResyncEntry> applied;
    ResyncClient client{rig.net, rig.demux_b,
                        [&](const ResyncSnapshot& snap, net::NodeId from) {
                            EXPECT_EQ(from, rig.a);
                            applied = snap.entries;
                        }};
    client.request(rig.a);
    rig.sim.run_until(sim::Time::seconds(1.0));

    EXPECT_EQ(responder.served(), 1u);
    EXPECT_EQ(keyframes_forced, 1);
    EXPECT_EQ(client.completed(), 1u);
    EXPECT_EQ(client.outstanding(), 0u);
    EXPECT_GT(client.last_rtt_ms(), 0.0);
    ASSERT_EQ(applied.size(), 2u);
    EXPECT_EQ(applied[0].participant, ParticipantId{1});
    EXPECT_EQ(applied[1].bytes, (std::vector<std::uint8_t>{4, 5}));
}

TEST(ResyncTest, RetriesThroughOutageAndIgnoresStaleNonces) {
    ResyncRig rig;
    ResyncResponder responder{rig.net, rig.demux_a, two_entries};
    int applies = 0;
    ResyncClient client{rig.net, rig.demux_b,
                        [&](const ResyncSnapshot&, net::NodeId) { ++applies; }};
    rig.net.set_link_up(rig.a, rig.b, false);
    client.request(rig.a);
    rig.sim.run_until(sim::Time::ms(300));
    EXPECT_EQ(client.completed(), 0u);
    EXPECT_EQ(client.outstanding(), 1u);
    rig.net.set_link_up(rig.a, rig.b, true);
    rig.sim.run_until(sim::Time::seconds(2.0));
    EXPECT_EQ(client.completed(), 1u);
    EXPECT_EQ(applies, 1);
    EXPECT_EQ(client.abandoned(), 0u);
}

TEST(ResyncTest, GivesUpAfterMaxAttempts) {
    ResyncRig rig;
    ResyncClientParams params;
    params.retry_interval = sim::Time::ms(100);
    params.max_attempts = 3;
    ResyncClient client{rig.net, rig.demux_b,
                        [](const ResyncSnapshot&, net::NodeId) {}, params};
    rig.net.set_link_up(rig.a, rig.b, false);
    client.request(rig.a);
    rig.sim.run_until(sim::Time::seconds(5.0));
    EXPECT_EQ(client.completed(), 0u);
    EXPECT_EQ(client.abandoned(), 1u);
    EXPECT_EQ(client.outstanding(), 0u);
}

// ----------------------------------------------------- node observer (net)

TEST(NodeObserverTest, FiresOnActualTransitionsInRegistrationOrder) {
    sim::Simulator sim{9};
    net::Network net{sim};
    const net::NodeId n = net.add_node("x", net::Region::HongKong);
    std::vector<int> order;
    net.observe_node(n, [&](net::NodeId, bool up) { order.push_back(up ? 1 : 0); });
    net.observe_node(n, [&](net::NodeId, bool up) { order.push_back(up ? 11 : 10); });
    net.set_node_up(n, true);  // already up: no-op
    EXPECT_TRUE(order.empty());
    net.set_node_up(n, false);
    net.set_node_up(n, false);  // unchanged: no-op
    net.set_node_up(n, true);
    EXPECT_EQ(order, (std::vector<int>{0, 10, 1, 11}));
}

// --------------------------------------------- end-to-end crash + restore

core::ClassroomConfig crashy_config(bool checkpoints) {
    core::ClassroomConfig config;
    config.seed = 31;
    config.heartbeat.enabled = true;
    config.heartbeat.interval = sim::Time::ms(50);
    config.heartbeat.timeout = sim::Time::ms(200);
    config.recovery.enabled = true;
    config.recovery.checkpoints = checkpoints;
    config.recovery.resync = checkpoints;
    config.recovery.checkpoint_interval = sim::Time::seconds(1.0);
    return config;
}

TEST(CrashRecoveryIntegrationTest, EdgeRestartRestoresClassroomState) {
    core::MetaverseClassroom classroom{crashy_config(/*checkpoints=*/true)};
    const ParticipantId cwb1 = classroom.add_physical_student(0);
    const ParticipantId cwb2 = classroom.add_physical_student(0);
    classroom.add_physical_student(1);

    session::ContentItem item;
    item.creator = cwb1;
    item.kind = session::ContentKind::Model3d;
    item.title = "turbine-model";
    classroom.class_session().contribute(std::move(item));
    classroom.start();

    auto& edge_gz = classroom.edge_server(1);
    fault::FaultPlan plan{classroom.network()};
    plan.node_outage(edge_gz.node(), sim::Time::seconds(5.0), sim::Time::seconds(2.0));
    plan.arm();

    classroom.run_for(sim::Time::seconds(5.5));
    // Mid-crash: the replicated view at GZ is wiped.
    EXPECT_EQ(edge_gz.remote_participants().size(), 0u);
    EXPECT_EQ(edge_gz.remote_update_count(cwb1), 0u);

    classroom.run_for(sim::Time::seconds(6.5));  // to t=12s

    EXPECT_EQ(edge_gz.restores(), 1u);
    EXPECT_EQ(edge_gz.cold_starts(), 0u);
    EXPECT_GT(edge_gz.last_recovery_gap_ms(), 0.0);
    ASSERT_TRUE(edge_gz.last_restored().has_value());
    const ClassroomCheckpoint& cp = *edge_gz.last_restored();

    // Membership and content restored exactly: rebuild a session from the
    // checkpoint and compare against the live one.
    const session::ClassSession restored =
        session::ClassSession::restore(cp, "restored");
    const auto& live = classroom.class_session();
    ASSERT_EQ(restored.roster().size(), live.roster().size());
    for (std::size_t i = 0; i < live.roster().size(); ++i) {
        EXPECT_EQ(restored.roster()[i].id, live.roster()[i].id);
        EXPECT_EQ(restored.roster()[i].name, live.roster()[i].name);
        EXPECT_EQ(restored.roster()[i].role, live.roster()[i].role);
    }
    ASSERT_EQ(restored.ledger().size(), live.ledger().size());
    EXPECT_EQ(restored.ledger().items()[0].title, "turbine-model");
    EXPECT_DOUBLE_EQ(restored.ledger().credits_of(cwb1),
                     live.ledger().credits_of(cwb1));

    // Replicas reconverged: both CWB students are seated and streaming again.
    EXPECT_EQ(cp.replicas.size(), 2u);
    EXPECT_TRUE(edge_gz.seats().seat_of(cwb1).has_value());
    EXPECT_TRUE(edge_gz.seats().seat_of(cwb2).has_value());
    EXPECT_GT(edge_gz.remote_update_count(cwb1), 1u);
    EXPECT_TRUE(edge_gz.display_remote(cwb1, classroom.simulator().now()).has_value());
    // The resync round trip completed against at least one live peer.
    ASSERT_NE(edge_gz.resync_client(), nullptr);
    EXPECT_GT(edge_gz.resync_client()->completed(), 0u);
}

TEST(CrashRecoveryIntegrationTest, WithoutCheckpointsRestartIsCold) {
    core::MetaverseClassroom classroom{crashy_config(/*checkpoints=*/false)};
    const ParticipantId cwb1 = classroom.add_physical_student(0);
    classroom.add_physical_student(1);
    classroom.start();

    auto& edge_gz = classroom.edge_server(1);
    fault::FaultPlan plan{classroom.network()};
    plan.node_outage(edge_gz.node(), sim::Time::seconds(5.0), sim::Time::seconds(2.0));
    plan.arm();
    classroom.run_for(sim::Time::seconds(12.0));

    EXPECT_EQ(edge_gz.restores(), 0u);
    EXPECT_EQ(edge_gz.cold_starts(), 1u);
    EXPECT_FALSE(edge_gz.last_restored().has_value());
    // The stream still reconverges — via the publishers' periodic keyframes
    // and the heartbeat failback keyframe — just without restored state.
    EXPECT_GT(edge_gz.remote_update_count(cwb1), 0u);
}

// ------------------------------------------------------ overload admission

struct OverloadRig {
    sim::Simulator sim{41};
    net::Network net{sim};
    net::NodeId src = net.add_node("src", net::Region::HongKong);
    net::NodeId dst = net.add_node("dst", net::Region::Guangzhou);
    avatar::AvatarCodec codec{avatar::CodecBounds{}};
    edge::EdgeServer server;

    explicit OverloadRig(edge::EdgeServerConfig config)
        : server(net, dst, std::move(config), edge::SeatMap::grid(6, 6)) {
        net::WanTopology wan;
        net.connect_wan(src, dst, wan);
        server.start();
    }

    void send_update(std::uint32_t id) {
        const double t = sim.now().to_seconds();
        avatar::AvatarState s;
        s.participant = ParticipantId{id};
        s.root.pose.position = {std::cos(t + id), 0.0, 2.0 + std::sin(t + id)};
        s.captured_at = sim.now();
        sync::AvatarWire wire;
        wire.participant = s.participant;
        wire.source_room = ClassroomId{1};
        wire.keyframe = true;
        wire.bytes = codec.encode_full(s);
        wire.captured_at = s.captured_at;
        net.send(src, dst, wire.bytes.size() + 32, std::string{sync::kAvatarFlow},
                 std::move(wire));
    }
};

edge::EdgeServerConfig overload_config() {
    edge::EdgeServerConfig config;
    config.room = ClassroomId{2};
    config.name = "dst";
    config.process_time = sim::Time::ms(2);  // 500 wires/s service capacity
    config.admission.enabled = true;
    config.admission.queue_capacity = 32;
    config.admission.shed_enter_depth = 24;
    config.admission.shed_exit_depth = 4;
    config.admission.hold = sim::Time::ms(200);
    return config;
}

TEST(OverloadAdmissionTest, ShedsLateJoinersKeepsAdmittedFlowing) {
    OverloadRig rig{overload_config()};
    const sim::Time tick = sim::Time::us(16667);
    for (std::uint32_t i = 0; i < 6; ++i) {
        rig.sim.schedule_every(tick, sim::Time::ms(1 + i),
                               [&rig, i] { rig.send_update(100 + i); });
    }
    for (std::uint32_t i = 0; i < 12; ++i) {
        rig.sim.schedule_at(sim::Time::seconds(3.0) + sim::Time::ms(100 * i),
                            [&rig, i, tick] {
                                rig.send_update(200 + i);
                                rig.sim.schedule_every(
                                    tick, [&rig, i] { rig.send_update(200 + i); });
                            });
    }
    rig.sim.run_until(sim::Time::seconds(5.0));
    const std::uint64_t mid_count = rig.server.remote_update_count(ParticipantId{100});
    rig.sim.run_until(sim::Time::seconds(8.0));

    EXPECT_GT(rig.server.shed_streams(), 0u);
    EXPECT_LE(rig.server.admission_gate().transitions(), 2u);  // no flapping
    EXPECT_LE(rig.server.ingress_depth(), 32u);
    // Admitted (pre-overload) streams keep receiving decodable updates.
    EXPECT_GT(rig.server.remote_update_count(ParticipantId{100}), mid_count);
}

TEST(OverloadAdmissionTest, BoundedQueueDropsOldestAtCapacity) {
    edge::EdgeServerConfig config = overload_config();
    config.admission.queue_capacity = 8;
    config.admission.shed_enter_depth = 1000;  // never shed: isolate the queue
    config.admission.shed_exit_depth = 0;
    OverloadRig rig{config};
    // Burst far beyond capacity in one tick.
    rig.sim.schedule_at(sim::Time::ms(10), [&rig] {
        for (std::uint32_t i = 0; i < 40; ++i) rig.send_update(100 + i);
    });
    rig.sim.run_until(sim::Time::seconds(2.0));
    EXPECT_GT(rig.server.queue_dropped(), 0u);
    EXPECT_EQ(rig.server.ingress_depth(), 0u);  // fully drained afterwards
    EXPECT_EQ(rig.server.shed_streams(), 0u);
}

TEST(OverloadAdmissionTest, DisabledAdmissionUsesDirectPath) {
    edge::EdgeServerConfig config;
    config.room = ClassroomId{2};
    config.name = "dst";
    OverloadRig rig{config};
    const sim::Time tick = sim::Time::us(16667);
    rig.sim.schedule_every(tick, [&rig] { rig.send_update(100); });
    rig.sim.run_until(sim::Time::seconds(2.0));
    EXPECT_GT(rig.server.remote_update_count(ParticipantId{100}), 0u);
    EXPECT_EQ(rig.server.queue_dropped(), 0u);
    EXPECT_EQ(rig.server.shed_streams(), 0u);
    EXPECT_EQ(rig.server.ingress_depth(), 0u);
}

}  // namespace
}  // namespace mvc::recovery
