// Tests for the render module: device profiles, frame cost model, LOD
// budgeting, and the split-rendering strategy comparison.

#include <gtest/gtest.h>

#include <cmath>

#include "render/split.hpp"

namespace mvc::render {
namespace {

TEST(DeviceTest, ProfilesOrderedByPower) {
    EXPECT_GT(pc_vr_profile().triangles_per_ms, standalone_hmd_profile().triangles_per_ms);
    EXPECT_GT(standalone_hmd_profile().triangles_per_ms,
              phone_webgl_profile().triangles_per_ms);
    EXPECT_GT(cloud_gpu_profile().triangles_per_ms, pc_vr_profile().triangles_per_ms);
}

TEST(SceneTest, TriangleTotals) {
    Scene s;
    s.environment_triangles = 1000;
    s.add_avatars(avatar::LodLevel::High, 2);      // 2 x 20k
    s.add_avatars(avatar::LodLevel::Billboard, 3); // 3 x 2
    EXPECT_EQ(s.total_triangles(), 1000u + 40'000u + 6u);
    EXPECT_EQ(s.avatar_count(), 5u);
}

TEST(PipelineTest, FrameTimeGrowsWithTriangles) {
    const DeviceProfile dev = standalone_hmd_profile();
    Scene small;
    small.add_avatars(avatar::LodLevel::Low, 10);
    Scene big;
    big.add_avatars(avatar::LodLevel::Sophisticated, 10);
    EXPECT_LT(simulate_frame(dev, small).frame_time_ms,
              simulate_frame(dev, big).frame_time_ms);
}

TEST(PipelineTest, VsyncQuantizesFps) {
    const DeviceProfile dev = standalone_hmd_profile();  // 72 Hz
    Scene heavy;
    heavy.add_avatars(avatar::LodLevel::Sophisticated, 30);
    const FrameStats fs = simulate_frame(dev, heavy);
    EXPECT_FALSE(fs.meets_target_fps);
    // fps must be 72/k for integer k.
    const double k = 72.0 / fs.achieved_fps;
    EXPECT_NEAR(k, std::round(k), 1e-9);
    EXPECT_LT(fs.achieved_fps, 72.0);
}

TEST(PipelineTest, LightSceneMeetsTarget) {
    const DeviceProfile dev = pc_vr_profile();
    Scene light;
    light.add_avatars(avatar::LodLevel::Medium, 10);
    const FrameStats fs = simulate_frame(dev, light);
    EXPECT_TRUE(fs.meets_target_fps);
    EXPECT_DOUBLE_EQ(fs.achieved_fps, 90.0);
}

TEST(PipelineTest, QualityAveragesAcrossLods) {
    Scene s;
    s.add_avatars(avatar::LodLevel::Sophisticated, 1);
    s.add_avatars(avatar::LodLevel::Billboard, 1);
    const FrameStats fs = simulate_frame(pc_vr_profile(), s);
    const double hi = lod_visual_quality(avatar::LodLevel::Sophisticated);
    const double lo = lod_visual_quality(avatar::LodLevel::Billboard);
    EXPECT_NEAR(fs.avatar_quality, (hi + lo) / 2.0, 1e-9);
}

TEST(PipelineTest, LodQualityMonotone) {
    double prev = 1e9;
    for (std::size_t i = 0; i < avatar::kLodCount; ++i) {
        const double q = lod_visual_quality(static_cast<avatar::LodLevel>(i));
        EXPECT_LT(q, prev);
        EXPECT_GE(q, 10.0);
        EXPECT_LE(q, 100.0);
        prev = q;
    }
}

TEST(PipelineTest, BestUniformLodDegradesWithCrowd) {
    const DeviceProfile dev = standalone_hmd_profile();
    const auto few = best_uniform_lod(dev, 2);
    const auto many = best_uniform_lod(dev, 80);
    EXPECT_LT(static_cast<int>(few), static_cast<int>(many));  // finer for few
}

TEST(PipelineTest, PhoneForcedToCoarseLods) {
    const auto lod = best_uniform_lod(phone_webgl_profile(), 30);
    EXPECT_GE(static_cast<int>(lod), static_cast<int>(avatar::LodLevel::Low));
}

TEST(PipelineTest, PcHandlesFineLods) {
    const auto lod = best_uniform_lod(pc_vr_profile(), 30);
    EXPECT_LE(static_cast<int>(lod), static_cast<int>(avatar::LodLevel::High));
}

// ----------------------------------------------------------------- split

TEST(SplitTest, LocalOnlyLatencyIndependentOfRtt) {
    const DeviceProfile dev = standalone_hmd_profile();
    SplitConditions a;
    a.cloud_rtt_ms = 20.0;
    SplitConditions b;
    b.cloud_rtt_ms = 300.0;
    EXPECT_DOUBLE_EQ(evaluate(RenderMode::LocalOnly, dev, a).motion_to_photon_ms,
                     evaluate(RenderMode::LocalOnly, dev, b).motion_to_photon_ms);
}

TEST(SplitTest, CloudOnlyLatencyGrowsWithRtt) {
    const DeviceProfile dev = standalone_hmd_profile();
    SplitConditions a;
    a.cloud_rtt_ms = 20.0;
    SplitConditions b;
    b.cloud_rtt_ms = 200.0;
    EXPECT_LT(evaluate(RenderMode::CloudOnly, dev, a).motion_to_photon_ms,
              evaluate(RenderMode::CloudOnly, dev, b).motion_to_photon_ms);
    EXPECT_NEAR(evaluate(RenderMode::CloudOnly, dev, b).motion_to_photon_ms -
                    evaluate(RenderMode::CloudOnly, dev, a).motion_to_photon_ms,
                180.0, 1.0);
}

TEST(SplitTest, SplitKeepsLocalResponsiveness) {
    const DeviceProfile dev = standalone_hmd_profile();
    SplitConditions cond;
    cond.cloud_rtt_ms = 150.0;
    const SplitOutcome split = evaluate(RenderMode::Split, dev, cond);
    const SplitOutcome cloud = evaluate(RenderMode::CloudOnly, dev, cond);
    EXPECT_LT(split.motion_to_photon_ms, cloud.motion_to_photon_ms / 2.0);
    // But full quality still takes the network round trip.
    EXPECT_GT(split.full_quality_latency_ms, cond.cloud_rtt_ms);
}

TEST(SplitTest, SplitBeatsLocalQualityOnWeakDevice) {
    const DeviceProfile dev = phone_webgl_profile();
    SplitConditions cond;
    cond.avatar_count = 40;
    cond.cloud_rtt_ms = 30.0;
    cond.head_angular_speed = 0.3;
    const SplitOutcome local = evaluate(RenderMode::LocalOnly, dev, cond);
    const SplitOutcome split = evaluate(RenderMode::Split, dev, cond);
    EXPECT_GT(split.visual_quality, local.visual_quality);
}

TEST(SplitTest, ArtifactsGrowWithHeadSpeedAndRtt) {
    const DeviceProfile dev = standalone_hmd_profile();
    SplitConditions calm;
    calm.head_angular_speed = 0.2;
    calm.cloud_rtt_ms = 30.0;
    SplitConditions frantic;
    frantic.head_angular_speed = 3.0;
    frantic.cloud_rtt_ms = 200.0;
    EXPECT_LT(evaluate(RenderMode::Split, dev, calm).artifact_penalty,
              evaluate(RenderMode::Split, dev, frantic).artifact_penalty);
}

TEST(SplitTest, SplitQualityNeverBelowBaseLayer) {
    const DeviceProfile dev = standalone_hmd_profile();
    SplitConditions cond;
    cond.head_angular_speed = 10.0;  // speculation hopeless
    cond.cloud_rtt_ms = 300.0;
    const SplitOutcome out = evaluate(RenderMode::Split, dev, cond);
    EXPECT_GE(out.visual_quality, lod_visual_quality(avatar::LodLevel::Low) - 1e-9);
}

TEST(SplitTest, CloudOnlyFpsLimitedByDownlink) {
    const DeviceProfile dev = standalone_hmd_profile();
    SplitConditions thin;
    thin.downlink_bps = 2e6;  // 2 Mbit/s
    const SplitOutcome out = evaluate(RenderMode::CloudOnly, dev, thin);
    EXPECT_LT(out.fps, 15.0);
}

TEST(SplitTest, ModeNamesDistinct) {
    EXPECT_NE(render_mode_name(RenderMode::LocalOnly), render_mode_name(RenderMode::Split));
    EXPECT_NE(render_mode_name(RenderMode::CloudOnly), render_mode_name(RenderMode::Split));
}

}  // namespace
}  // namespace mvc::render
