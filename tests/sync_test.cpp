// Tests for the synchronization layer: NTP-like clock sync, jitter buffer,
// interest management (grid + policy), and avatar replication with
// dead-reckoning send gating.

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "fault/degradation.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "sync/clock.hpp"
#include "sync/interest.hpp"
#include "sync/jitter.hpp"
#include "sync/replication.hpp"

namespace mvc::sync {
namespace {

// --------------------------------------------------------------------- clock

struct ClockFixture : ::testing::Test {
    sim::Simulator sim{41};
    net::Network net{sim};
    net::NodeId a = net.add_node("client", net::Region::HongKong);
    net::NodeId b = net.add_node("server", net::Region::Guangzhou);
    net::PacketDemux demux_a{net, a};
    net::PacketDemux demux_b{net, b};

    void connect(sim::Time latency, sim::Time jitter = sim::Time::zero()) {
        net::LinkParams params;
        params.latency = latency;
        params.jitter = jitter;
        net.connect(a, b, params);
    }
};

TEST_F(ClockFixture, RecoversStaticOffset) {
    connect(sim::Time::ms(10));
    const DriftingClock client{0.0, sim::Time::ms(500)};
    const DriftingClock server{0.0, sim::Time::ms(-250)};
    ClockSyncSession sync{net, demux_a, demux_b, "ntp", client, server};
    sync.start();
    sim.run_until(sim::Time::seconds(5));
    ASSERT_TRUE(sync.synchronized());
    // True offset = 500 - (-250) = 750 ms; symmetric links make this exact.
    EXPECT_NEAR(sync.estimated_offset().to_ms(), 750.0, 0.5);
    EXPECT_LT(sync.estimation_error().to_ms(), 0.5);
}

TEST_F(ClockFixture, JitterHandledByMinRttFilter) {
    connect(sim::Time::ms(10), sim::Time::ms(4));
    const DriftingClock client{0.0, sim::Time::ms(100)};
    const DriftingClock server{0.0, sim::Time::zero()};
    ClockSyncSession sync{net, demux_a, demux_b, "ntp", client, server};
    sync.start();
    sim.run_until(sim::Time::seconds(10));
    // Min-RTT filtering keeps the error well under the jitter magnitude.
    EXPECT_LT(sync.estimation_error().to_ms(), 3.0);
}

TEST_F(ClockFixture, TracksSkewOverTime) {
    connect(sim::Time::ms(5));
    const DriftingClock client{100.0, sim::Time::zero()};  // +100 ppm
    const DriftingClock server{0.0, sim::Time::zero()};
    ClockSyncSession sync{net, demux_a, demux_b, "ntp", client, server};
    sync.start();
    sim.run_until(sim::Time::seconds(60));
    // After 60 s the clocks drift 6 ms apart; the windowed estimator follows.
    EXPECT_LT(sync.estimation_error().to_ms(), 1.5);
    EXPECT_GT(sync.probes_completed(), 100u);
}

TEST_F(ClockFixture, ToServerTimeAppliesOffset) {
    connect(sim::Time::ms(1));
    const DriftingClock client{0.0, sim::Time::ms(42)};
    const DriftingClock server{0.0, sim::Time::zero()};
    ClockSyncSession sync{net, demux_a, demux_b, "ntp", client, server};
    sync.start();
    sim.run_until(sim::Time::seconds(2));
    const sim::Time t_client = client.local_time(sim.now());
    EXPECT_NEAR((sync.to_server_time(t_client) - sim.now()).to_ms(), 0.0, 0.5);
}

TEST(DriftingClockTest, SkewScalesTime) {
    const DriftingClock c{1000.0, sim::Time::zero()};  // +1000 ppm = 0.1%
    EXPECT_NEAR(c.local_time(sim::Time::seconds(100)).to_seconds(), 100.1, 1e-9);
    EXPECT_NEAR(c.true_offset(sim::Time::seconds(100)).to_ms(), 100.0, 1e-6);
}

// ------------------------------------------------------------------- jitter

avatar::AvatarState state_at(double t_ms, double x = 0.0) {
    avatar::AvatarState s;
    s.participant = ParticipantId{1};
    s.captured_at = sim::Time::ms(t_ms);
    s.root.pose.position = {x, 0, 0};
    s.root.linear_velocity = {1.0, 0, 0};
    s.body.head.position = {x, 0.65, 0};
    return s;
}

TEST(JitterBufferTest, EmptyReturnsNullopt) {
    const JitterBuffer jb;
    EXPECT_FALSE(jb.sample(sim::Time::ms(100)).has_value());
}

TEST(JitterBufferTest, InterpolatesBetweenStates) {
    JitterBufferParams params;
    params.min_delay = sim::Time::ms(20);
    JitterBuffer jb{params};
    // States captured every 20 ms, arriving with constant 10 ms transit.
    for (int i = 0; i <= 10; ++i) {
        jb.push(state_at(i * 20.0, i * 0.2), sim::Time::ms(i * 20.0 + 10.0));
    }
    // Sample at a time whose playout point falls mid-interval.
    const auto out = jb.sample(sim::Time::ms(150.0));
    ASSERT_TRUE(out.has_value());
    // Playout target = 150 - ~10 (transit) - 20 (delay) = ~120 => x ≈ 1.2.
    EXPECT_NEAR(out->root.pose.position.x, 1.2, 0.1);
}

TEST(JitterBufferTest, ReorderedArrivalsSortByCaptureTime) {
    JitterBuffer jb;
    jb.push(state_at(40.0, 4.0), sim::Time::ms(50));
    jb.push(state_at(20.0, 2.0), sim::Time::ms(52));  // late but older
    jb.push(state_at(60.0, 6.0), sim::Time::ms(70));
    const auto out = jb.sample(sim::Time::ms(80));
    ASSERT_TRUE(out.has_value());
    // Whatever the playout point, interpolation must be monotone in x(t).
    EXPECT_GE(out->root.pose.position.x, 2.0 - 1e-9);
    EXPECT_LE(out->root.pose.position.x, 6.0 + 1e-9);
}

TEST(JitterBufferTest, UnderrunExtrapolatesBounded) {
    JitterBufferParams params;
    params.min_delay = sim::Time::ms(10);
    params.max_extrapolation = sim::Time::ms(50);
    JitterBuffer jb{params};
    jb.push(state_at(0.0, 0.0), sim::Time::ms(5));
    // Long silence: sample far past the last capture.
    const auto out = jb.sample(sim::Time::ms(500));
    ASSERT_TRUE(out.has_value());
    // Extrapolation capped at 50 ms of the 1 m/s motion.
    EXPECT_LE(out->root.pose.position.x, 0.051);
    EXPECT_GT(jb.underruns(), 0u);
}

TEST(JitterBufferTest, PlayoutDelayRespondsToJitter) {
    JitterBufferParams params;
    params.min_delay = sim::Time::ms(5);
    params.max_delay = sim::Time::ms(200);
    JitterBuffer steady{params};
    JitterBuffer wobbly{params};
    std::mt19937 gen{3};
    std::uniform_real_distribution<double> noise{0.0, 40.0};
    for (int i = 0; i < 100; ++i) {
        steady.push(state_at(i * 20.0), sim::Time::ms(i * 20.0 + 10.0));
        wobbly.push(state_at(i * 20.0), sim::Time::ms(i * 20.0 + 10.0 + noise(gen)));
    }
    EXPECT_GT(wobbly.playout_delay(), steady.playout_delay());
    EXPECT_GE(steady.playout_delay(), params.min_delay);
    EXPECT_LE(wobbly.playout_delay(), params.max_delay);
}

TEST(JitterBufferTest, HistoryPruned) {
    JitterBufferParams params;
    params.history = sim::Time::ms(100);
    JitterBuffer jb{params};
    for (int i = 0; i < 100; ++i) {
        jb.push(state_at(i * 20.0), sim::Time::ms(i * 20.0 + 5.0));
    }
    EXPECT_LE(jb.depth(), 7u);  // ~100 ms / 20 ms + slack
}

// ------------------------------------------------------------------ interest

TEST(InterestGridTest, QueryMatchesBruteForce) {
    InterestGrid grid{3.0};
    std::mt19937 gen{7};
    std::uniform_real_distribution<double> d{-30.0, 30.0};
    std::vector<std::pair<EntityId, math::Vec3>> entities;
    for (std::uint32_t i = 1; i <= 200; ++i) {
        const math::Vec3 p{d(gen), 0.0, d(gen)};
        entities.emplace_back(EntityId{i}, p);
        grid.update(EntityId{i}, p);
    }
    for (int trial = 0; trial < 20; ++trial) {
        const math::Vec3 center{d(gen), 0.0, d(gen)};
        const double radius = 8.0;
        auto got = grid.query_radius(center, radius);
        std::vector<EntityId> expected;
        for (const auto& [id, p] : entities) {
            if ((p - center).norm() <= radius) expected.push_back(id);
        }
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(got, expected);
    }
}

TEST(InterestGridTest, UpdateMovesEntityAcrossCells) {
    InterestGrid grid{2.0};
    grid.update(EntityId{1}, {0, 0, 0});
    EXPECT_EQ(grid.query_radius({0, 0, 0}, 1.0).size(), 1u);
    grid.update(EntityId{1}, {50, 0, 0});
    EXPECT_TRUE(grid.query_radius({0, 0, 0}, 1.0).empty());
    EXPECT_EQ(grid.query_radius({50, 0, 0}, 1.0).size(), 1u);
    EXPECT_EQ(grid.size(), 1u);
}

TEST(InterestGridTest, RemoveErases) {
    InterestGrid grid;
    grid.update(EntityId{1}, {1, 0, 1});
    grid.remove(EntityId{1});
    EXPECT_EQ(grid.size(), 0u);
    EXPECT_TRUE(grid.query_radius({1, 0, 1}, 5.0).empty());
    grid.remove(EntityId{1});  // idempotent
}

TEST(InterestGridTest, QueryNearestOrdersByDistance) {
    InterestGrid grid;
    grid.update(EntityId{1}, {10, 0, 0});
    grid.update(EntityId{2}, {1, 0, 0});
    grid.update(EntityId{3}, {5, 0, 0});
    const auto nearest = grid.query_nearest({0, 0, 0}, 20.0, 2);
    ASSERT_EQ(nearest.size(), 2u);
    EXPECT_EQ(nearest[0], EntityId{2});
    EXPECT_EQ(nearest[1], EntityId{3});
}

TEST(InterestGridTest, PositionLookup) {
    InterestGrid grid;
    grid.update(EntityId{4}, {2, 3, 4});
    ASSERT_NE(grid.position_of(EntityId{4}), nullptr);
    EXPECT_TRUE(math::approx_equal(*grid.position_of(EntityId{4}), {2, 3, 4}));
    EXPECT_EQ(grid.position_of(EntityId{5}), nullptr);
}

TEST(InterestGridTest, CellHashSpreadsNegativeCoordinates) {
    // Regression: the old hash cast int32 cell coordinates straight to
    // size_t, sign-extending negatives to 0xFFFFFFFFxxxxxxxx; after the prime
    // multiplies whole negative-coordinate quadrants collapsed onto a handful
    // of unordered_map buckets. Hash a mixed-sign cube and demand both full
    // distinctness and a healthy spread in the low bits that drive bucket
    // selection.
    std::unordered_set<std::size_t> hashes;
    std::unordered_set<std::size_t> low_bits;
    constexpr int kHalf = 6;  // [-6, 6]^3 = 2197 cells, most with a negative coord
    for (int x = -kHalf; x <= kHalf; ++x) {
        for (int y = -kHalf; y <= kHalf; ++y) {
            for (int z = -kHalf; z <= kHalf; ++z) {
                const std::size_t h = InterestGrid::cell_hash(x, y, z);
                hashes.insert(h);
                low_bits.insert(h % 4096);
            }
        }
    }
    constexpr std::size_t kCells = (2 * kHalf + 1) * (2 * kHalf + 1) * (2 * kHalf + 1);
    EXPECT_EQ(hashes.size(), kCells);  // no full-hash collisions at all
    // With 2197 keys into 4096 slots, a uniform hash leaves ~1800 distinct
    // residues (birthday overlap); the sign-extension bug left far fewer.
    EXPECT_GT(low_bits.size(), 1500u);
}

TEST(InterestGridTest, MixedSignRoomQueriesStayExact) {
    // Entities spread across all eight octants (the bug's worst case) must
    // still answer radius queries exactly.
    InterestGrid grid{2.0};
    std::mt19937 gen{11};
    std::uniform_real_distribution<double> d{-25.0, 25.0};
    std::vector<std::pair<EntityId, math::Vec3>> entities;
    for (std::uint32_t i = 1; i <= 300; ++i) {
        const math::Vec3 p{d(gen), d(gen), d(gen)};
        entities.emplace_back(EntityId{i}, p);
        grid.update(EntityId{i}, p);
    }
    for (int trial = 0; trial < 10; ++trial) {
        const math::Vec3 center{d(gen), d(gen), d(gen)};
        auto got = grid.query_radius(center, 6.0);
        std::vector<EntityId> expected;
        for (const auto& [id, p] : entities) {
            if ((p - center).norm() <= 6.0) expected.push_back(id);
        }
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(got, expected);
    }
}

TEST(InterestPolicyTest, DefaultTiersCoverLadder) {
    const InterestPolicy policy;
    const InterestTier* close = policy.tier_for(2.0);
    ASSERT_NE(close, nullptr);
    EXPECT_EQ(close->lod, avatar::LodLevel::High);
    const InterestTier* far = policy.tier_for(50.0);
    ASSERT_NE(far, nullptr);
    EXPECT_EQ(far->lod, avatar::LodLevel::Billboard);
    EXPECT_EQ(policy.tier_for(500.0), nullptr);
    EXPECT_GT(close->update_rate_hz, far->update_rate_hz);
}

TEST(InterestPolicyTest, CustomTiersValidated) {
    EXPECT_THROW(InterestPolicy{std::vector<InterestTier>{}}, std::invalid_argument);
    EXPECT_THROW(InterestPolicy(std::vector<InterestTier>{
                     {10.0, 30.0, avatar::LodLevel::High},
                     {5.0, 15.0, avatar::LodLevel::Low}}),
                 std::invalid_argument);
}

// --------------------------------------------------------------- replication

struct ReplicationFixture : ::testing::Test {
    sim::Simulator sim{51};
    avatar::AvatarCodec codec;

    avatar::AvatarState moving_state(double t_s) {
        avatar::AvatarState s;
        s.participant = ParticipantId{1};
        s.captured_at = sim::Time::seconds(t_s);
        s.root.pose.position = {t_s * 1.0, 0, 0};  // 1 m/s
        s.root.linear_velocity = {1.0, 0, 0};
        // Body rides along with the root (a coherent walking avatar).
        s.body.head.position = s.root.pose.position + math::Vec3{0, 0.65, 0};
        s.body.left_hand.position = s.root.pose.position + math::Vec3{-0.25, 0.35, 0};
        s.body.right_hand.position = s.root.pose.position + math::Vec3{0.25, 0.35, 0};
        return s;
    }
};

TEST_F(ReplicationFixture, StaticAvatarSendsOnlyKeyframes) {
    ReplicationParams params;
    params.tick_rate_hz = 30.0;
    params.error_threshold = 0.02;
    params.keyframe_interval = sim::Time::seconds(1.0);
    int sent = 0;
    AvatarPublisher pub{sim, codec, params,
                       [&](std::vector<std::uint8_t>, bool, sim::Time) { ++sent; }};
    avatar::AvatarState s;
    s.participant = ParticipantId{1};
    pub.set_state(s);
    pub.start();
    sim.run_until(sim::Time::seconds(10));
    // ~1 keyframe per second; dead reckoning suppresses everything else.
    EXPECT_LE(sent, 12);
    EXPECT_GE(sent, 9);
    EXPECT_GT(pub.suppressed(), 200u);
}

TEST_F(ReplicationFixture, AcceleratingAvatarSendsUpdates) {
    ReplicationParams params;
    params.tick_rate_hz = 30.0;
    params.error_threshold = 0.02;
    int sent = 0;
    AvatarPublisher pub{sim, codec, params,
                       [&](std::vector<std::uint8_t>, bool, sim::Time) { ++sent; }};
    // Oscillating motion defeats constant-velocity prediction.
    pub.set_provider([&]() -> std::optional<avatar::AvatarState> {
        const double t = sim.now().to_seconds();
        avatar::AvatarState s;
        s.participant = ParticipantId{1};
        s.captured_at = sim.now();
        s.root.pose.position = {std::sin(3.0 * t), 0, 0};
        s.root.linear_velocity = {3.0 * std::cos(3.0 * t), 0, 0};
        return s;
    });
    pub.start();
    sim.run_until(sim::Time::seconds(5));
    EXPECT_GT(sent, 50);
}

TEST_F(ReplicationFixture, ConstantVelocitySuppressedByDeadReckoning) {
    ReplicationParams params;
    params.tick_rate_hz = 30.0;
    params.error_threshold = 0.05;
    params.keyframe_interval = sim::Time::seconds(2.0);
    int updates = 0;
    int keyframes = 0;
    AvatarPublisher pub{sim, codec, params,
                       [&](std::vector<std::uint8_t>, bool kf, sim::Time) {
                           kf ? ++keyframes : ++updates;
                       }};
    pub.set_provider([&]() -> std::optional<avatar::AvatarState> {
        return moving_state(sim.now().to_seconds());
    });
    pub.start();
    sim.run_until(sim::Time::seconds(10));
    // Constant velocity is perfectly predictable: deltas stay rare.
    EXPECT_LT(updates, 20);
    EXPECT_GE(keyframes, 4);
}

TEST_F(ReplicationFixture, ZeroThresholdSendsEveryTick) {
    ReplicationParams params;
    params.tick_rate_hz = 20.0;
    params.error_threshold = 0.0;
    int sent = 0;
    AvatarPublisher pub{sim, codec, params,
                       [&](std::vector<std::uint8_t>, bool, sim::Time) { ++sent; }};
    pub.set_provider([&]() -> std::optional<avatar::AvatarState> {
        return moving_state(sim.now().to_seconds());
    });
    pub.start();
    sim.run_until(sim::Time::seconds(5));
    EXPECT_EQ(sent, 100);
    EXPECT_EQ(pub.suppressed(), 0u);
}

TEST_F(ReplicationFixture, RequestKeyframeForcesFull) {
    ReplicationParams params;
    params.tick_rate_hz = 10.0;
    params.keyframe_interval = sim::Time::seconds(100.0);
    int keyframes = 0;
    AvatarPublisher pub{sim, codec, params,
                       [&](std::vector<std::uint8_t>, bool kf, sim::Time) {
                           if (kf) ++keyframes;
                       }};
    pub.set_provider([&]() -> std::optional<avatar::AvatarState> {
        return moving_state(sim.now().to_seconds());
    });
    pub.start();
    sim.run_until(sim::Time::seconds(2));
    EXPECT_EQ(keyframes, 1);  // initial only
    pub.request_keyframe();
    sim.run_until(sim::Time::seconds(3));
    EXPECT_EQ(keyframes, 2);
}

TEST_F(ReplicationFixture, SetRateScaleReschedulesImmediately) {
    ReplicationParams params;
    params.tick_rate_hz = 20.0;
    params.error_threshold = 0.0;  // every tick sends: exact counting
    int sent = 0;
    AvatarPublisher pub{sim, codec, params,
                       [&](std::vector<std::uint8_t>, bool, sim::Time) { ++sent; }};
    pub.set_provider([&]() -> std::optional<avatar::AvatarState> {
        return moving_state(sim.now().to_seconds());
    });
    pub.start();
    sim.run_until(sim::Time::seconds(5));
    EXPECT_EQ(sent, 100);  // 20 Hz for 5 s

    // Halving the rate reschedules the periodic task immediately — the next
    // tick lands one scaled period out, not at the old cadence.
    pub.set_rate_scale(0.5);
    const int at_half_start = sent;
    sim.run_until(sim::Time::seconds(10));
    const int half_rate_sends = sent - at_half_start;
    EXPECT_GE(half_rate_sends, 49);
    EXPECT_LE(half_rate_sends, 51);

    pub.set_rate_scale(1.0);
    const int at_full_start = sent;
    sim.run_until(sim::Time::seconds(15));
    const int full_rate_sends = sent - at_full_start;
    EXPECT_GE(full_rate_sends, 99);
    EXPECT_LE(full_rate_sends, 101);
}

TEST_F(ReplicationFixture, RateScaleFollowsDegradationLadderWithFailbackKeyframe) {
    // Drive the publisher the way an edge server does under sustained loss:
    // each degradation-ladder step halves the tick rate, and failback forces
    // a keyframe so the recovered peer re-anchors instantly.
    fault::DegradationParams dp;
    dp.hold = sim::Time::zero();
    fault::DegradationPolicy policy{dp};

    ReplicationParams params;
    params.tick_rate_hz = 20.0;
    params.error_threshold = 0.0;
    params.keyframe_interval = sim::Time::seconds(1000.0);  // keyframes only on demand
    int sent = 0;
    int keyframes = 0;
    AvatarPublisher pub{sim, codec, params,
                       [&](std::vector<std::uint8_t>, bool kf, sim::Time) {
                           ++sent;
                           if (kf) ++keyframes;
                       }};
    pub.set_provider([&]() -> std::optional<avatar::AvatarState> {
        return moving_state(sim.now().to_seconds());
    });
    pub.start();

    sim.run_until(sim::Time::seconds(2));
    const int full_rate = sent;
    EXPECT_EQ(full_rate, 40);  // 20 Hz

    policy.update(0.5, sim.now());  // level 1
    pub.set_rate_scale(policy.rate_scale());
    sim.run_until(sim::Time::seconds(4));
    const int level1 = sent - full_rate;
    EXPECT_GE(level1, 19);
    EXPECT_LE(level1, 21);  // 10 Hz

    policy.update(0.5, sim.now());  // level 2
    pub.set_rate_scale(policy.rate_scale());
    sim.run_until(sim::Time::seconds(6));
    const int level2 = sent - full_rate - level1;
    EXPECT_GE(level2, 9);
    EXPECT_LE(level2, 11);  // 5 Hz

    // Loss clears: back to full fidelity, and — as on heartbeat failback —
    // the next update must be a forced keyframe despite the huge interval.
    policy.update(0.0, sim.now());
    policy.update(0.0, sim.now());
    EXPECT_EQ(policy.level(), 0);
    pub.set_rate_scale(policy.rate_scale());
    pub.request_keyframe();
    const int before = sent;
    const int keyframes_before = keyframes;
    sim.run_until(sim::Time::seconds(6.2));
    ASSERT_GT(sent, before);
    EXPECT_EQ(keyframes, keyframes_before + 1);
    sim.run_until(sim::Time::seconds(8.2));
    const int restored = sent - before;
    EXPECT_GE(restored, 43);  // back at 20 Hz
}

TEST_F(ReplicationFixture, ReplicaRoundTripThroughPublisher) {
    ReplicationParams params;
    params.tick_rate_hz = 30.0;
    params.error_threshold = 0.01;
    AvatarReplica replica{codec};
    AvatarPublisher pub{sim, codec, params,
                       [&](std::vector<std::uint8_t> bytes, bool kf, sim::Time) {
                           replica.ingest(bytes, kf, sim.now());
                       }};
    pub.set_provider([&]() -> std::optional<avatar::AvatarState> {
        return moving_state(sim.now().to_seconds());
    });
    pub.start();
    sim.run_until(sim::Time::seconds(5));
    const auto latest = replica.latest();
    ASSERT_TRUE(latest.has_value());
    // Receiver's newest state matches the truth at its capture time.
    const double t = latest->captured_at.to_seconds();
    EXPECT_NEAR(latest->root.pose.position.x, t, 0.05);
    EXPECT_GT(replica.decoded(), 0u);
}

TEST_F(ReplicationFixture, DeltasBeforeKeyframeDropped) {
    AvatarReplica replica{codec};
    const avatar::AvatarState a = moving_state(0.0);
    const avatar::AvatarState b = moving_state(1.0);
    const auto delta = codec.encode_delta(a, b);
    replica.ingest(delta, false, sim::Time::ms(1));
    EXPECT_EQ(replica.decoded(), 0u);
    EXPECT_EQ(replica.dropped_waiting_keyframe(), 1u);
    replica.ingest(codec.encode_full(a), true, sim::Time::ms(2));
    replica.ingest(delta, false, sim::Time::ms(3));
    EXPECT_EQ(replica.decoded(), 2u);
}

TEST_F(ReplicationFixture, InvalidParamsThrow) {
    ReplicationParams bad;
    bad.tick_rate_hz = 0.0;
    EXPECT_THROW(AvatarPublisher(sim, codec, bad,
                                 [](std::vector<std::uint8_t>, bool, sim::Time) {}),
                 std::invalid_argument);
    EXPECT_THROW(AvatarPublisher(sim, codec, ReplicationParams{}, nullptr),
                 std::invalid_argument);
}

}  // namespace
}  // namespace mvc::sync
