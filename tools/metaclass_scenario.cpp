// metaclass_scenario — run, validate and fuzz declarative scenario specs.
//
//   metaclass_scenario run [--json] [--threads N] spec.scenario.json
//       build the declared world, drive it, print the SLO verdicts (or the
//       full report as JSON) and exit nonzero if any SLO gate failed
//   metaclass_scenario validate spec.scenario.json...
//       strict-parse each file; print the field-path error for bad ones
//   metaclass_scenario fuzz [--iters N] [--seconds S] [--seed K] spec.scenario.json
//       mutate the spec N times (or for S wall seconds), running every valid
//       mutant twice with the same seed; exit nonzero on crash or divergence
//   metaclass_scenario fuzz-trace [--iters N] [--seed K] file.mvctrace
//       corrupt recorded trace bytes; Trace::verify/parse must never crash
//   metaclass_scenario example
//       print an annotated example spec
//
// Specs are versioned JSON; see scenarios/*.scenario.json for shipped ones.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/fuzz.hpp"
#include "scenario/runner.hpp"

namespace {

constexpr const char* kExampleSpec = R"json({
  "scenario_version": 1,
  "name": "example-exam",
  "world": "classroom",
  "backend": "sim",
  "seed": 42,
  "duration_s": 60,
  "hash_ms": 100,
  "classroom": {
    "course": "COMP4461: HCI (blended)",
    "rooms": [
      {"preset": "cwb", "students": 8, "instructor": true},
      {"preset": "gz", "students": 6}
    ],
    "remote": [
      {"region": "Seoul", "count": 2},
      {"region": "London", "count": 1, "join_at_s": 10}
    ],
    "lecture_media_room": 0,
    "schedule": [
      {"activity": "lecture", "minutes": 0.5},
      {"activity": "qa", "minutes": 0.5}
    ]
  },
  "timeline": [
    {"kind": "loss_burst", "at_s": 20, "duration_s": 5,
     "a": "edge/0", "b": "edge/1", "loss": 0.3}
  ],
  "slos": [
    {"metric": "mr.display_latency_ms.p95", "max": 50},
    {"metric": "scenario.hash_epochs", "min": 1}
  ]
})json";

int usage() {
    std::fprintf(stderr,
                 "usage: metaclass_scenario run [--json] [--threads N] <spec>\n"
                 "       metaclass_scenario validate <spec>...\n"
                 "       metaclass_scenario fuzz [--iters N] [--seconds S] "
                 "[--seed K] <spec>\n"
                 "       metaclass_scenario fuzz-trace [--iters N] [--seed K] "
                 "<trace>\n"
                 "       metaclass_scenario example\n");
    return 2;
}

int cmd_run(int argc, char** argv) {
    bool as_json = false;
    std::size_t threads = 1;
    const char* path = nullptr;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            as_json = true;
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
        } else if (argv[i][0] == '-' || path != nullptr) {
            return usage();
        } else {
            path = argv[i];
        }
    }
    if (path == nullptr) return usage();

    const mvc::scenario::ScenarioSpec spec = mvc::scenario::load_spec_file(path);
    const mvc::scenario::ScenarioReport report =
        mvc::scenario::run_scenario(spec, threads);
    if (as_json) {
        std::puts(mvc::scenario::report_to_json(report).dump(2).c_str());
    } else {
        std::printf("%s\n", report.stamp.c_str());
        std::printf("hash epochs: %zu\n", report.hashes.size());
        for (const mvc::scenario::SloResult& r : report.slos) {
            std::printf("  [%s] %-36s", r.passed ? "ok" : "FAIL",
                        r.gate.metric.c_str());
            if (r.value)
                std::printf(" value=%.3f", *r.value);
            else
                std::printf(" value=<missing>");
            if (r.gate.min) std::printf(" min=%.3f", *r.gate.min);
            if (r.gate.max) std::printf(" max=%.3f", *r.gate.max);
            std::printf("\n");
        }
        std::printf("%s\n", report.passed ? "PASS" : "FAIL");
    }
    return report.passed ? 0 : 1;
}

int cmd_validate(int argc, char** argv) {
    if (argc == 0) return usage();
    int bad = 0;
    for (int i = 0; i < argc; ++i) {
        try {
            const mvc::scenario::ScenarioSpec spec =
                mvc::scenario::load_spec_file(argv[i]);
            std::printf("%s: ok (%s)\n", argv[i],
                        mvc::scenario::spec_stamp(spec).c_str());
        } catch (const std::exception& e) {
            std::printf("%s: %s\n", argv[i], e.what());
            ++bad;
        }
    }
    return bad == 0 ? 0 : 1;
}

void print_fuzz_report(const mvc::scenario::FuzzReport& report) {
    std::printf("iterations=%zu ran=%zu rejected=%zu failures=%zu\n",
                report.iterations, report.ran, report.rejected,
                report.failures.size());
    for (const mvc::scenario::FuzzFailure& f : report.failures)
        std::printf("  FAIL salt=%zu: %s\n", f.iteration, f.what.c_str());
}

int cmd_fuzz(int argc, char** argv) {
    std::size_t iters = 50;
    double seconds = 0.0;
    std::uint64_t seed = 1;
    const char* path = nullptr;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
            iters = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
            seconds = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (argv[i][0] == '-' || path != nullptr) {
            return usage();
        } else {
            path = argv[i];
        }
    }
    if (path == nullptr) return usage();

    const mvc::scenario::ScenarioSpec base = mvc::scenario::load_spec_file(path);
    mvc::scenario::FuzzOptions options;
    options.seed = seed;
    mvc::scenario::FuzzReport total;
    if (seconds > 0.0) {
        // Time-boxed mode for CI smokes: batches until the budget runs out.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::duration<double>(seconds);
        constexpr std::size_t kBatch = 5;
        options.iterations = kBatch;
        while (std::chrono::steady_clock::now() < deadline) {
            const mvc::scenario::FuzzReport batch =
                mvc::scenario::fuzz_specs(base, options);
            total.iterations += batch.iterations;
            total.ran += batch.ran;
            total.rejected += batch.rejected;
            total.failures.insert(total.failures.end(), batch.failures.begin(),
                                  batch.failures.end());
            options.seed += kBatch;
        }
    } else {
        options.iterations = iters;
        total = mvc::scenario::fuzz_specs(base, options);
    }
    print_fuzz_report(total);
    return total.ok() ? 0 : 1;
}

int cmd_fuzz_trace(int argc, char** argv) {
    std::size_t iters = 200;
    std::uint64_t seed = 1;
    const char* path = nullptr;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
            iters = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (argv[i][0] == '-' || path != nullptr) {
            return usage();
        } else {
            path = argv[i];
        }
    }
    if (path == nullptr) return usage();

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "metaclass_scenario: cannot open '%s'\n", path);
        return 1;
    }
    std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>()};
    mvc::scenario::FuzzOptions options;
    options.iterations = iters;
    options.seed = seed;
    const mvc::scenario::FuzzReport report =
        mvc::scenario::fuzz_trace(bytes, options);
    print_fuzz_report(report);
    return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const char* cmd = argv[1];
    try {
        if (std::strcmp(cmd, "run") == 0) return cmd_run(argc - 2, argv + 2);
        if (std::strcmp(cmd, "validate") == 0) return cmd_validate(argc - 2, argv + 2);
        if (std::strcmp(cmd, "fuzz") == 0) return cmd_fuzz(argc - 2, argv + 2);
        if (std::strcmp(cmd, "fuzz-trace") == 0)
            return cmd_fuzz_trace(argc - 2, argv + 2);
        if (std::strcmp(cmd, "example") == 0) {
            std::puts(kExampleSpec);
            return 0;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "metaclass_scenario: %s\n", e.what());
        return 1;
    }
    return usage();
}
