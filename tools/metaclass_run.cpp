// metaclass_run — scenario-driven classroom runner.
//
//   metaclass_run scenario.json            run and print a human report
//   metaclass_run --json scenario.json     machine-readable report (JSON)
//   metaclass_run --example                print an annotated example scenario
//   metaclass_run --experiments            list the experiment registry (E1..E21)
//   metaclass_run                          run the built-in default scenario
//
// Scenarios are versioned ScenarioSpec JSON (see `metaclass_scenario example`
// and scenarios/*.scenario.json); this tool drives classroom-world specs and
// prints the ClassReport. For relay/campus worlds, SLO gating and fuzzing,
// use metaclass_scenario.

#include <cstdio>
#include <cstring>

#include "core/classroom.hpp"
#include "experiment_registry.hpp"
#include "scenario/runner.hpp"

namespace {

constexpr const char* kExampleScenario = R"json({
  "scenario_version": 1,
  "name": "blended-lecture",
  "world": "classroom",
  "seed": 42,
  "duration_s": 120,
  "classroom": {
    "course": "COMP4461: HCI (blended)",
    "event_bus": true,
    "rooms": [
      {"name": "cwb", "region": "HongKong", "rows": 6, "cols": 6,
       "students": 12, "instructor": true},
      {"name": "gz", "region": "Guangzhou", "rows": 6, "cols": 6,
       "students": 9}
    ],
    "remote": [
      {"region": "Seoul", "count": 2},
      {"region": "Boston", "count": 2},
      {"region": "London", "count": 1}
    ],
    "lecture_media_room": 0,
    "schedule": [
      {"activity": "lecture", "minutes": 25},
      {"activity": "qa", "minutes": 10},
      {"activity": "gamified-breakout", "minutes": 20, "team_size": 4}
    ]
  }
})json";

int usage() {
    std::fprintf(stderr,
                 "usage: metaclass_run [--json] [scenario.json]\n"
                 "       metaclass_run --example\n"
                 "       metaclass_run --experiments\n");
    return 2;
}

void print_experiments() {
    std::printf("%-6s %-32s %s\n", "id", "binary (build/bench/)", "title");
    for (const auto& e : mvc::tools::kExperiments) {
        std::printf("%-6s %-32s %s\n", e.id, e.binary, e.title);
        std::printf("       claim: %s\n", e.claim);
    }
    std::printf("\nmeasured results per id: EXPERIMENTS.md; each binary writes "
                "BENCH_<id>.json\n");
}

}  // namespace

int main(int argc, char** argv) {
    bool as_json = false;
    const char* path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            as_json = true;
        } else if (std::strcmp(argv[i], "--example") == 0) {
            std::puts(kExampleScenario);
            return 0;
        } else if (std::strcmp(argv[i], "--experiments") == 0) {
            print_experiments();
            return 0;
        } else if (argv[i][0] == '-') {
            return usage();
        } else if (path == nullptr) {
            path = argv[i];
        } else {
            return usage();
        }
    }

    try {
        const mvc::scenario::ScenarioSpec spec =
            path != nullptr ? mvc::scenario::load_spec_file(path)
                            : mvc::scenario::scenario_from_text(kExampleScenario);
        if (spec.world != mvc::scenario::WorldKind::Classroom) {
            std::fprintf(stderr,
                         "metaclass_run: '%s' is a %s-world spec; use "
                         "metaclass_scenario run\n",
                         spec.name.c_str(),
                         std::string{mvc::scenario::world_name(spec.world)}.c_str());
            return 1;
        }
        const std::unique_ptr<mvc::scenario::ScenarioWorld> world =
            mvc::scenario::build(spec);
        world->run();
        world->stop();
        const mvc::core::ClassReport report = world->classroom().report();
        if (as_json) {
            std::puts(mvc::scenario::class_report_to_json(report).dump(2).c_str());
        } else {
            std::printf("course: %s\n", spec.classroom.course.c_str());
            std::printf("simulated: %.0f s\n", spec.duration.to_seconds());
            std::fputs(report.summary().c_str(), stdout);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "metaclass_run: %s\n", e.what());
        return 1;
    }
    return 0;
}
