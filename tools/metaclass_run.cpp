// metaclass_run — scenario-driven classroom runner.
//
//   metaclass_run scenario.json            run and print a human report
//   metaclass_run --json scenario.json     machine-readable report (JSON)
//   metaclass_run --example                print an annotated example scenario
//   metaclass_run --experiments            list the experiment registry (E1..E19)
//   metaclass_run                          run the built-in default scenario
//
// A scenario is a JSON document describing rooms, attendance, the activity
// schedule and the run duration; see --example for the schema in practice.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/scenario.hpp"
#include "experiment_registry.hpp"

namespace {

constexpr const char* kExampleScenario = R"json({
  "seed": 42,
  "course": "COMP4461: HCI (blended)",
  "duration_s": 120,
  "regional_mesh": false,
  "event_bus": true,
  "rooms": [
    {"name": "cwb", "region": "HongKong", "rows": 6, "cols": 6,
     "students": 12, "instructor": true},
    {"name": "gz", "region": "Guangzhou", "rows": 6, "cols": 6,
     "students": 9}
  ],
  "remote": [
    {"region": "Seoul", "count": 2},
    {"region": "Boston", "count": 2},
    {"region": "London", "count": 1}
  ],
  "lecture_media_room": 0,
  "schedule": [
    {"activity": "lecture", "minutes": 25},
    {"activity": "qa", "minutes": 10},
    {"activity": "gamified-breakout", "minutes": 20, "team_size": 4}
  ]
})json";

int usage() {
    std::fprintf(stderr,
                 "usage: metaclass_run [--json] [scenario.json]\n"
                 "       metaclass_run --example\n"
                 "       metaclass_run --experiments\n");
    return 2;
}

void print_experiments() {
    std::printf("%-6s %-32s %s\n", "id", "binary (build/bench/)", "title");
    for (const auto& e : mvc::tools::kExperiments) {
        std::printf("%-6s %-32s %s\n", e.id, e.binary, e.title);
        std::printf("       claim: %s\n", e.claim);
    }
    std::printf("\nmeasured results per id: EXPERIMENTS.md; each binary writes "
                "BENCH_<id>.json\n");
}

}  // namespace

int main(int argc, char** argv) {
    bool as_json = false;
    const char* path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            as_json = true;
        } else if (std::strcmp(argv[i], "--example") == 0) {
            std::puts(kExampleScenario);
            return 0;
        } else if (std::strcmp(argv[i], "--experiments") == 0) {
            print_experiments();
            return 0;
        } else if (argv[i][0] == '-') {
            return usage();
        } else if (path == nullptr) {
            path = argv[i];
        } else {
            return usage();
        }
    }

    std::string text;
    if (path != nullptr) {
        std::ifstream in{path};
        if (!in) {
            std::fprintf(stderr, "metaclass_run: cannot open '%s'\n", path);
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    } else {
        text = kExampleScenario;
    }

    try {
        const mvc::core::Scenario scenario = mvc::core::scenario_from_text(text);
        const mvc::core::ClassReport report = mvc::core::run_scenario(scenario);
        if (as_json) {
            std::puts(mvc::core::report_to_json(report).dump(2).c_str());
        } else {
            std::printf("course: %s\n", scenario.config.course.c_str());
            std::printf("simulated: %.0f s\n", scenario.duration.to_seconds());
            std::fputs(report.summary().c_str(), stdout);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "metaclass_run: %s\n", e.what());
        return 1;
    }
    return 0;
}
