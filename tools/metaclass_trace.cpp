// metaclass_trace — session-trace toolbox for the record/replay subsystem.
//
//   metaclass_trace record <out.mvtr> [--seed N] [--duration S] [--hash-ms M]
//                                     [--no-payloads]
//       run the built-in blended lecture with recording on, write the trace
//   metaclass_trace stat <trace>      header, chunk and record-kind summary
//   metaclass_trace dump <trace> [--limit N]
//                                     print records human-readably
//   metaclass_trace verify <trace>    tolerant integrity check (salvage report)
//   metaclass_trace truncate <in> <out> <keep_s>
//       keep definitions plus records with t <= keep_s, re-chunk, write
//   metaclass_trace replay <trace> [--speed X] [--seek S]
//       reconstruct the lecture offline, print playback stats
//   metaclass_trace check <trace>     re-run the recorded scenario from the
//       trace's seed/stamp and diff per-epoch state hashes (exit 1 on
//       divergence) — the deterministic-replay debugging gate
//
// `check` only knows how to rebuild traces whose stamp starts with
// "builtin-lecture" (i.e. ones produced by `record` here, tools/ci.sh, or
// the E18 bench); traces recorded by custom harnesses carry their own stamp
// and are checked by those harnesses.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "core/classroom.hpp"
#include "replay/divergence.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"
#include "replay/trace.hpp"

using namespace mvc;

namespace {

int usage() {
    std::fprintf(
        stderr,
        "usage: metaclass_trace record <out.mvtr> [--seed N] [--duration S]\n"
        "                              [--hash-ms M] [--no-payloads]\n"
        "       metaclass_trace stat <trace>\n"
        "       metaclass_trace dump <trace> [--limit N]\n"
        "       metaclass_trace verify <trace>\n"
        "       metaclass_trace truncate <in> <out> <keep_s>\n"
        "       metaclass_trace replay <trace> [--speed X] [--seek S]\n"
        "       metaclass_trace check <trace>\n");
    return 2;
}

std::string builtin_stamp(double duration_s, double hash_ms) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "builtin-lecture v1 dur_s=%g hash_ms=%g",
                  duration_s, hash_ms);
    return buf;
}

/// Pull "key=<double>" out of a stamp; nan when absent.
double stamp_field(const std::string& stamp, const char* key) {
    const std::size_t at = stamp.find(std::string{key} + "=");
    if (at == std::string::npos) return std::nan("");
    return std::atof(stamp.c_str() + at + std::strlen(key) + 1);
}

/// The scenario `record`/`check` agree on: a two-campus blended lecture
/// with remote attendees and periodic recovery checkpoints (the trace's
/// seek keyframes). Everything that shapes the event stream is derived
/// from (seed, duration, hash interval), all of which ride in the header.
void run_builtin(std::uint64_t seed, double duration_s, double hash_ms,
                 bool capture_payloads, std::int64_t started_ns,
                 replay::TraceSink& sink) {
    core::ClassroomConfig config;
    config.seed = seed;
    config.course = "builtin-lecture";
    config.recovery.enabled = true;
    config.recovery.checkpoint_interval = sim::Time::seconds(2.0);

    core::MetaverseClassroom classroom{config};
    classroom.add_instructor(0);
    for (int i = 0; i < 4; ++i) classroom.add_physical_student(0);
    for (int i = 0; i < 3; ++i) classroom.add_physical_student(1);
    classroom.add_remote_student(net::Region::Seoul);
    classroom.add_remote_student(net::Region::London);

    replay::RecorderOptions opts;
    opts.capture_payloads = capture_payloads;
    replay::Recorder rec{sink, seed, builtin_stamp(duration_s, hash_ms),
                         started_ns, opts};
    classroom.enable_recording(rec, sim::Time::ms(hash_ms));
    classroom.start();
    classroom.run_for(sim::Time::seconds(duration_s));
    classroom.stop();
    rec.finish();
    if (!rec.error().empty())
        throw std::runtime_error("recording failed: " + rec.error());
    std::fprintf(stderr,
                 "recorded %llu wire records (%llu avatar updates), %llu "
                 "hashes, %llu checkpoints, %llu chunks, %llu bytes\n",
                 static_cast<unsigned long long>(rec.wire_records()),
                 static_cast<unsigned long long>(rec.avatar_updates()),
                 static_cast<unsigned long long>(rec.hashes()),
                 static_cast<unsigned long long>(rec.checkpoints()),
                 static_cast<unsigned long long>(rec.chunks_written()),
                 static_cast<unsigned long long>(rec.bytes_written()));
}

std::vector<std::uint8_t> read_file(const char* path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw std::runtime_error(std::string{"cannot open '"} + path + "'");
    return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>()};
}

void write_file(const char* path, const std::vector<std::uint8_t>& bytes) {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    if (!out) throw std::runtime_error(std::string{"cannot open '"} + path + "'");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error(std::string{"short write to '"} + path + "'");
}

int cmd_stat(const replay::Trace& t) {
    std::uint64_t kinds[8] = {};
    replay::Trace::Cursor c = t.cursor();
    replay::Record rec;
    while (c.next(rec)) ++kinds[rec.index()];
    std::printf("version:      %u\n", t.version());
    std::printf("seed:         %llu\n", static_cast<unsigned long long>(t.seed()));
    std::printf("stamp:        %s\n", t.stamp().c_str());
    std::printf("duration:     %.3f s\n", sim::Time::ns(t.last_t_ns()).to_seconds());
    std::printf("chunks:       %zu\n", t.chunks().size());
    std::printf("records:      %llu\n",
                static_cast<unsigned long long>(t.record_count()));
    std::printf("  flow defs:    %llu\n", static_cast<unsigned long long>(kinds[0]));
    std::printf("  node defs:    %llu\n", static_cast<unsigned long long>(kinds[1]));
    std::printf("  subject defs: %llu\n", static_cast<unsigned long long>(kinds[2]));
    std::printf("  wire:         %llu\n", static_cast<unsigned long long>(kinds[3]));
    std::printf("  state hashes: %llu\n", static_cast<unsigned long long>(kinds[4]));
    std::printf("  checkpoints:  %llu\n", static_cast<unsigned long long>(kinds[5]));
    std::printf("seek index:   %zu keyframes\n", t.checkpoint_index().size());
    std::printf("bytes:        %zu\n", t.bytes().size());
    return 0;
}

int cmd_dump(const replay::Trace& t, std::uint64_t limit) {
    replay::Trace::Cursor c = t.cursor();
    replay::Record rec;
    std::uint64_t printed = 0;
    while (c.next(rec) && (limit == 0 || printed < limit)) {
        ++printed;
        if (const auto* f = std::get_if<replay::FlowDef>(&rec)) {
            std::printf("flowdef     id=%u name=%s\n", f->id, f->name.c_str());
        } else if (const auto* n = std::get_if<replay::NodeDef>(&rec)) {
            std::printf("nodedef     shard=%u node=%u name=%s\n", n->shard, n->node,
                        n->name.c_str());
        } else if (const auto* s = std::get_if<replay::SubjectDef>(&rec)) {
            std::printf("subjectdef  id=%u name=%s\n", s->id, s->name.c_str());
        } else if (const auto* w = std::get_if<replay::WireRecord>(&rec)) {
            std::printf("wire  %12.6f s shard=%u %s -> %s flow=%s %llu B prio=%s",
                        sim::Time::ns(w->t_ns).to_seconds(), w->shard,
                        t.node_name(w->shard, w->src).c_str(),
                        t.node_name(w->shard, w->dst).c_str(),
                        t.flow_name(w->flow).c_str(),
                        static_cast<unsigned long long>(w->size_bytes),
                        net::priority_name(static_cast<net::Priority>(w->priority)));
            if (!w->avatars.empty())
                std::printf(" avatars=%zu%s", w->avatars.size(),
                            w->avatars.front().keyframe ? " [key]" : "");
            std::printf("\n");
        } else if (const auto* h = std::get_if<replay::HashRecord>(&rec)) {
            std::printf("hash  %12.6f s epoch=%llu subject=%s hash=%016llx\n",
                        sim::Time::ns(h->t_ns).to_seconds(),
                        static_cast<unsigned long long>(h->epoch),
                        t.subject_name(h->subject).c_str(),
                        static_cast<unsigned long long>(h->hash));
        } else if (const auto* k = std::get_if<replay::CheckpointRecord>(&rec)) {
            std::printf("ckpt  %12.6f s owner=%s %zu B\n",
                        sim::Time::ns(k->t_ns).to_seconds(), k->owner.c_str(),
                        k->bytes.size());
        }
    }
    return 0;
}

int cmd_verify(const std::vector<std::uint8_t>& bytes) {
    const replay::TraceCheck check = replay::Trace::verify(bytes);
    std::printf("ok:          %s\n", check.ok ? "yes" : "NO");
    if (!check.ok) std::printf("error:       %s\n", check.error.c_str());
    std::printf("chunks:      %zu\n", check.chunks);
    std::printf("records:     %llu\n", static_cast<unsigned long long>(check.records));
    std::printf("valid bytes: %zu of %zu\n", check.valid_bytes, bytes.size());
    std::printf("last record: %.3f s\n", sim::Time::ns(check.last_t_ns).to_seconds());
    return check.ok ? 0 : 1;
}

int cmd_replay(const replay::Trace& t, double speed, double seek_s) {
    replay::Replayer player{t};
    if (seek_s >= 0.0) {
        const sim::Time at = player.seek(sim::Time::seconds(seek_s));
        std::printf("seeked to %.3f s (target %.3f s)\n", at.to_seconds(), seek_s);
    }
    player.play_all(speed);
    const replay::PlaybackStats& s = player.stats();
    std::printf("played to:          %.3f s of %.3f s\n",
                player.position().to_seconds(), player.end().to_seconds());
    std::printf("records:            %llu\n",
                static_cast<unsigned long long>(s.records));
    std::printf("wire packets:       %llu (%llu B)\n",
                static_cast<unsigned long long>(s.wire_packets),
                static_cast<unsigned long long>(s.wire_bytes));
    std::printf("avatar updates:     %llu (%llu keyframes, %llu stale skipped)\n",
                static_cast<unsigned long long>(s.avatar_updates),
                static_cast<unsigned long long>(s.keyframes),
                static_cast<unsigned long long>(s.stale_skipped));
    std::printf("checkpoints applied: %llu over %llu seek(s)\n",
                static_cast<unsigned long long>(s.checkpoints_applied),
                static_cast<unsigned long long>(s.seeks));
    if (speed > 0.0)
        std::printf("pacing slept:       %.2f wall-s (speed %gx)\n",
                    s.paced_wall_seconds, speed);
    std::printf("participants:       %zu reconstructed\n", player.participants().size());
    return 0;
}

int cmd_check(const replay::Trace& recorded) {
    if (recorded.stamp().rfind("builtin-lecture", 0) != 0) {
        std::fprintf(stderr,
                     "check: stamp \"%s\" is not a builtin-lecture trace; re-run "
                     "its own harness to regenerate hashes\n",
                     recorded.stamp().c_str());
        return 2;
    }
    const double dur_s = stamp_field(recorded.stamp(), "dur_s");
    const double hash_ms = stamp_field(recorded.stamp(), "hash_ms");
    if (!(dur_s > 0.0) || !(hash_ms > 0.0)) {
        std::fprintf(stderr, "check: stamp \"%s\" is missing dur_s/hash_ms\n",
                     recorded.stamp().c_str());
        return 2;
    }
    // Re-run without payload capture: state hashes do not depend on it (the
    // tap never feeds back into the simulation) and the rerun stays lean.
    replay::MemorySink rerun_sink;
    run_builtin(recorded.seed(), dur_s, hash_ms, /*capture_payloads=*/false,
                recorded.started_ns(), rerun_sink);
    const replay::Trace rerun = replay::Trace::parse(rerun_sink.take());

    const replay::Divergence d = replay::diff_state_hashes(recorded, rerun);
    if (!d.diverged) {
        std::printf("deterministic: %llu state hashes match\n",
                    static_cast<unsigned long long>(d.compared));
        return 0;
    }
    std::printf("DIVERGED after %llu matching hashes: %s\n",
                static_cast<unsigned long long>(d.compared), d.detail.c_str());
    if (!d.subject.empty())
        std::printf("  first divergence: epoch %llu, subject %s, t=%.6f s\n"
                    "  recorded %016llx vs rerun %016llx\n",
                    static_cast<unsigned long long>(d.epoch), d.subject.c_str(),
                    sim::Time::ns(d.t_ns).to_seconds(),
                    static_cast<unsigned long long>(d.recorded_hash),
                    static_cast<unsigned long long>(d.rerun_hash));
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "record") {
            const char* out = argv[2];
            std::uint64_t seed = 42;
            double duration_s = 20.0;
            double hash_ms = 100.0;
            bool payloads = true;
            for (int i = 3; i < argc; ++i) {
                if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
                    seed = std::strtoull(argv[++i], nullptr, 10);
                else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc)
                    duration_s = std::atof(argv[++i]);
                else if (std::strcmp(argv[i], "--hash-ms") == 0 && i + 1 < argc)
                    hash_ms = std::atof(argv[++i]);
                else if (std::strcmp(argv[i], "--no-payloads") == 0)
                    payloads = false;
                else
                    return usage();
            }
            const auto now = std::chrono::system_clock::now().time_since_epoch();
            const std::int64_t started_ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
            replay::FileSink sink{out};
            run_builtin(seed, duration_s, hash_ms, payloads, started_ns, sink);
            return 0;
        }
        if (cmd == "stat") return cmd_stat(replay::Trace::load(argv[2]));
        if (cmd == "dump") {
            std::uint64_t limit = 0;
            for (int i = 3; i < argc; ++i) {
                if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc)
                    limit = std::strtoull(argv[++i], nullptr, 10);
                else
                    return usage();
            }
            return cmd_dump(replay::Trace::load(argv[2]), limit);
        }
        if (cmd == "verify") return cmd_verify(read_file(argv[2]));
        if (cmd == "truncate") {
            if (argc != 5) return usage();
            const replay::Trace t = replay::Trace::load(argv[2]);
            const double keep_s = std::atof(argv[4]);
            const auto bytes = replay::truncate_trace(
                t, sim::Time::seconds(keep_s).nanos());
            write_file(argv[3], bytes);
            const replay::Trace out = replay::Trace::parse(bytes);
            std::printf("kept %llu of %llu records (<= %.3f s), %zu bytes\n",
                        static_cast<unsigned long long>(out.record_count()),
                        static_cast<unsigned long long>(t.record_count()), keep_s,
                        bytes.size());
            return 0;
        }
        if (cmd == "replay") {
            double speed = 0.0;
            double seek_s = -1.0;
            for (int i = 3; i < argc; ++i) {
                if (std::strcmp(argv[i], "--speed") == 0 && i + 1 < argc)
                    speed = std::atof(argv[++i]);
                else if (std::strcmp(argv[i], "--seek") == 0 && i + 1 < argc)
                    seek_s = std::atof(argv[++i]);
                else
                    return usage();
            }
            return cmd_replay(replay::Trace::load(argv[2]), speed, seek_s);
        }
        if (cmd == "check") return cmd_check(replay::Trace::load(argv[2]));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "metaclass_trace: %s\n", e.what());
        return 1;
    }
    return usage();
}
