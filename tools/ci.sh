#!/usr/bin/env bash
# One-shot CI: tier-1 verify (default preset build + full ctest), the
# ASan+UBSan `sanitize` preset build + ctest, and the ThreadSanitizer `tsan`
# preset, which builds with -fsanitize=thread and runs the sharded-engine
# tests (the only multi-threaded code). The optional perf smoke stage builds
# the `profile` preset and runs the E17 hot-path bench in quick mode; the
# bench exits nonzero if steady-state allocations/event exceed its budget or
# the >=5x reduction vs the reference loop regresses. Run from anywhere:
#
#   tools/ci.sh            # tier1 + sanitize + tsan
#   tools/ci.sh --tier1    # default preset only
#   tools/ci.sh --sanitize # sanitize preset only
#   tools/ci.sh --tsan     # tsan preset only
#   tools/ci.sh --perf     # profile preset + E17 allocation budget smoke
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_tier1=1
run_sanitize=1
run_tsan=1
run_perf=0
case "${1:-}" in
  "") ;;
  --tier1) run_sanitize=0; run_tsan=0 ;;
  --sanitize) run_tier1=0; run_tsan=0 ;;
  --tsan) run_tier1=0; run_sanitize=0 ;;
  --perf) run_tier1=0; run_sanitize=0; run_tsan=0; run_perf=1 ;;
  *) echo "usage: tools/ci.sh [--tier1|--sanitize|--tsan|--perf]" >&2; exit 2 ;;
esac

stage() { # stage <preset>
  echo "==> [$1] configure"
  cmake --preset "$1"
  echo "==> [$1] build"
  cmake --build --preset "$1" -j "$jobs"
  echo "==> [$1] ctest"
  ctest --preset "$1"
}

perf_stage() {
  echo "==> [profile] configure"
  cmake --preset profile
  echo "==> [profile] build bench_e17_hotpath"
  cmake --build --preset profile -j "$jobs" --target bench_e17_hotpath
  echo "==> [profile] E17 allocation budget smoke (quick mode)"
  E17_QUICK=1 ./build-profile/bench/bench_e17_hotpath
}

[ "$run_tier1" -eq 1 ] && stage default
[ "$run_sanitize" -eq 1 ] && stage sanitize
[ "$run_tsan" -eq 1 ] && stage tsan
[ "$run_perf" -eq 1 ] && perf_stage

echo "==> ci.sh: all requested stages passed"
