#!/usr/bin/env bash
# One-shot CI: tier-1 verify (default preset build + full ctest), the
# ASan+UBSan `sanitize` preset build + ctest, and the ThreadSanitizer `tsan`
# preset, which builds with -fsanitize=thread and runs the sharded-engine
# tests (the only multi-threaded code). The optional perf smoke stage builds
# the `profile` preset and runs the E17 hot-path bench in quick mode; the
# bench exits nonzero if steady-state allocations/event exceed its budget or
# the >=5x reduction vs the reference loop regresses. Run from anywhere:
#
#   tools/ci.sh            # tier1 + sanitize + tsan
#   tools/ci.sh --tier1    # default preset only
#   tools/ci.sh --sanitize # sanitize preset only
#   tools/ci.sh --tsan     # tsan preset only
#   tools/ci.sh --perf     # profile preset + E17 allocation budget smoke
#   tools/ci.sh --replay   # record a short run, fail on trace-verify error
#                          # or replay divergence, then the E18 quick bench
#   tools/ci.sh --realnet  # realnet unit tests under ASan+UBSan, the E19
#                          # loopback bench (wire rate + record->replay
#                          # divergence gate), and the two-process UDP demo
#   tools/ci.sh --chaos    # chaos/reconnect unit tests under ASan+UBSan,
#                          # then the E20 chaos soak (delivery/recovery SLO
#                          # gates + same-seed determinism) in quick mode
#   tools/ci.sh --scenario # scenario-engine unit tests under ASan+UBSan,
#                          # the shipped .scenario.json specs through
#                          # metaclass_scenario, the E21 gate in quick mode,
#                          # a 60 s spec-mutation fuzz smoke, and the
#                          # recorded-corpus fuzz-trace sweep (ASan+UBSan)
#   tools/ci.sh --qoe      # qoe unit tests under ASan+UBSan, the shipped
#                          # congested-lecture scenario SLO gates, then the
#                          # E23 priority-trade + clean-control + determinism
#                          # gate in quick mode
#   tools/ci.sh --campus   # campus/pool/aggregator unit tests under
#                          # ASan+UBSan, then the E22 campus sweep in quick
#                          # mode (events/sec + bytes/avatar SLO gates,
#                          # thread-count determinism, BENCH_e22.json)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_tier1=1
run_sanitize=1
run_tsan=1
run_perf=0
run_replay=0
run_realnet=0
run_chaos=0
run_scenario=0
run_campus=0
run_qoe=0
case "${1:-}" in
  "") ;;
  --tier1) run_sanitize=0; run_tsan=0 ;;
  --sanitize) run_tier1=0; run_tsan=0 ;;
  --tsan) run_tier1=0; run_sanitize=0 ;;
  --perf) run_tier1=0; run_sanitize=0; run_tsan=0; run_perf=1 ;;
  --replay) run_tier1=0; run_sanitize=0; run_tsan=0; run_replay=1 ;;
  --realnet) run_tier1=0; run_sanitize=0; run_tsan=0; run_realnet=1 ;;
  --chaos) run_tier1=0; run_sanitize=0; run_tsan=0; run_chaos=1 ;;
  --scenario) run_tier1=0; run_sanitize=0; run_tsan=0; run_scenario=1 ;;
  --campus) run_tier1=0; run_sanitize=0; run_tsan=0; run_campus=1 ;;
  --qoe) run_tier1=0; run_sanitize=0; run_tsan=0; run_qoe=1 ;;
  *) echo "usage: tools/ci.sh [--tier1|--sanitize|--tsan|--perf|--replay|--realnet|--chaos|--scenario|--campus|--qoe]" >&2; exit 2 ;;
esac

stage() { # stage <preset>
  echo "==> [$1] configure"
  cmake --preset "$1"
  echo "==> [$1] build"
  cmake --build --preset "$1" -j "$jobs"
  echo "==> [$1] ctest"
  ctest --preset "$1"
}

perf_stage() {
  echo "==> [profile] configure"
  cmake --preset profile
  echo "==> [profile] build bench_e17_hotpath"
  cmake --build --preset profile -j "$jobs" --target bench_e17_hotpath
  echo "==> [profile] E17 allocation budget smoke (quick mode)"
  E17_QUICK=1 ./build-profile/bench/bench_e17_hotpath
}

replay_stage() {
  echo "==> [default] configure"
  cmake --preset default
  echo "==> [default] build metaclass_trace + bench_e18_record_replay"
  cmake --build --preset default -j "$jobs" --target metaclass_trace \
    --target bench_e18_record_replay
  local trace
  trace=$(mktemp -t ci_replay_XXXXXX.mvtr)
  trap 'rm -f "$trace"' RETURN
  echo "==> [replay] record a short builtin lecture"
  ./build/tools/metaclass_trace record "$trace" --duration 8
  echo "==> [replay] trace integrity"
  ./build/tools/metaclass_trace verify "$trace"
  echo "==> [replay] re-run from the recorded seed, diff state hashes"
  ./build/tools/metaclass_trace check "$trace"
  echo "==> [replay] E18 record/replay budget smoke (quick mode)"
  E18_QUICK=1 ./build/bench/bench_e18_record_replay
}

realnet_stage() {
  echo "==> [sanitize] configure"
  cmake --preset sanitize
  echo "==> [sanitize] build realnet_test"
  cmake --build --preset sanitize -j "$jobs" --target realnet_test
  echo "==> [realnet] transport unit tests under ASan+UBSan"
  ctest --preset sanitize -R realnet_test
  echo "==> [default] configure"
  cmake --preset default
  echo "==> [default] build bench_e19_realnet + realnet_demo"
  cmake --build --preset default -j "$jobs" --target bench_e19_realnet     --target realnet_demo
  echo "==> [realnet] E19 loopback wire rate + record->replay gate (quick mode)"
  E19_QUICK=1 ./build/bench/bench_e19_realnet
  echo "==> [realnet] two-process UDP demo (edge + client)"
  ./build/examples/realnet_demo --role edge --port 47620 --seconds 3 &
  local edge_pid=$!
  sleep 0.5
  ./build/examples/realnet_demo --role client --port 47620 --seconds 2
  wait "$edge_pid"
}

chaos_stage() {
  echo "==> [sanitize] configure"
  cmake --preset sanitize
  echo "==> [sanitize] build chaos_test"
  cmake --build --preset sanitize -j "$jobs" --target chaos_test
  echo "==> [chaos] chaos/reconnect unit tests under ASan+UBSan"
  ctest --preset sanitize -R 'Backoff|Chaos|Reconnect|Degradation|PathHealth|FrameDefect'
  echo "==> [default] configure"
  cmake --preset default
  echo "==> [default] build bench_e20_chaos"
  cmake --build --preset default -j "$jobs" --target bench_e20_chaos
  echo "==> [chaos] E20 soak: SLO gates + same-seed determinism (quick mode)"
  E20_QUICK=1 ./build/bench/bench_e20_chaos
}

scenario_stage() {
  echo "==> [sanitize] configure"
  cmake --preset sanitize
  echo "==> [sanitize] build scenario_test + metaclass_scenario"
  cmake --build --preset sanitize -j "$jobs" --target scenario_test \
    --target metaclass_scenario
  echo "==> [scenario] engine unit tests under ASan+UBSan"
  # gtest_discover_tests registers individual case names, so ctest -R on the
  # binary name would select nothing (and exit 0); run the binary directly.
  ./build-sanitize/tests/scenario_test
  echo "==> [scenario] shipped specs end-to-end (ASan+UBSan)"
  for spec in scenarios/exam.scenario.json \
              scenarios/campus_event.scenario.json \
              scenarios/campus_lecture.scenario.json \
              scenarios/breakout_groups.scenario.json; do
    ./build-sanitize/tools/metaclass_scenario run "$spec"
  done
  echo "==> [scenario] 60 s spec-mutation fuzz smoke (ASan+UBSan)"
  ./build-sanitize/tools/metaclass_scenario fuzz --seconds 60 \
    scenarios/exam.scenario.json
  echo "==> [scenario] recorded-corpus fuzz-trace sweep (ASan+UBSan)"
  # Every checked-in corpus file (valid specs and rejection cases alike) is a
  # seed blob: fuzz-trace corrupts its bytes and the trace verify/parse path
  # must reject garbage without crashing.
  for f in tests/corpus/valid/* tests/corpus/bad/*; do
    ./build-sanitize/tools/metaclass_scenario fuzz-trace --iters 50 "$f"
  done
  echo "==> [default] configure"
  cmake --preset default
  echo "==> [default] build bench_e21_scenario"
  cmake --build --preset default -j "$jobs" --target bench_e21_scenario
  echo "==> [scenario] E21 gate: SLOs + determinism + thread sweep (quick mode)"
  E21_QUICK=1 ./build/bench/bench_e21_scenario
}

qoe_stage() {
  echo "==> [sanitize] configure"
  cmake --preset sanitize
  echo "==> [sanitize] build qoe_test"
  cmake --build --preset sanitize -j "$jobs" --target qoe_test
  echo "==> [qoe] ABR/budget/score/loop unit tests under ASan+UBSan"
  ./build-sanitize/tests/qoe_test
  echo "==> [default] configure"
  cmake --preset default
  echo "==> [default] build bench_e23_qoe + metaclass_scenario"
  cmake --build --preset default -j "$jobs" --target bench_e23_qoe \
    --target metaclass_scenario
  echo "==> [qoe] congested-lecture scenario SLO gates"
  ./build/tools/metaclass_scenario run scenarios/congested_lecture.scenario.json
  echo "==> [qoe] E23 gate: priority trade + clean control + determinism (quick mode)"
  E23_QUICK=1 ./build/bench/bench_e23_qoe
}

campus_stage() {
  echo "==> [sanitize] configure"
  cmake --preset sanitize
  echo "==> [sanitize] build campus_test"
  cmake --build --preset sanitize -j "$jobs" --target campus_test
  echo "==> [campus] pool/grid/aggregator unit tests under ASan+UBSan"
  ./build-sanitize/tests/campus_test
  echo "==> [default] configure"
  cmake --preset default
  echo "==> [default] build bench_e22_campus"
  cmake --build --preset default -j "$jobs" --target bench_e22_campus
  echo "==> [campus] E22 sweep: thread determinism + bytes/avatar gate (quick mode)"
  E22_QUICK=1 ./build/bench/bench_e22_campus
}

[ "$run_tier1" -eq 1 ] && stage default
[ "$run_sanitize" -eq 1 ] && stage sanitize
[ "$run_tsan" -eq 1 ] && stage tsan
[ "$run_perf" -eq 1 ] && perf_stage
[ "$run_replay" -eq 1 ] && replay_stage
[ "$run_realnet" -eq 1 ] && realnet_stage
[ "$run_chaos" -eq 1 ] && chaos_stage
[ "$run_scenario" -eq 1 ] && scenario_stage
[ "$run_campus" -eq 1 ] && campus_stage
[ "$run_qoe" -eq 1 ] && qoe_stage

echo "==> ci.sh: all requested stages passed"
