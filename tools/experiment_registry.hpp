#pragma once
// Registry of the repo's experiments: one entry per bench binary, with the
// paper claim it regenerates. `metaclass_run --experiments` prints this
// table so every bench is discoverable from the runner; EXPERIMENTS.md holds
// the measured numbers for the same ids.

#include <cstddef>

namespace mvc::tools {

struct Experiment {
    const char* id;      // stable id, matches the BENCH_<id>.json stamp
    const char* binary;  // binary under build/bench/
    const char* title;
    const char* claim;   // the §3.2–3.3 engineering claim it regenerates
};

inline constexpr Experiment kExperiments[] = {
    {"e1", "bench_e1_latency_breakdown", "end-to-end latency breakdown",
     "cross-campus capture->display stays inside the 100 ms noticeability budget"},
    {"e2", "bench_e2_avatar_vs_video", "avatar stream vs live video",
     "avatar sync data account for less traffic than live video streaming"},
    {"e3", "bench_e3_scalability_regions", "worldwide scaling, regional servers",
     "regional servers keep far users out of hundreds-of-ms round trips"},
    {"e4", "bench_e4_interest_mgmt", "interest management",
     "AOI filtering tames O(N^2) synchronization of many entities"},
    {"e5", "bench_e5_dead_reckoning", "dead-reckoning threshold",
     "error-gated deltas trade bandwidth against display fidelity monotonically"},
    {"e6", "bench_e6_split_rendering", "split rendering",
     "merging cloud-rendered frames keeps thin clients at high quality"},
    {"e7", "bench_e7_video_fec", "video: UDP vs ARQ vs FEC",
     "application-level FEC holds quality at interactive deadlines where ARQ cannot"},
    {"e8", "bench_e8_cybersickness", "cybersickness protector",
     "adaptive navigation keeps susceptible users inside a symptom budget"},
    {"e9", "bench_e9_seat_assignment", "seat assignment + retargeting",
     "vacant-seat matching preserves remote geometry; retargeting is exact"},
    {"e10", "bench_e10_clock_jitter", "clock sync + WiFi ingestion",
     "cross-room events land on synchronized clocks despite jitter and skew"},
    {"e11", "bench_e11_edge_ablation", "edge servers vs cloud hairpin",
     "per-classroom edges beat hairpinning avatar streams through a distant cloud"},
    {"e12", "bench_e12_content_privacy", "content democratization + privacy",
     "privacy screening blocks unconsented overlays at negligible cost"},
    {"e13", "bench_e13_jitter_ablation", "jitter buffer vs render-the-latest",
     "adaptive buffering removes update-rate stutter at comparable latency"},
    {"e14", "bench_e14_fault_recovery", "fault injection + failover",
     "heartbeat failover via the cloud relay rides out link outages; degradation ladder under loss"},
    {"e15", "bench_e15_crash_recovery", "crash recovery + admission control",
     "checkpointed restart restores seats/membership/avatars strictly faster than cold; overload sheds late joiners with hysteresis"},
    {"e16", "bench_e16_sharded_scale", "sharded parallel engine scaling",
     "per-region shards under conservative lookahead scale the event loop across "
     "cores with byte-identical results for any thread count"},
    {"e17", "bench_e17_hotpath", "allocation-free hot path",
     "interned metric handles and pooled SBO events strip steady-state "
     "allocations from the per-packet/per-event path (counted, >=5x vs the "
     "string-keyed std::function baseline)"},
    {"e18", "bench_e18_record_replay", "session record & deterministic replay",
     "wire-trace recording adds zero steady-state allocations per send and "
     "single-digit-% wall-clock; replay reconstructs the lecture faster than "
     "realtime with checkpoint-indexed seek; re-runs are hash-identical"},
    {"e19", "bench_e19_realnet", "real UDP transport behind the net seam",
     "the unmodified classroom model (relay + VR clients) runs over real UDP "
     "loopback through the backend seam; the recorded wire trace replays "
     "bit-exact in the simulator, and the wire format sustains loopback line "
     "rate across payload sizes"},
    {"e20", "bench_e20_chaos", "network chaos soak + reconnect hardening",
     "a classroom soak through scripted loss/duplication/reordering/corruption "
     "and an asymmetric partition holds its delivery and staleness SLOs: the "
     "ARQ stream stays exactly-once, the partitioned client backs off, resyncs "
     "and resumes within budget, the degradation ladder sheds and recovers, "
     "and same-seed reruns are byte-identical"},
    {"e21", "bench_e21_scenario", "declarative scenario engine",
     "the shipped exam/campus-event/breakout specs build, run, and pass their "
     "declared SLO gates purely from .scenario.json files; same-seed reruns "
     "and the campus thread-count sweep are byte-identical, and the spec "
     "fuzzer finds no crashes or divergence on the corpus"},
    {"e22", "bench_e22_campus", "campus-scale dense hot path",
     "a 100k-avatar campus sweeps its SoA pools, flat interest grids, and "
     "cell-delta aggregated egress at interactive rates; merged metrics are "
     "byte-identical across 1/2/4/8 worker threads, and aggregation cuts "
     "client-bound bytes per avatar well below the per-update fan-out "
     "baseline"},
    {"e23", "bench_e23_qoe", "adaptive streaming & QoE control loop",
     "under 10x per-client link oversubscription the ABR + foveated-budget "
     "loop trades video tiers against avatar freshness by priority class — "
     "high-priority clients converge to the rung their link fits with "
     "bounded stalls, staleness, and switch counts while the low class rides "
     "the floor rung; a clean link delivers the top tier everywhere with "
     "zero switches, and runs are byte-identical across seeds and thread "
     "counts"},
    {"micro", "bench_micro", "hot-path micro-benchmarks",
     "per-packet server work is dominated by the network, not the CPU"},
};

inline constexpr std::size_t kExperimentCount =
    sizeof(kExperiments) / sizeof(kExperiments[0]);

}  // namespace mvc::tools
